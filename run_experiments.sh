#!/bin/bash
# Regenerate every table and figure of the paper, plus the ablations.
# Outputs: results/*.json + results/experiments.log
# Env knobs: SCALE (default 0.02), GRID (16), EPOCHS (30).
set -u
cd "$(dirname "$0")"
SCALE=${SCALE:-0.02}
GRID=${GRID:-16}
EPOCHS=${EPOCHS:-30}
LOG=results/experiments.log
: > "$LOG"
for exp in fig1 fig4 table2 table3 fig5 table4 concept_shift_exp section4a \
           ablation_augment ablation_aux ablation_features lambda_sweep; do
  echo "=== $exp (scale $SCALE grid $GRID epochs $EPOCHS) ===" | tee -a "$LOG"
  cargo run -p wm-bench --bin "$exp" --release -- \
    --scale "$SCALE" --grid "$GRID" --epochs "$EPOCHS" --out results >> "$LOG" 2>&1
  echo "--- $exp done (exit $?) ---" | tee -a "$LOG"
done
echo ALL-EXPERIMENTS-DONE | tee -a "$LOG"
