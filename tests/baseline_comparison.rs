//! Integration: CNN vs. SVM baseline on one shared dataset — the
//! Table III head-to-head at smoke scale.

use wm_dsl::prelude::*;

#[test]
fn both_classifiers_train_and_beat_chance() {
    let (train, test) = SyntheticWm811k::new(16).scale(0.003).seed(33).build();

    // SVM baseline.
    let svm =
        SvmBaseline::train(&train, &FeatureConfig::default(), &baseline::SvmParams::default(), 1);
    let svm_cm = svm.evaluate(&test);
    // Majority class (None) is ~68% of test; chance for a degenerate
    // predictor is that ratio. Both models must clear a lower bar at
    // smoke scale but clearly above uniform-random (11%).
    assert!(svm_cm.accuracy() > 0.4, "SVM below sanity bar: {:.3}", svm_cm.accuracy());

    // CNN (plain cross-entropy, full coverage).
    let config = SelectiveConfig::for_grid(16).with_conv_channels([6, 6, 6]).with_fc(24);
    let mut model = SelectiveModel::new(&config, 2);
    let _ = Trainer::new(TrainConfig {
        epochs: 5,
        batch_size: 32,
        learning_rate: 3e-3,
        ..TrainConfig::default()
    })
    .run(&mut model, &train);
    let cnn = model.evaluate(&test, 0.0);
    assert!(
        cnn.selective_accuracy() > 0.4,
        "CNN below sanity bar: {:.3}",
        cnn.selective_accuracy()
    );

    // Evaluation totals agree with the dataset.
    assert_eq!(svm_cm.total() as usize, test.len());
    assert_eq!(cnn.total() as usize, test.len());
}

#[test]
fn feature_extraction_is_deterministic_and_finite() {
    let (train, _) = SyntheticWm811k::new(16).scale(0.001).seed(3).build();
    let cfg = FeatureConfig::default();
    for s in train.iter().take(20) {
        let a = baseline::features::extract(&s.map, &cfg);
        let b = baseline::features::extract(&s.map, &cfg);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
        assert_eq!(a.len(), cfg.dim());
    }
}
