//! Integration: the selective-learning tool belt — threshold sweeps
//! and the deployment coverage monitor — driven by a real trained
//! model on real generated data.

use wm_dsl::prelude::*;

fn trained_model() -> (SelectiveModel, wafermap::Dataset) {
    let (train, test) = SyntheticWm811k::new(16).scale(0.003).seed(77).build();
    let config = SelectiveConfig::for_grid(16).with_conv_channels([6, 6, 6]).with_fc(24);
    let mut model = SelectiveModel::new(&config, 5);
    let _ = Trainer::new(TrainConfig {
        epochs: 4,
        batch_size: 32,
        learning_rate: 3e-3,
        target_coverage: 0.5,
        ..TrainConfig::default()
    })
    .run(&mut model, &train);
    (model, test)
}

#[test]
fn threshold_sweep_traces_a_valid_curve() {
    let (mut model, test) = trained_model();
    let thresholds = selective::uniform_thresholds(8);
    let points = selective::threshold_sweep(&mut model, &test, &thresholds);
    assert_eq!(points.len(), 8);
    // Coverage decreases as the threshold rises; all metrics bounded.
    for pair in points.windows(2) {
        assert!(pair[0].coverage >= pair[1].coverage - 1e-12);
    }
    for p in &points {
        assert!((0.0..=1.0).contains(&p.coverage));
        assert!((0.0..=1.0).contains(&p.selective_accuracy));
        assert!((p.selective_risk + p.selective_accuracy - 1.0).abs() < 1e-9 || p.coverage == 0.0);
    }
}

#[test]
fn sweep_agrees_with_direct_evaluation() {
    let (mut model, test) = trained_model();
    let tau = 0.5f32;
    let sweep = selective::threshold_sweep(&mut model, &test, &[tau]);
    let direct = model.evaluate(&test, tau);
    assert!((sweep[0].coverage - direct.coverage()).abs() < 1e-12);
    assert!((sweep[0].selective_accuracy - direct.selective_accuracy()).abs() < 1e-12);
}

#[test]
fn monitor_flags_shifted_stream_but_not_nominal() {
    let (mut model, test) = trained_model();
    let nominal_cov = model.evaluate(&test, 0.5).coverage();
    // Window of 40, alarm at 30% of the model's own nominal coverage:
    // the nominal stream must stay quiet.
    let mut monitor = selective::CoverageMonitor::new(nominal_cov.max(0.05), 40, 0.3);
    let pixels = 16 * 16;
    let mut alarms = 0;
    for chunk in test.samples().chunks(32) {
        let mut data = Vec::with_capacity(chunk.len() * pixels);
        for s in chunk {
            data.extend(s.map.to_image());
        }
        let images = nn::Tensor::from_vec(data, &[chunk.len(), 1, 16, 16]);
        for p in model.predict(&images, 0.5) {
            if monitor.observe(p.selected).is_some() {
                alarms += 1;
            }
        }
    }
    // A handful of transient dips are tolerable; a persistent alarm
    // storm is not.
    let observed = monitor.observed();
    assert!(
        (alarms as f64) < 0.2 * observed as f64,
        "nominal stream alarmed {alarms}/{observed} times"
    );

    // A stream where the model abstains everywhere must alarm.
    let mut shifted_monitor = selective::CoverageMonitor::new(nominal_cov.max(0.05), 40, 0.3);
    let mut fired = false;
    for _ in 0..200 {
        fired |= shifted_monitor.observe(false).is_some();
    }
    assert!(fired, "all-abstain stream never alarmed");
}
