//! End-to-end integration: generation -> augmentation -> selective
//! training -> evaluation, spanning every workspace crate.

use wm_dsl::prelude::*;

fn tiny_config() -> SelectiveConfig {
    SelectiveConfig::for_grid(16).with_conv_channels([6, 6, 6]).with_fc(24)
}

#[test]
fn full_pipeline_produces_consistent_metrics() {
    // Generate a small imbalanced mixture.
    let (train_raw, test) = SyntheticWm811k::new(16).scale(0.004).seed(42).build();
    assert!(train_raw.len() > 100);

    // Balance defect classes with Algorithm 1.
    let augmenter =
        Augmenter::new(AugmentConfig::new(30).with_channels([4, 4, 4]).with_ae_epochs(2), 1);
    let train = augmenter.balance(&train_raw);
    assert!(train.len() > train_raw.len(), "augmentation added nothing");
    let synth_count = train.iter().filter(|s| s.synthetic).count();
    assert_eq!(train.len() - train_raw.len(), synth_count);

    // Train a selective model briefly.
    let mut model = SelectiveModel::new(&tiny_config(), 7);
    let report = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 32,
        learning_rate: 3e-3,
        target_coverage: 0.5,
        ..TrainConfig::default()
    })
    .run(&mut model, &train);
    assert_eq!(report.epochs.len(), 3);
    assert!(report.last().loss.is_finite());

    // Evaluate: totals must be conserved and metrics in range.
    let metrics = model.evaluate(&test, 0.5);
    assert_eq!(metrics.total() as usize, test.len());
    assert!((0.0..=1.0).contains(&metrics.coverage()));
    assert!((0.0..=1.0).contains(&metrics.selective_accuracy()));
    let per_class_sum: u64 = (0..9).map(|c| metrics.class_selected(c)).sum();
    assert_eq!(per_class_sum, metrics.selected_count());
}

#[test]
fn plain_model_beats_chance_on_easy_distinction() {
    // None vs NearFull is separable by mean intensity alone; even a
    // briefly trained CNN must crush chance level (50%).
    let (train, test) = SyntheticWm811k::new(16).scale(0.004).seed(1).build();
    let keep = |c: DefectClass| c == DefectClass::None || c == DefectClass::NearFull;
    // NearFull has very few samples at this scale; oversample it by
    // duplicating through the augmenter path instead: simply filter
    // and accept imbalance — accuracy on None alone is already > 0.5
    // only if predictions aren't degenerate, so check class recalls.
    let train2 = train.filtered(keep);
    let test2 = test.filtered(keep);
    let mut model = SelectiveModel::new(&tiny_config(), 3);
    let _ = Trainer::new(TrainConfig {
        epochs: 6,
        batch_size: 16,
        learning_rate: 5e-3,
        ..TrainConfig::default()
    })
    .run(&mut model, &train2);
    let metrics = model.evaluate(&test2, 0.0);
    assert!(
        metrics.selective_accuracy() > 0.8,
        "easy pair accuracy too low: {}",
        metrics.selective_accuracy()
    );
}

#[test]
fn selective_threshold_trades_coverage_for_selectivity() {
    let (train, test) = SyntheticWm811k::new(16).scale(0.003).seed(9).build();
    let mut model = SelectiveModel::new(&tiny_config(), 11);
    let _ = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 32,
        learning_rate: 3e-3,
        target_coverage: 0.5,
        ..TrainConfig::default()
    })
    .run(&mut model, &train);
    let lenient = model.evaluate(&test, 0.0);
    let strict = model.evaluate(&test, 0.9);
    assert!(lenient.coverage() >= strict.coverage());
    assert!((lenient.coverage() - 1.0).abs() < 1e-9, "threshold 0 must cover everything");
}

#[test]
fn calibration_hits_requested_coverage() {
    let (train, test) = SyntheticWm811k::new(16).scale(0.003).seed(13).build();
    let mut model = SelectiveModel::new(&tiny_config(), 17);
    let _ = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 32,
        learning_rate: 3e-3,
        target_coverage: 0.5,
        ..TrainConfig::default()
    })
    .run(&mut model, &train);
    let scores = model.selection_scores(&test);
    assert_eq!(scores.len(), test.len());
    for want in [0.25f64, 0.5, 0.75] {
        let tau = selective::calibrate_threshold(&scores, want);
        let metrics = model.evaluate(&test, tau);
        assert!(
            (metrics.coverage() - want).abs() < 0.08,
            "calibration for {want} gave {}",
            metrics.coverage()
        );
    }
}
