//! Integration: model checkpointing across crates — train, snapshot,
//! restore into a fresh model, and verify byte-identical behaviour.

use wm_dsl::prelude::*;

#[test]
fn save_load_roundtrip_preserves_predictions() {
    let (train, test) = SyntheticWm811k::new(16).scale(0.002).seed(8).build();
    let config = SelectiveConfig::for_grid(16).with_conv_channels([6, 6, 6]).with_fc(24);
    let mut model = SelectiveModel::new(&config, 4);
    let _ = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 32,
        learning_rate: 3e-3,
        target_coverage: 0.5,
        ..TrainConfig::default()
    })
    .run(&mut model, &train);

    // Snapshot to disk and restore into a differently seeded model.
    let snapshot = model.state_dict();
    let dir = std::env::temp_dir().join("wm_dsl_ckpt_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("model.json");
    snapshot.save(&path).expect("save checkpoint");
    let loaded = nn::serialize::StateDict::load(&path).expect("load checkpoint");
    let mut restored = SelectiveModel::new(&config, 999);
    restored.load_state_dict(&loaded).expect("restore");

    let a = model.evaluate(&test, 0.5);
    let b = restored.evaluate(&test, 0.5);
    assert_eq!(a, b, "restored model behaves differently");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn restore_into_wrong_architecture_fails_cleanly() {
    let config = SelectiveConfig::for_grid(16).with_conv_channels([6, 6, 6]).with_fc(24);
    let mut model = SelectiveModel::new(&config, 1);
    let snapshot = model.state_dict();
    let other = SelectiveConfig::for_grid(16).with_conv_channels([4, 4, 4]).with_fc(24);
    let mut wrong = SelectiveModel::new(&other, 1);
    assert!(wrong.load_state_dict(&snapshot).is_err());
}
