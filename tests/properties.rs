//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use wm_dsl::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated wafer keeps the circular mask intact and only
    /// ever fails on-wafer dies, for every class / seed / grid size.
    #[test]
    fn generated_wafers_are_well_formed(
        seed in any::<u64>(),
        class_idx in 0usize..9,
        grid in prop_oneof![Just(16usize), Just(24), Just(32)],
    ) {
        let class = DefectClass::from_index(class_idx).expect("valid index");
        let cfg = wafermap::gen::GenConfig::new(grid);
        let mut rng = StdRng::seed_from_u64(seed);
        let map = wafermap::gen::generate(class, &cfg, &mut rng);
        let blank = WaferMap::blank(grid, grid);
        prop_assert_eq!(map.on_wafer_count(), blank.on_wafer_count());
        prop_assert!(map.fail_count() <= map.on_wafer_count());
        // Image round-trip is lossless.
        let back = WaferMap::from_image_masked(&map.to_image(), &map).expect("same shape");
        prop_assert_eq!(back, map);
    }

    /// Rotation never changes the wafer mask, and rotating by 360°
    /// reproduces the original map exactly.
    #[test]
    fn rotation_preserves_mask(
        seed in any::<u64>(),
        class_idx in 0usize..9,
        angle in 0.0f32..360.0,
    ) {
        let class = DefectClass::from_index(class_idx).expect("valid index");
        let cfg = wafermap::gen::GenConfig::new(24);
        let mut rng = StdRng::seed_from_u64(seed);
        let map = wafermap::gen::generate(class, &cfg, &mut rng);
        let rot = wafermap::ops::rotate(&map, angle);
        prop_assert_eq!(rot.on_wafer_count(), map.on_wafer_count());
        let full = wafermap::ops::rotate(&map, 360.0);
        prop_assert_eq!(full, map);
    }

    /// The selective loss gradient w.r.t. g always matches finite
    /// differences (random logits, scores, labels, weights).
    #[test]
    fn selective_loss_gradient_is_exact(
        seed in any::<u64>(),
        c0 in 0.1f32..1.0,
        n in 2usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = nn::Tensor::randn(&[n, 4], 1.0, &mut rng);
        let g: Vec<f32> = (0..n).map(|i| 0.1 + 0.8 * (i as f32 / n as f32)).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let weights: Vec<f32> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { 0.5 }).collect();
        let loss = selective::SelectiveLoss::new(c0);
        let (_, _, grad_g) = loss.compute(&logits, &g, &labels, &weights);
        let eps = 1e-3f32;
        for idx in 0..n {
            let mut gp = g.clone();
            gp[idx] += eps;
            let mut gm = g.clone();
            gm[idx] -= eps;
            let lp = loss.compute(&logits, &gp, &labels, &weights).0.total;
            let lm = loss.compute(&logits, &gm, &labels, &weights).0.total;
            let numeric = (lp - lm) / (2.0 * eps);
            prop_assert!((numeric - grad_g[idx]).abs() < 2e-3,
                "grad mismatch at {}: {} vs {}", idx, numeric, grad_g[idx]);
        }
    }

    /// Threshold calibration is coverage-exact-or-under: it never
    /// overshoots the target, and it is exact when no score ties with
    /// the score at the cut (continuous scores are distinct with
    /// probability 1).
    #[test]
    fn calibration_is_exact_or_under(
        scores in proptest::collection::vec(0.0f32..1.0, 1..200),
        coverage in 0.0f64..1.0,
    ) {
        let tau = selective::calibrate_threshold(&scores, coverage);
        let kept = scores.iter().filter(|&&s| s >= tau).count();
        let want = ((scores.len() as f64) * coverage).floor() as usize;
        prop_assert!(kept <= want, "kept {} > want {}", kept, want);
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if sorted.windows(2).all(|w| w[0] != w[1]) {
            prop_assert_eq!(kept, want, "distinct scores must calibrate exactly");
        }
    }

    /// With heavily duplicated scores (the tie-at-the-cut regression),
    /// calibration still never overshoots, excludes the whole tie
    /// group deterministically, and keeps every score strictly above
    /// the returned threshold.
    #[test]
    fn calibration_handles_duplicated_scores(
        levels in proptest::collection::vec(0usize..5, 1..150),
        coverage in 0.0f64..1.0,
    ) {
        // Scores drawn from 5 discrete levels force massive tie groups.
        let scores: Vec<f32> =
            levels.iter().map(|&i| [0.05f32, 0.25, 0.5, 0.75, 0.95][i]).collect();
        let tau = selective::calibrate_threshold(&scores, coverage);
        let kept = scores.iter().filter(|&&s| s >= tau).count();
        let want = ((scores.len() as f64) * coverage).floor() as usize;
        prop_assert!(kept <= want, "kept {} overshoots want {}", kept, want);
        // Deterministic: same multiset, any order, same threshold.
        let mut reversed = scores.clone();
        reversed.reverse();
        prop_assert_eq!(selective::calibrate_threshold(&reversed, coverage), tau);
        // Under-coverage is bounded by the tie group at the cut: the
        // shortfall is strictly smaller than the number of copies of
        // the largest excluded score.
        if kept < want {
            let boundary = scores
                .iter()
                .copied()
                .filter(|&s| s < tau)
                .fold(f32::MIN, f32::max);
            let group = scores.iter().filter(|&&s| s == boundary).count();
            prop_assert!(want - kept < group,
                "shortfall {} not explained by tie group of {}", want - kept, group);
        }
    }

    /// Confusion-matrix derived metrics stay within [0, 1] and
    /// accuracy equals the weighted mean of per-class recalls.
    #[test]
    fn confusion_matrix_invariants(
        observations in proptest::collection::vec((0usize..5, 0usize..5), 1..300),
    ) {
        let mut cm = eval::ConfusionMatrix::new(5);
        for &(t, p) in &observations {
            cm.record(t, p);
        }
        prop_assert_eq!(cm.total() as usize, observations.len());
        let mut recall_weighted = 0.0f64;
        for class in 0..5 {
            prop_assert!((0.0..=1.0).contains(&cm.precision(class)));
            prop_assert!((0.0..=1.0).contains(&cm.recall(class)));
            prop_assert!((0.0..=1.0).contains(&cm.f1(class)));
            recall_weighted += cm.recall(class) * cm.support(class) as f64;
        }
        let acc = cm.accuracy();
        prop_assert!((acc - recall_weighted / cm.total() as f64).abs() < 1e-9);
    }

    /// Salt-and-pepper noise of rate 0 is the identity; any rate keeps
    /// the wafer mask intact.
    #[test]
    fn salt_and_pepper_invariants(seed in any::<u64>(), rate in 0.0f32..0.5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = wafermap::gen::GenConfig::new(16);
        let map = wafermap::gen::generate(DefectClass::Location, &cfg, &mut rng);
        let noisy = wafermap::ops::salt_and_pepper(&map, rate, &mut rng);
        prop_assert_eq!(noisy.on_wafer_count(), map.on_wafer_count());
        let same = wafermap::ops::salt_and_pepper(&map, 0.0, &mut rng);
        prop_assert_eq!(same, map);
    }
}
