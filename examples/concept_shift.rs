//! Concept-shift detection (paper Sections IV-A and IV-D, application
//! (iii)): when the incoming wafer distribution drifts away from the
//! training distribution, the selective model's coverage collapses —
//! a deployable "retrain me" alarm — while the accuracy on the wafers
//! it still labels stays high.
//!
//! Run with `cargo run --release --example concept_shift`.

use wafermap::shift::{shifted_dataset, ShiftConfig};
use wm_dsl::prelude::*;

fn main() {
    let (train, test) = SyntheticWm811k::new(32).scale(0.008).seed(11).build();
    println!("training selective model (c0 = 0.5) on {} wafers ...", train.len());
    let config = SelectiveConfig::for_grid(32).with_conv_channels([16, 16, 16]).with_fc(64);
    let mut model = SelectiveModel::new(&config, 8);
    let _ = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        learning_rate: 2e-3,
        target_coverage: 0.5,
        ..TrainConfig::default()
    })
    .run(&mut model, &train);

    let per_class = (test.len() / 9).max(5);
    let splits = [
        ("in-distribution", test.clone()),
        ("moderate shift", shifted_dataset(32, per_class, &ShiftConfig::moderate(), 100)),
        ("severe shift", shifted_dataset(32, per_class, &ShiftConfig::severe(), 101)),
    ];

    println!("\n{:>16} {:>10} {:>20}", "split", "coverage", "selective accuracy");
    let mut coverages = Vec::new();
    for (name, split) in &splits {
        let m = model.evaluate(split, 0.5);
        println!(
            "{:>16} {:>9.1}% {:>19.1}%",
            name,
            m.coverage() * 100.0,
            m.selective_accuracy() * 100.0
        );
        coverages.push(m.coverage());
    }

    // The deployment rule the paper suggests: alarm when coverage
    // falls well below the trained target. `CoverageMonitor` packages
    // it as a rolling-window stream monitor.
    let mut monitor = selective::CoverageMonitor::new(coverages[0], 50, 0.5);
    println!("\nstreaming shifted wafers through a rolling coverage monitor ...");
    let shifted = &splits[2].1;
    let mut alarm = None;
    for chunk in shifted.samples().chunks(16) {
        let mut data = Vec::new();
        for s in chunk {
            data.extend(s.map.to_image());
        }
        let images = nn::Tensor::from_vec(data, &[chunk.len(), 1, 32, 32]);
        for p in model.predict(&images, 0.5) {
            if alarm.is_none() {
                alarm = monitor.observe(p.selected);
            }
        }
        if alarm.is_some() {
            break;
        }
    }
    match alarm {
        Some(a) => println!(
            "ALARM after {} wafers: rolling coverage {:.1}% < alarm line {:.1}% — \
             distribution has shifted, retrain.",
            a.observed,
            a.rolling_coverage * 100.0,
            a.alarm_line * 100.0
        ),
        None => println!("no alarm fired — shift too mild for this monitor setting."),
    }
}
