//! Resource allocation with a human in the loop (paper Section IV-D,
//! application (ii)): the model labels the easy majority of wafers and
//! routes only the risky ones to engineers, and the engineer "budget"
//! is steered with the coverage target / threshold calibration.
//!
//! Run with `cargo run --release --example resource_allocation`.

use wm_dsl::prelude::*;

fn main() {
    let (train, test) = SyntheticWm811k::new(32).scale(0.008).seed(5).build();
    println!("training selective model on {} wafers ...", train.len());
    let config = SelectiveConfig::for_grid(32).with_conv_channels([16, 16, 16]).with_fc(64);
    let mut model = SelectiveModel::new(&config, 1);
    let _ = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        learning_rate: 2e-3,
        target_coverage: 0.75,
        ..TrainConfig::default()
    })
    .run(&mut model, &train);

    // An engineering team can manually inspect only `budget` wafers
    // per lot. Calibrate the selection threshold so the model passes
    // exactly that many to the humans.
    let budget = test.len() / 10;
    let scores = model.selection_scores(&test);
    let target_coverage = 1.0 - (budget as f64 / test.len() as f64);
    let tau = selective::calibrate_threshold(&scores, target_coverage);
    println!(
        "engineer budget: {budget} of {} wafers -> calibrated threshold τ = {tau:.3}",
        test.len()
    );

    let metrics = model.evaluate(&test, tau);
    let routed = metrics.total() - metrics.selected_count();
    println!("\nmodel keeps      : {} wafers", metrics.selected_count());
    println!("routed to humans : {routed} wafers (budget {budget})");
    println!("accuracy on the wafers the model kept: {:.1}%", metrics.selective_accuracy() * 100.0);

    // Which classes end up with the engineers? Mostly the rare/hard
    // ones — exactly the wafers worth an expert's time.
    println!("\nabstention rate by class (share routed to engineers):");
    for class in DefectClass::ALL {
        let idx = class.index();
        let total = test.class_counts()[idx];
        if total == 0 {
            continue;
        }
        let routed_class = total as u64 - metrics.class_selected(idx);
        println!(
            "  {:>10}: {:>5.1}%  ({} of {})",
            class.name(),
            100.0 * routed_class as f64 / total as f64,
            routed_class,
            total
        );
    }
}
