//! Quickstart: generate a synthetic WM-811K-style dataset, balance it
//! with auto-encoder augmentation, train a selective model, and
//! evaluate both full-coverage and selective operation.
//!
//! Run with `cargo run --release --example quickstart`.

use wm_dsl::prelude::*;

fn main() {
    // 1. Data: 1% of the paper's WM-811K mixture on a 32x32 die grid.
    //    The class imbalance (None dominates) matches Table II.
    println!("generating synthetic WM-811K mixture ...");
    let (train_raw, test) = SyntheticWm811k::new(32).scale(0.01).seed(7).build();
    println!("  train: {} wafers, test: {} wafers", train_raw.len(), test.len());
    for class in DefectClass::ALL {
        print!("  {}: {}", class.name(), train_raw.class_counts()[class.index()]);
    }
    println!();

    // 2. Balance the defect classes with Algorithm 1 (conv
    //    auto-encoder + latent perturbation + rotation + s&p noise).
    println!("\nbalancing with auto-encoder augmentation ...");
    let augmenter =
        Augmenter::new(AugmentConfig::new(80).with_channels([8, 8, 8]).with_ae_epochs(6), 13);
    let train = augmenter.balance(&train_raw);
    println!("  after augmentation: {} wafers", train.len());

    // 3. Train the two-head selective CNN at a 50% coverage target.
    println!("\ntraining selective model (c0 = 0.5) ...");
    let config = SelectiveConfig::for_grid(32).with_conv_channels([16, 16, 16]).with_fc(64);
    let mut model = SelectiveModel::new(&config, 99);
    let report = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        learning_rate: 2e-3,
        target_coverage: 0.5,
        ..TrainConfig::default()
    })
    .run(&mut model, &train);
    for stats in &report.epochs {
        println!(
            "  epoch {:>2}: loss {:.4}  coverage {:.2}  accuracy {:.2}",
            stats.epoch, stats.loss, stats.coverage, stats.accuracy
        );
    }

    // 4. Evaluate with the reject option.
    let metrics = model.evaluate(&test, 0.5);
    println!("\nselective evaluation on {} held-out wafers:", test.len());
    println!("  coverage            = {:.1}%", metrics.coverage() * 100.0);
    println!("  selective accuracy  = {:.1}%", metrics.selective_accuracy() * 100.0);
    println!("  selective risk      = {:.3}", metrics.selective_risk());
    println!("\nper-class coverage (samples the model chose to label):");
    for class in DefectClass::ALL {
        println!(
            "  {:>10}: {:>4} of {:>4} ({:.0}%)",
            class.name(),
            metrics.class_selected(class.index()),
            test.class_counts()[class.index()],
            metrics.class_coverage(class.index()) * 100.0
        );
    }
}
