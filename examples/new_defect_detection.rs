//! New-defect-class detection (the paper's Table IV scenario, Section
//! IV-D application (i)): train with the Donut class held out, then
//! show that the selective model abstains on the unseen class instead
//! of silently mislabeling it.
//!
//! Run with `cargo run --release --example new_defect_detection`.

use wm_dsl::prelude::*;

fn main() {
    let unseen = DefectClass::Donut;
    println!("hold-out class: {unseen}");

    let (train_all, test) = SyntheticWm811k::new(32).scale(0.008).seed(21).build();
    let train = train_all.filtered(|c| c != unseen);
    println!(
        "training on {} wafers across 8 classes ({} excluded)",
        train.len(),
        train_all.len() - train.len()
    );

    // NOTE: the model keeps the 9-logit head but never sees the
    // held-out class — at test time its label would be wrong no
    // matter what, which is exactly when g(x) should gate it out.
    let config = SelectiveConfig::for_grid(32).with_conv_channels([16, 16, 16]).with_fc(64);
    let mut model = SelectiveModel::new(&config, 3);
    let _ = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        learning_rate: 2e-3,
        target_coverage: 0.5,
        ..TrainConfig::default()
    })
    .run(&mut model, &train);

    let metrics = model.evaluate(&test, 0.5);
    println!("\nper-class behaviour at c0 = 0.5:");
    println!("{:>10} {:>8} {:>10} {:>17}", "class", "samples", "coverage", "selective recall");
    for class in DefectClass::ALL {
        let idx = class.index();
        let marker = if class == unseen { "  <-- unseen" } else { "" };
        println!(
            "{:>10} {:>8} {:>9.1}% {:>17.2}{marker}",
            class.name(),
            test.class_counts()[idx],
            metrics.class_coverage(idx) * 100.0,
            metrics.selective_recall(idx),
        );
    }
    let unseen_cov = metrics.class_coverage(unseen.index());
    let seen_cov: f64 = DefectClass::ALL
        .iter()
        .filter(|&&c| c != unseen)
        .map(|c| metrics.class_coverage(c.index()))
        .sum::<f64>()
        / 8.0;
    println!(
        "\nunseen-class coverage {:.1}% vs mean seen-class coverage {:.1}%",
        unseen_cov * 100.0,
        seen_cov * 100.0
    );
    if unseen_cov < seen_cov {
        println!("the model abstains disproportionately on the unseen class — new-defect alarm.");
    } else {
        println!("warning: unseen class not rejected more than seen ones (try more epochs).");
    }
}
