//! Data-augmentation walkthrough (paper Section III-B, Algorithm 1,
//! Fig. 4): train a convolutional auto-encoder on a minority class,
//! perturb latent codes, and inspect original-vs-synthetic pairs.
//! PGM images are written to `results/augmentation_demo/`.
//!
//! Run with `cargo run --release --example augmentation_demo`.

use wafermap::{io, ops};
use wm_dsl::prelude::*;

fn main() -> std::io::Result<()> {
    let (train, _) = SyntheticWm811k::new(32).scale(0.01).seed(17).build();
    let class = DefectClass::Scratch;
    let originals = train.of_class(class).len();
    println!("{class}: {originals} original wafers");

    let target = originals * 4;
    let augmenter = Augmenter::new(
        AugmentConfig::new(target)
            .with_channels([8, 8, 8])
            .with_ae_epochs(10)
            .with_sigma0(0.15)
            .with_sp_rate(0.01)
            .with_weight(0.5),
        3,
    );
    println!(
        "augmenting to T = {target} (n_r = {} rotations per original) ...",
        augmenter.rotations_for(originals)
    );
    let synthetic = augmenter.augment_class(&train, class);
    println!("generated {} synthetic wafers (weight {})", synthetic.len(), 0.5);

    let dir = std::path::Path::new("results/augmentation_demo");
    std::fs::create_dir_all(dir)?;
    let pairs = augmenter.preview_pairs(&train, class, 4);
    for (i, (orig, synth)) in pairs.iter().enumerate() {
        io::save_pgm(orig, 8, dir.join(format!("pair{i}_original.pgm")))?;
        io::save_pgm(synth, 8, dir.join(format!("pair{i}_synthetic.pgm")))?;
        println!(
            "\npair {i}: die disagreement {:.3}  (original left, synthetic right)",
            ops::die_disagreement(orig, synth)
        );
        // Side-by-side ASCII rendering.
        let left = io::to_ascii(orig);
        let right = io::to_ascii(synth);
        for (l, r) in left.lines().zip(right.lines()) {
            println!("{l}   |   {r}");
        }
    }
    println!("\nPGM files written to {}", dir.display());
    Ok(())
}
