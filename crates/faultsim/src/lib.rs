//! Deterministic fault-injection harness for the workspace's
//! durability and graceful-degradation story.
//!
//! Production failures are rare, diverse, and — worst of all —
//! unrepeatable. This crate makes them cheap and repeatable instead:
//! a [`FaultPlan`] seeded through the in-tree `rand` crate injects
//! the three fault families the serving stack must survive, and the
//! same seed always injects the same faults, so every chaos test and
//! the `chaos_report` bench are bit-reproducible:
//!
//! - **File corruption** — [`truncate_at`] / [`flip_bit_at`] hit a
//!   chosen offset; [`FaultPlan::truncate_file`] /
//!   [`FaultPlan::flip_file_bit`] pick one deterministically from the
//!   seed. [`byte_classes`] enumerates one representative offset per
//!   on-disk region (magic, version, length, checksum, payload head /
//!   interior / tail) so a test can sweep every structurally distinct
//!   corruption without trying every byte of a megabyte checkpoint.
//! - **Clock pressure** — [`SimClock`] is a manually- or
//!   auto-advancing monotonic clock. The serving engine reads time
//!   through its `Clock` trait, so deadline breaches become a
//!   deterministic function of the submitted workload instead of a
//!   flaky wall-clock race.
//! - **Input poisoning** — [`FaultPlan::poison_pixels`] corrupts a raw
//!   wafer image buffer with one of the illegal-input shapes the
//!   serving validator must catch (NaN, infinity, out-of-range or
//!   non-canonical pixel levels).
//!
//! The crate is a leaf: it depends only on `std` and the in-tree
//! `rand`, so `nn`, `core`, `serve`, and `bench` can all use it (as a
//! regular or dev dependency) without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Targeted file corruption
// ---------------------------------------------------------------------------

/// Truncate the file at `path` to exactly `len` bytes.
///
/// Simulates a crash mid-write (or a torn copy): everything past the
/// cut is lost, everything before it is intact.
///
/// # Errors
///
/// Propagates filesystem errors; truncating to at or beyond the
/// current length is an error (the fault would be a no-op).
pub fn truncate_at<P: AsRef<Path>>(path: P, len: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(&path)?;
    let current = file.metadata()?.len();
    if len >= current {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("truncate to {len} >= current length {current} injects no fault"),
        ));
    }
    file.set_len(len)?;
    file.sync_all()
}

/// Flip bit `bit` (0–7) of the byte at `offset` in the file at `path`.
///
/// Simulates silent media / transfer corruption: the file keeps its
/// length but one bit of its content lies.
///
/// # Errors
///
/// Propagates filesystem errors; an out-of-range offset or bit index
/// is [`std::io::ErrorKind::InvalidInput`].
pub fn flip_bit_at<P: AsRef<Path>>(path: P, offset: u64, bit: u8) -> std::io::Result<()> {
    if bit > 7 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("bit index {bit} out of range"),
        ));
    }
    let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
    let len = file.metadata()?.len();
    if offset >= len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("offset {offset} beyond file length {len}"),
        ));
    }
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(&mut byte)?;
    byte[0] ^= 1 << bit;
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(&byte)?;
    file.sync_all()
}

/// A file-corruption fault that was injected, for logging / reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFault {
    /// What was done to the file.
    pub kind: FileFaultKind,
    /// Byte offset the fault hit (new length for truncations).
    pub offset: u64,
    /// File length before the fault.
    pub original_len: u64,
}

/// The kind of an injected [`FileFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFaultKind {
    /// File cut to `offset` bytes.
    Truncated,
    /// Bit `bit` of the byte at `offset` inverted.
    BitFlipped {
        /// Bit index 0–7 within the byte.
        bit: u8,
    },
}

impl std::fmt::Display for FileFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FileFaultKind::Truncated => {
                write!(f, "truncated {} -> {} bytes", self.original_len, self.offset)
            }
            FileFaultKind::BitFlipped { bit } => {
                write!(f, "flipped bit {bit} of byte {}/{}", self.offset, self.original_len)
            }
        }
    }
}

/// One representative byte offset per structurally distinct region of
/// a length-`len` v2 serialization container (see `nn::serialize`):
/// the magic bytes, the version field, the length field, the checksum
/// field, and the payload's first / middle / last byte. Offsets are
/// clamped to the file and deduplicated, so the sweep is meaningful
/// for any file length — including files too short to have all
/// regions.
#[must_use]
pub fn byte_classes(len: u64) -> Vec<u64> {
    // Header layout of the v2 container: 8 magic + 4 version +
    // 8 payload length + 4 CRC32 = 24 bytes, payload after.
    let candidates = [0, 8, 12, 20, 24, len / 2, len.saturating_sub(1)];
    let mut out = Vec::new();
    for &c in &candidates {
        let clamped = c.min(len.saturating_sub(1));
        if !out.contains(&clamped) {
            out.push(clamped);
        }
    }
    out.sort_unstable();
    out
}

// ---------------------------------------------------------------------------
// Input poisoning
// ---------------------------------------------------------------------------

/// The poison injected into a raw wafer image buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PixelFault {
    /// A pixel became NaN.
    Nan {
        /// Index of the poisoned pixel.
        index: usize,
    },
    /// A pixel became +∞.
    Infinite {
        /// Index of the poisoned pixel.
        index: usize,
    },
    /// A pixel left the legal `[0, 1]` intensity range.
    OutOfRange {
        /// Index of the poisoned pixel.
        index: usize,
        /// The illegal value written.
        value: f32,
    },
    /// A pixel moved off the three canonical WM-811K levels
    /// (0.0 / 0.5 / 1.0) while staying inside `[0, 1]`.
    NonCanonicalLevel {
        /// Index of the poisoned pixel.
        index: usize,
        /// The illegal value written.
        value: f32,
    },
}

impl PixelFault {
    /// Index of the pixel the fault hit.
    #[must_use]
    pub fn index(&self) -> usize {
        match *self {
            PixelFault::Nan { index }
            | PixelFault::Infinite { index }
            | PixelFault::OutOfRange { index, .. }
            | PixelFault::NonCanonicalLevel { index, .. } => index,
        }
    }
}

// ---------------------------------------------------------------------------
// The seeded plan
// ---------------------------------------------------------------------------

/// Seeded source of fault decisions. Two plans with the same seed
/// inject the same faults in the same order — determinism is the whole
/// point: a chaos failure reproduces from nothing but the seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rng: StdRng,
}

impl FaultPlan {
    /// A fresh plan for `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, rng: StdRng::seed_from_u64(seed) }
    }

    /// The seed this plan was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Truncate the file at a plan-chosen length in `[0, len)`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; an empty file cannot be
    /// truncated further.
    pub fn truncate_file<P: AsRef<Path>>(&mut self, path: P) -> std::io::Result<FileFault> {
        let len = std::fs::metadata(&path)?.len();
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cannot truncate an empty file further",
            ));
        }
        let cut = self.rng.gen_range(0..len);
        truncate_at(&path, cut)?;
        Ok(FileFault { kind: FileFaultKind::Truncated, offset: cut, original_len: len })
    }

    /// Flip a plan-chosen bit of a plan-chosen byte of the file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; an empty file has no bit to flip.
    pub fn flip_file_bit<P: AsRef<Path>>(&mut self, path: P) -> std::io::Result<FileFault> {
        let len = std::fs::metadata(&path)?.len();
        if len == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "cannot flip a bit of an empty file",
            ));
        }
        let offset = self.rng.gen_range(0..len);
        let bit = self.rng.gen_range(0..8u8) & 7;
        flip_bit_at(&path, offset, bit)?;
        Ok(FileFault { kind: FileFaultKind::BitFlipped { bit }, offset, original_len: len })
    }

    /// Poison one pixel of a raw wafer image buffer with a plan-chosen
    /// fault family, returning what was injected.
    ///
    /// # Panics
    ///
    /// Panics if `pixels` is empty — there is nothing to poison.
    pub fn poison_pixels(&mut self, pixels: &mut [f32]) -> PixelFault {
        assert!(!pixels.is_empty(), "cannot poison an empty pixel buffer");
        let index = self.rng.gen_range(0..pixels.len());
        match self.rng.gen_range(0..4u32) {
            0 => {
                pixels[index] = f32::NAN;
                PixelFault::Nan { index }
            }
            1 => {
                pixels[index] = f32::INFINITY;
                PixelFault::Infinite { index }
            }
            2 => {
                let value = if self.rng.gen_bool(0.5) { -1.5 } else { 2.5 };
                pixels[index] = value;
                PixelFault::OutOfRange { index, value }
            }
            _ => {
                // Strictly between the canonical levels, away from any
                // plausible tolerance band around 0.0 / 0.5 / 1.0.
                let value = if self.rng.gen_bool(0.5) { 0.23 } else { 0.77 };
                pixels[index] = value;
                PixelFault::NonCanonicalLevel { index, value }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Simulated clock
// ---------------------------------------------------------------------------

/// A monotonic clock whose time only moves when the test says so.
///
/// `now()` reports nanoseconds since the clock's construction. Two
/// modes compose:
///
/// - **Manual**: call [`SimClock::advance`] between operations.
/// - **Auto-step**: construct with [`SimClock::with_step`] and every
///   `now()` read advances time by the step *after* reporting — a
///   cheap model of "each observation costs `step` of wall time",
///   which is how the chaos harness applies deterministic deadline
///   pressure to the serving engine.
///
/// The counter is atomic, so a `SimClock` can be shared behind an
/// `Arc` between a test and the engine reading it.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
    step_nanos: u64,
}

impl SimClock {
    /// A clock frozen at zero; advances only via [`SimClock::advance`].
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock that advances by `step` after every [`SimClock::now`]
    /// read.
    #[must_use]
    pub fn with_step(step: Duration) -> Self {
        SimClock {
            nanos: AtomicU64::new(0),
            step_nanos: u64::try_from(step.as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// Advance the clock by `by`.
    pub fn advance(&self, by: Duration) {
        self.nanos.fetch_add(u64::try_from(by.as_nanos()).unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// Time elapsed since construction. In auto-step mode the clock
    /// then advances by its step.
    #[must_use]
    pub fn now(&self) -> Duration {
        if self.step_nanos == 0 {
            Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
        } else {
            Duration::from_nanos(self.nanos.fetch_add(self.step_nanos, Ordering::Relaxed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("faultsim_tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("{tag}_{}.bin", std::process::id()));
        std::fs::write(&path, bytes).expect("write");
        path
    }

    #[test]
    fn truncate_cuts_the_tail() {
        let path = temp_file("trunc", &[1, 2, 3, 4, 5]);
        truncate_at(&path, 2).expect("truncate");
        assert_eq!(std::fs::read(&path).expect("read"), vec![1, 2]);
        assert!(truncate_at(&path, 2).is_err(), "no-op truncation must be rejected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let path = temp_file("flip", &[0b1010_1010; 4]);
        flip_bit_at(&path, 2, 0).expect("flip");
        let bytes = std::fs::read(&path).expect("read");
        assert_eq!(bytes[2], 0b1010_1011);
        assert_eq!(bytes[0], 0b1010_1010);
        assert!(flip_bit_at(&path, 4, 0).is_err(), "offset beyond EOF");
        assert!(flip_bit_at(&path, 0, 8).is_err(), "bit index out of range");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn plans_with_equal_seeds_inject_equal_faults() {
        let a_path = temp_file("plan_a", &[7u8; 64]);
        let b_path = temp_file("plan_b", &[7u8; 64]);
        let mut a = FaultPlan::new(99);
        let mut b = FaultPlan::new(99);
        let fa = a.flip_file_bit(&a_path).expect("flip a");
        let fb = b.flip_file_bit(&b_path).expect("flip b");
        assert_eq!(fa, fb);
        assert_eq!(
            std::fs::read(&a_path).expect("read a"),
            std::fs::read(&b_path).expect("read b")
        );
        let ta = a.truncate_file(&a_path).expect("truncate a");
        let tb = b.truncate_file(&b_path).expect("truncate b");
        assert_eq!(ta, tb);
        let _ = std::fs::remove_file(&a_path);
        let _ = std::fs::remove_file(&b_path);
    }

    #[test]
    fn poison_is_deterministic_and_reported_faithfully() {
        let mut base = vec![0.0f32, 0.5, 1.0, 0.5];
        let mut a = base.clone();
        let mut b = base.clone();
        let fault_a = FaultPlan::new(5).poison_pixels(&mut a);
        let fault_b = FaultPlan::new(5).poison_pixels(&mut b);
        assert_eq!(fault_a, fault_b);
        assert_eq!(a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), {
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        });
        // The reported index is the one that changed (or became NaN).
        let idx = fault_a.index();
        base[idx] = a[idx];
        for (i, (x, y)) in base.iter().zip(&a).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "pixel {i} changed unexpectedly");
        }
    }

    #[test]
    fn sim_clock_manual_and_auto_step() {
        let manual = SimClock::new();
        assert_eq!(manual.now(), Duration::ZERO);
        manual.advance(Duration::from_millis(5));
        assert_eq!(manual.now(), Duration::from_millis(5));

        let auto = SimClock::with_step(Duration::from_millis(2));
        assert_eq!(auto.now(), Duration::ZERO);
        assert_eq!(auto.now(), Duration::from_millis(2));
        auto.advance(Duration::from_millis(10));
        assert_eq!(auto.now(), Duration::from_millis(14));
    }

    #[test]
    fn byte_classes_cover_header_and_payload_regions() {
        let classes = byte_classes(100);
        assert_eq!(classes, vec![0, 8, 12, 20, 24, 50, 99]);
        // Short files clamp and deduplicate.
        let short = byte_classes(3);
        assert_eq!(short, vec![0, 1, 2]);
        assert_eq!(byte_classes(1), vec![0]);
    }
}
