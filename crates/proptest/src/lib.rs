//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`ProptestConfig`],
//! range/tuple/[`Just`]/[`prop_oneof!`]/`collection::vec` strategies,
//! [`any`], and the `prop_assert*` macros. Case generation is
//! deterministic: the RNG is seeded from the test name and case
//! index, so failures reproduce across runs without a persistence
//! file. Shrinking is not implemented — a failing case panics with
//! the sampled values via the assertion message instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Per-test configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    #[must_use]
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty choice");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }
}

/// Strategy types and implementations.
pub mod strategy {
    use super::{Range, TestRng};

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing a constant.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between equally-typed strategies
    /// (the [`prop_oneof!`](crate::prop_oneof) macro).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// Union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let idx = rng.index(self.options.len());
            self.options[idx].sample(rng)
        }
    }

    /// Full-domain strategy returned by [`any`](crate::arbitrary::any).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        #[must_use]
        pub(crate) fn new() -> Self {
            Any { marker: std::marker::PhantomData }
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                    (self.start as i128 + hi) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3)
    );
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub mod arbitrary {
    use super::strategy::Any;

    /// Strategy over the whole domain of `T`.
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any::new()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::{Range, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestRng};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

/// Assert inside a property (plain `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(-1.0f32..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = Strategy::sample(&(0u64..1000), &mut TestRng::for_case("x", 7));
        let b = Strategy::sample(&(0u64..1000), &mut TestRng::for_case("x", 7));
        assert_eq!(a, b);
        // The generator is deterministic, so this exact pair is known to
        // differ: distinct cases see distinct values.
        let c = Strategy::sample(&(0u64..1000), &mut TestRng::for_case("x", 8));
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_machinery_works(
            n in 1usize..5,
            seed in any::<u64>(),
            pick in prop_oneof![Just(1u8), Just(2), Just(3)],
            v in crate::collection::vec((0usize..4, 0.0f32..1.0), 1..20),
        ) {
            prop_assert!((1..5).contains(&n));
            let _ = seed;
            prop_assert!(matches!(pick, 1..=3));
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((0.0..1.0).contains(&b));
            }
        }
    }
}
