//! A k-nearest-neighbour classifier over the same hand-crafted
//! features — the spatial-signature kNN family the paper cites as
//! earlier work (Tobin et al. / Karnowski et al., refs. \[6, 7\]).
//! Included as a second baseline and for feature-family ablations.

use serde::{Deserialize, Serialize};

use crate::features::{extract, FeatureConfig};
use crate::Standardizer;
use eval::ConfusionMatrix;
use wafermap::{Dataset, DefectClass, WaferMap};

/// A trained kNN baseline: standardized training features plus labels.
///
/// # Example
///
/// ```
/// use baseline::{FeatureConfig, KnnBaseline};
/// use wafermap::gen::SyntheticWm811k;
///
/// let (train, test) = SyntheticWm811k::new(16).scale(0.001).seed(2).build();
/// let model = KnnBaseline::fit(&train, &FeatureConfig::default(), 3);
/// let cm = model.evaluate(&test);
/// assert_eq!(cm.total() as usize, test.len());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnBaseline {
    feature_config: FeatureConfig,
    scaler: Standardizer,
    features: Vec<Vec<f32>>,
    labels: Vec<usize>,
    k: usize,
}

impl KnnBaseline {
    /// Memorize the (standardized) training features.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `k` is zero.
    #[must_use]
    pub fn fit(dataset: &Dataset, feature_config: &FeatureConfig, k: usize) -> Self {
        assert!(!dataset.is_empty(), "cannot fit on an empty dataset");
        assert!(k > 0, "k must be non-zero");
        let maps: Vec<&wafermap::WaferMap> = dataset.iter().map(|s| &s.map).collect();
        let rows = crate::features::extract_batch(&maps, feature_config);
        let scaler = Standardizer::fit(&rows);
        let features = scaler.transform_all(&rows);
        let labels = dataset.iter().map(|s| s.label.index()).collect();
        KnnBaseline { feature_config: *feature_config, scaler, features, labels, k }
    }

    /// Number of memorized neighbours.
    #[must_use]
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the model holds no training data (never true after
    /// [`KnnBaseline::fit`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Classify one wafer map by majority vote among the `k` nearest
    /// (Euclidean) training samples; ties break toward the nearest
    /// neighbour's class.
    #[must_use]
    pub fn predict(&self, map: &WaferMap) -> DefectClass {
        let query = self.scaler.transform(&extract(map, &self.feature_config));
        // Collect (distance², label) and take the k smallest.
        let mut dists: Vec<(f32, usize)> = self
            .features
            .iter()
            .zip(&self.labels)
            .map(|(row, &label)| {
                let d2: f32 = row.iter().zip(&query).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, label)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        let neighbours = &mut dists[..k];
        neighbours.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut votes = [0u32; DefectClass::COUNT];
        for &(_, label) in neighbours.iter() {
            votes[label] += 1;
        }
        let best = neighbours
            .iter()
            .map(|&(_, label)| label)
            .max_by_key(|&label| (votes[label], std::cmp::Reverse(nearest_rank(neighbours, label))))
            .expect("k >= 1");
        DefectClass::from_index(best).expect("valid class index")
    }

    /// Evaluate on a labeled dataset.
    #[must_use]
    pub fn evaluate(&self, dataset: &Dataset) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(DefectClass::COUNT);
        for s in dataset {
            cm.record(s.label.index(), self.predict(&s.map).index());
        }
        cm
    }
}

/// Rank (position) of the first neighbour with the given label.
fn nearest_rank(neighbours: &[(f32, usize)], label: usize) -> usize {
    neighbours.iter().position(|&(_, l)| l == label).unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafermap::gen::SyntheticWm811k;

    #[test]
    fn knn_beats_chance_on_synthetic_mixture() {
        let (train, test) = SyntheticWm811k::new(16).scale(0.003).seed(4).build();
        let model = KnnBaseline::fit(&train, &FeatureConfig::default(), 5);
        let cm = model.evaluate(&test);
        assert!(cm.accuracy() > 0.5, "kNN accuracy {:.3}", cm.accuracy());
    }

    #[test]
    fn k_one_memorizes_training_data() {
        let (train, _) = SyntheticWm811k::new(16).scale(0.001).seed(5).build();
        let model = KnnBaseline::fit(&train, &FeatureConfig::default(), 1);
        let cm = model.evaluate(&train);
        // 1-NN on its own training set is perfect (distance 0 to self).
        assert!((cm.accuracy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let (train, test) = SyntheticWm811k::new(16).scale(0.0005).seed(6).build();
        let model = KnnBaseline::fit(&train, &FeatureConfig::default(), 10_000);
        let cm = model.evaluate(&test);
        assert_eq!(cm.total() as usize, test.len());
    }

    #[test]
    #[should_panic(expected = "k must be non-zero")]
    fn zero_k_rejected() {
        let (train, _) = SyntheticWm811k::new(16).scale(0.0005).seed(7).build();
        let _ = KnnBaseline::fit(&train, &FeatureConfig::default(), 0);
    }
}
