//! One-vs-one multiclass SVM over wafer-map features — the full
//! "SVM \[2\]" baseline pipeline.

use serde::{Deserialize, Serialize};

use crate::features::{extract, FeatureConfig};
use crate::{Standardizer, Svm, SvmParams};
use eval::ConfusionMatrix;
use wafermap::{Dataset, DefectClass, WaferMap};

/// The trained baseline: feature extractor config, standardizer, and
/// a one-vs-one committee of binary SVMs with majority voting
/// (decision-value sum as tie-break).
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmBaseline {
    feature_config: FeatureConfig,
    scaler: Standardizer,
    /// `(class_a, class_b, svm)` where the SVM labels `class_a` as +1.
    machines: Vec<(usize, usize, Svm)>,
    classes: Vec<usize>,
}

impl SvmBaseline {
    /// Extract features, fit the standardizer, and train the
    /// one-vs-one committee on `dataset`.
    ///
    /// Classes absent from the dataset are skipped (they can never be
    /// predicted).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or contains fewer than two
    /// classes.
    #[must_use]
    pub fn train(
        dataset: &Dataset,
        feature_config: &FeatureConfig,
        params: &SvmParams,
        seed: u64,
    ) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let maps: Vec<&wafermap::WaferMap> = dataset.iter().map(|s| &s.map).collect();
        let rows = crate::features::extract_batch(&maps, feature_config);
        let labels: Vec<usize> = dataset.iter().map(|s| s.label.index()).collect();
        let scaler = Standardizer::fit(&rows);
        let rows = scaler.transform_all(&rows);

        let counts = dataset.class_counts();
        let classes: Vec<usize> = (0..DefectClass::COUNT).filter(|&c| counts[c] > 0).collect();
        assert!(classes.len() >= 2, "need at least two classes to train");

        let mut machines = Vec::new();
        for (i, &a) in classes.iter().enumerate() {
            for &b in &classes[i + 1..] {
                let mut x = Vec::new();
                let mut y = Vec::new();
                for (row, &label) in rows.iter().zip(&labels) {
                    if label == a {
                        x.push(row.clone());
                        y.push(1.0);
                    } else if label == b {
                        x.push(row.clone());
                        y.push(-1.0);
                    }
                }
                let svm = Svm::train(&x, &y, params, seed ^ ((a as u64) << 32 | b as u64));
                machines.push((a, b, svm));
            }
        }
        SvmBaseline { feature_config: *feature_config, scaler, machines, classes }
    }

    /// Classes the committee can predict (those present at training).
    #[must_use]
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Number of pairwise machines (`k·(k−1)/2`).
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Predict the defect class of one wafer map by majority vote.
    #[must_use]
    pub fn predict(&self, map: &WaferMap) -> DefectClass {
        let features = self.scaler.transform(&extract(map, &self.feature_config));
        let mut votes = [0u32; DefectClass::COUNT];
        let mut margins = [0.0f32; DefectClass::COUNT];
        for (a, b, svm) in &self.machines {
            let d = svm.decision(&features);
            if d >= 0.0 {
                votes[*a] += 1;
                margins[*a] += d;
            } else {
                votes[*b] += 1;
                margins[*b] -= d;
            }
        }
        let best = self
            .classes
            .iter()
            .copied()
            .max_by(|&p, &q| {
                votes[p]
                    .cmp(&votes[q])
                    .then(margins[p].partial_cmp(&margins[q]).unwrap_or(std::cmp::Ordering::Equal))
            })
            .expect("at least one class");
        DefectClass::from_index(best).expect("valid class index")
    }

    /// Evaluate on a labeled dataset, returning the confusion matrix
    /// over all nine classes (rows/columns for absent classes stay
    /// zero).
    #[must_use]
    pub fn evaluate(&self, dataset: &Dataset) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(DefectClass::COUNT);
        for s in dataset {
            let pred = self.predict(&s.map);
            cm.record(s.label.index(), pred.index());
        }
        cm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafermap::gen::SyntheticWm811k;

    #[test]
    fn committee_size_matches_class_pairs() {
        let (train, _) = SyntheticWm811k::new(16).scale(0.001).seed(1).build();
        let model = SvmBaseline::train(&train, &FeatureConfig::default(), &SvmParams::default(), 2);
        // All nine classes present: 9·8/2 = 36 machines.
        assert_eq!(model.machine_count(), 36);
        assert_eq!(model.classes().len(), 9);
    }

    #[test]
    fn learns_separable_classes_well_above_chance() {
        let (train, test) = SyntheticWm811k::new(16).scale(0.003).seed(3).build();
        let model = SvmBaseline::train(&train, &FeatureConfig::default(), &SvmParams::default(), 4);
        let cm = model.evaluate(&test);
        assert!(cm.accuracy() > 0.6, "baseline far below expectation: {:.3}", cm.accuracy());
    }

    #[test]
    fn two_class_committee_works() {
        let (train, test) = SyntheticWm811k::new(16).scale(0.002).seed(5).build();
        let keep = |c: DefectClass| c == DefectClass::None || c == DefectClass::NearFull;
        let train2 = train.filtered(keep);
        let test2 = test.filtered(keep);
        let model =
            SvmBaseline::train(&train2, &FeatureConfig::default(), &SvmParams::default(), 6);
        assert_eq!(model.machine_count(), 1);
        let cm = model.evaluate(&test2);
        assert!(cm.accuracy() > 0.9, "easy pair accuracy {:.3}", cm.accuracy());
    }

    #[test]
    fn evaluate_covers_every_sample() {
        let (train, test) = SyntheticWm811k::new(16).scale(0.001).seed(7).build();
        let model = SvmBaseline::train(&train, &FeatureConfig::default(), &SvmParams::default(), 8);
        let cm = model.evaluate(&test);
        assert_eq!(cm.total() as usize, test.len());
    }
}
