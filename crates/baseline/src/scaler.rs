use serde::{Deserialize, Serialize};

/// Per-feature z-score standardization fit on a training matrix.
///
/// SVM margins are scale-sensitive, so features are standardized to
/// zero mean and unit variance before training; constant features get
/// unit scale (they become zeros).
///
/// # Example
///
/// ```
/// use baseline::Standardizer;
///
/// let rows = vec![vec![0.0, 10.0], vec![2.0, 10.0], vec![4.0, 10.0]];
/// let scaler = Standardizer::fit(&rows);
/// let t = scaler.transform(&rows[0]);
/// assert!((t[0] + 1.2247449).abs() < 1e-5);
/// assert_eq!(t[1], 0.0); // constant feature
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Standardizer {
    /// Fit means and stds on a set of feature rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have inconsistent lengths.
    #[must_use]
    pub fn fit(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a standardizer on no rows");
        let dim = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == dim), "inconsistent feature dimensions");
        let n = rows.len() as f32;
        let mut mean = vec![0.0f32; dim];
        for row in rows {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);
        let mut std = vec![0.0f32; dim];
        for row in rows {
            for ((s, &v), &m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in std.iter_mut() {
            *s = (*s / n).sqrt();
            if *s < 1e-8 {
                *s = 1.0;
            }
        }
        Standardizer { mean, std }
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Standardize one feature row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the fitted dimension.
    #[must_use]
    pub fn transform(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.dim(), "feature dimension mismatch");
        row.iter().zip(&self.mean).zip(&self.std).map(|((&v, &m), &s)| (v - m) / s).collect()
    }

    /// Standardize many rows.
    #[must_use]
    pub fn transform_all(&self, rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformed_data_has_zero_mean_unit_variance() {
        let rows: Vec<Vec<f32>> =
            (0..100).map(|i| vec![i as f32, (i * i) as f32 / 100.0]).collect();
        let scaler = Standardizer::fit(&rows);
        let t = scaler.transform_all(&rows);
        for d in 0..2 {
            let mean = t.iter().map(|r| r[d]).sum::<f32>() / 100.0;
            let var = t.iter().map(|r| (r[d] - mean).powi(2)).sum::<f32>() / 100.0;
            assert!(mean.abs() < 1e-4, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "dim {d} var {var}");
        }
    }

    #[test]
    fn constant_features_map_to_zero() {
        let rows = vec![vec![5.0], vec![5.0], vec![5.0]];
        let scaler = Standardizer::fit(&rows);
        assert_eq!(scaler.transform(&[5.0]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "no rows")]
    fn empty_fit_rejected() {
        let _ = Standardizer::fit(&[]);
    }
}
