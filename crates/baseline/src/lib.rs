//! The comparison baseline of the paper ("SVM \[2\]"): Wu, Jang & Chen,
//! *"Wafer map failure pattern recognition and similarity ranking for
//! large-scale data sets"* (IEEE TSM 2015) — hand-crafted features fed
//! to a support vector machine.
//!
//! Three feature families are extracted from each wafer map, mirroring
//! the original 59-dimensional design:
//!
//! - **13 density features** ([`features::density_features`]): fail
//!   density over 13 wafer zones (a 3×3 interior grid plus four edge
//!   quadrants).
//! - **40 Radon features** ([`features::radon_features`]): mean and
//!   standard deviation of the Radon projection at 20 angles.
//! - **6 geometry features** ([`features::geometry_features`]): area,
//!   perimeter, major/minor axis, eccentricity and solidity of the
//!   largest connected fail region.
//!
//! Classification uses a one-vs-one committee of kernel SVMs trained
//! with a simplified SMO solver — no external solver dependency.
//!
//! # Example
//!
//! ```
//! use baseline::{FeatureConfig, SvmBaseline, SvmParams};
//! use wafermap::gen::SyntheticWm811k;
//!
//! let (train, test) = SyntheticWm811k::new(16).scale(0.001).seed(5).build();
//! let model = SvmBaseline::train(&train, &FeatureConfig::default(), &SvmParams::default(), 9);
//! let cm = model.evaluate(&test);
//! assert_eq!(cm.total() as usize, test.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod features;
mod knn;
mod multiclass;
mod scaler;
mod svm;

pub use features::FeatureConfig;
pub use knn::KnnBaseline;
pub use multiclass::SvmBaseline;
pub use scaler::Standardizer;
pub use svm::{Kernel, Svm, SvmParams};
