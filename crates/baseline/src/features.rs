//! Hand-crafted wafer-map features (Wu et al., TSM'15).

use serde::{Deserialize, Serialize};

use wafermap::WaferMap;

/// Configuration of the feature extractor.
///
/// The three `use_*` flags allow feature-family ablations (the
/// `ablation_features` experiment); the default enables all 59
/// dimensions of the Wu et al. design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Number of Radon projection angles (each contributes a mean and
    /// a std feature; Wu et al. use 20 → 40 features).
    pub radon_angles: usize,
    /// Include the 13 zone-density features.
    pub use_density: bool,
    /// Include the Radon projection features.
    pub use_radon: bool,
    /// Include the 6 largest-region geometry features.
    pub use_geometry: bool,
}

impl FeatureConfig {
    /// Total feature dimensionality under the enabled families.
    #[must_use]
    pub fn dim(&self) -> usize {
        let mut dim = 0;
        if self.use_density {
            dim += 13;
        }
        if self.use_radon {
            dim += 2 * self.radon_angles;
        }
        if self.use_geometry {
            dim += 6;
        }
        dim
    }

    /// Only the 13 zone-density features.
    #[must_use]
    pub fn density_only() -> Self {
        FeatureConfig { use_radon: false, use_geometry: false, ..FeatureConfig::default() }
    }

    /// Only the Radon projection features.
    #[must_use]
    pub fn radon_only() -> Self {
        FeatureConfig { use_density: false, use_geometry: false, ..FeatureConfig::default() }
    }

    /// Only the largest-region geometry features.
    #[must_use]
    pub fn geometry_only() -> Self {
        FeatureConfig { use_density: false, use_radon: false, ..FeatureConfig::default() }
    }
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { radon_angles: 20, use_density: true, use_radon: true, use_geometry: true }
    }
}

/// Extract the full feature vector for one wafer map.
///
/// # Example
///
/// ```
/// use baseline::{features::extract, FeatureConfig};
/// use wafermap::WaferMap;
///
/// let cfg = FeatureConfig::default();
/// let map = WaferMap::blank(16, 16);
/// let features = extract(&map, &cfg);
/// assert_eq!(features.len(), cfg.dim());
/// ```
#[must_use]
pub fn extract(map: &WaferMap, config: &FeatureConfig) -> Vec<f32> {
    let mut out = Vec::with_capacity(config.dim());
    if config.use_density {
        out.extend(density_features(map));
    }
    if config.use_radon {
        out.extend(radon_features(map, config.radon_angles));
    }
    if config.use_geometry {
        out.extend(geometry_features(map));
    }
    out
}

/// Extract feature vectors for a batch of wafer maps, fanning the
/// per-map work (dominated by the Radon projections) out across the
/// worker pool. Output order matches input order regardless of thread
/// count.
#[must_use]
pub fn extract_batch(maps: &[&WaferMap], config: &FeatureConfig) -> Vec<Vec<f32>> {
    nn::pool::parallel_map(maps.len(), |i| extract(maps[i], config))
}

/// 13 zone fail-density features: a 3×3 grid over the wafer interior
/// (zones 0–8) plus four edge-band quadrants (zones 9–12).
///
/// Each value is the fraction of that zone's on-wafer dies that fail
/// (0 when a zone holds no dies).
#[must_use]
pub fn density_features(map: &WaferMap) -> Vec<f32> {
    let (cx, cy) = map.center();
    let radius = map.radius();
    let interior = radius * 0.82;
    let mut fails = [0u32; 13];
    let mut totals = [0u32; 13];
    for (x, y, die) in map.iter_on_wafer() {
        let dx = x as f32 - cx;
        let dy = y as f32 - cy;
        let r = (dx * dx + dy * dy).sqrt();
        let zone = if r <= interior {
            // 3×3 grid over the interior disc's bounding box.
            let gx = (((dx + interior) / (2.0 * interior)) * 3.0).clamp(0.0, 2.999) as usize;
            let gy = (((dy + interior) / (2.0 * interior)) * 3.0).clamp(0.0, 2.999) as usize;
            gy * 3 + gx
        } else {
            // Edge band split into four quadrants.
            9 + match (dx >= 0.0, dy >= 0.0) {
                (true, true) => 0,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            }
        };
        totals[zone] += 1;
        if die.is_fail() {
            fails[zone] += 1;
        }
    }
    (0..13).map(|z| if totals[z] == 0 { 0.0 } else { fails[z] as f32 / totals[z] as f32 }).collect()
}

/// Radon features: for each of `n_angles` projection directions
/// uniformly covering `[0°, 180°)`, project the binary fail mask onto
/// the direction's axis and record the projection's mean and standard
/// deviation — `2 · n_angles` values (mean block first, then stds).
///
/// # Panics
///
/// Panics if `n_angles` is zero.
#[must_use]
pub fn radon_features(map: &WaferMap, n_angles: usize) -> Vec<f32> {
    assert!(n_angles > 0, "need at least one projection angle");
    let (cx, cy) = map.center();
    // Projection axis length: enough bins to cover the diagonal.
    let diag = ((map.width() * map.width() + map.height() * map.height()) as f32).sqrt();
    let n_bins = diag.ceil() as usize + 1;
    let half = n_bins as f32 / 2.0;

    let fail_points: Vec<(f32, f32)> = map
        .iter_on_wafer()
        .filter(|(_, _, d)| d.is_fail())
        .map(|(x, y, _)| (x as f32 - cx, y as f32 - cy))
        .collect();

    let mut means = Vec::with_capacity(n_angles);
    let mut stds = Vec::with_capacity(n_angles);
    for a in 0..n_angles {
        let theta = (a as f32) * std::f32::consts::PI / n_angles as f32;
        let (sin, cos) = theta.sin_cos();
        let mut bins = vec![0.0f32; n_bins];
        for &(dx, dy) in &fail_points {
            // Signed distance of the die from the line through the
            // centre with direction θ.
            let proj = dx * cos + dy * sin;
            let idx = (proj + half).round().clamp(0.0, (n_bins - 1) as f32) as usize;
            bins[idx] += 1.0;
        }
        let mean = bins.iter().sum::<f32>() / n_bins as f32;
        let var = bins.iter().map(|b| (b - mean).powi(2)).sum::<f32>() / n_bins as f32;
        means.push(mean);
        stds.push(var.sqrt());
    }
    means.extend(stds);
    means
}

/// 6 geometry features of the largest connected fail region
/// (8-connectivity): normalized area, normalized perimeter, major and
/// minor axis lengths (PCA of the region's point cloud, normalized by
/// the wafer diameter), eccentricity, and solidity (area / bounding
/// box area).
///
/// All zeros for a wafer with no failures.
#[must_use]
pub fn geometry_features(map: &WaferMap) -> Vec<f32> {
    let region = largest_fail_region(map);
    if region.is_empty() {
        return vec![0.0; 6];
    }
    let on_wafer = map.on_wafer_count() as f32;
    let area = region.len() as f32 / on_wafer;

    // Perimeter: cells of the region with at least one non-region
    // 4-neighbour.
    let in_region: std::collections::HashSet<(usize, usize)> = region.iter().copied().collect();
    let perimeter = region
        .iter()
        .filter(|&&(x, y)| {
            let neighbors =
                [(x.wrapping_sub(1), y), (x + 1, y), (x, y.wrapping_sub(1)), (x, y + 1)];
            neighbors.iter().any(|n| !in_region.contains(n))
        })
        .count() as f32
        / on_wafer.sqrt();

    // PCA of region coordinates.
    let n = region.len() as f32;
    let mx = region.iter().map(|p| p.0 as f32).sum::<f32>() / n;
    let my = region.iter().map(|p| p.1 as f32).sum::<f32>() / n;
    let (mut sxx, mut syy, mut sxy) = (0.0f32, 0.0f32, 0.0f32);
    for &(x, y) in &region {
        let dx = x as f32 - mx;
        let dy = y as f32 - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    sxx /= n;
    syy /= n;
    sxy /= n;
    let trace = sxx + syy;
    let det = sxx * syy - sxy * sxy;
    let disc = ((trace * trace / 4.0) - det).max(0.0).sqrt();
    let l1 = (trace / 2.0 + disc).max(0.0); // major eigenvalue
    let l2 = (trace / 2.0 - disc).max(0.0); // minor eigenvalue
    let diameter = map.width().min(map.height()) as f32;
    let major = 4.0 * l1.sqrt() / diameter;
    let minor = 4.0 * l2.sqrt() / diameter;
    let eccentricity = if l1 > 0.0 { (1.0 - (l2 / l1)).max(0.0).sqrt() } else { 0.0 };

    // Solidity proxy: area over bounding-box area.
    let min_x = region.iter().map(|p| p.0).min().unwrap_or(0);
    let max_x = region.iter().map(|p| p.0).max().unwrap_or(0);
    let min_y = region.iter().map(|p| p.1).min().unwrap_or(0);
    let max_y = region.iter().map(|p| p.1).max().unwrap_or(0);
    let bbox = ((max_x - min_x + 1) * (max_y - min_y + 1)) as f32;
    let solidity = region.len() as f32 / bbox;

    vec![area, perimeter, major, minor, eccentricity, solidity]
}

/// Coordinates of the largest 8-connected component of failing dies.
#[must_use]
pub fn largest_fail_region(map: &WaferMap) -> Vec<(usize, usize)> {
    let w = map.width();
    let h = map.height();
    let mut visited = vec![false; w * h];
    let mut best: Vec<(usize, usize)> = Vec::new();
    for sy in 0..h {
        for sx in 0..w {
            if visited[sy * w + sx] || !map.get(sx, sy).is_fail() {
                continue;
            }
            // BFS flood fill.
            let mut component = Vec::new();
            let mut queue = std::collections::VecDeque::new();
            visited[sy * w + sx] = true;
            queue.push_back((sx, sy));
            while let Some((x, y)) = queue.pop_front() {
                component.push((x, y));
                for (nx, ny) in neighbors8(x, y, w, h) {
                    if !visited[ny * w + nx] && map.get(nx, ny).is_fail() {
                        visited[ny * w + nx] = true;
                        queue.push_back((nx, ny));
                    }
                }
            }
            if component.len() > best.len() {
                best = component;
            }
        }
    }
    best
}

fn neighbors8(x: usize, y: usize, w: usize, h: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(8);
    for dy in -1i32..=1 {
        for dx in -1i32..=1 {
            if dx == 0 && dy == 0 {
                continue;
            }
            let nx = x as i32 + dx;
            let ny = y as i32 + dy;
            if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                out.push((nx as usize, ny as usize));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use wafermap::gen::{generate, GenConfig};
    use wafermap::{DefectClass, Die};

    #[test]
    fn feature_dim_matches_config() {
        let cfg = FeatureConfig::default();
        assert_eq!(cfg.dim(), 59);
        let map = WaferMap::blank(16, 16);
        assert_eq!(extract(&map, &cfg).len(), 59);
    }

    #[test]
    fn feature_family_ablations_have_expected_dims() {
        assert_eq!(FeatureConfig::density_only().dim(), 13);
        assert_eq!(FeatureConfig::radon_only().dim(), 40);
        assert_eq!(FeatureConfig::geometry_only().dim(), 6);
        let map = WaferMap::blank(16, 16);
        assert_eq!(extract(&map, &FeatureConfig::geometry_only()).len(), 6);
    }

    #[test]
    fn clean_wafer_features_are_zero() {
        let map = WaferMap::blank(20, 20);
        assert!(density_features(&map).iter().all(|&v| v == 0.0));
        assert!(geometry_features(&map).iter().all(|&v| v == 0.0));
        let radon = radon_features(&map, 8);
        assert!(radon.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn density_zones_localize_failures() {
        let mut map = WaferMap::blank(24, 24);
        // A failure cluster in the upper-left interior -> zone 0.
        for x in 7..10 {
            for y in 7..10 {
                map.set(x, y, Die::Fail);
            }
        }
        let d = density_features(&map);
        assert!(d[0] > 0.0, "zone 0 empty: {d:?}");
        assert_eq!(d[8], 0.0, "opposite interior zone should be clean");
    }

    #[test]
    fn edge_zone_catches_edge_failures() {
        let mut map = WaferMap::blank(24, 24);
        // Failures on the right edge (positive dx, around dy=0).
        for (x, y, _) in map.clone().iter_on_wafer() {
            let dx = x as f32 - 11.5;
            let dy = y as f32 - 11.5;
            if dx > 9.0 && dy.abs() < 4.0 {
                map.set(x, y, Die::Fail);
            }
        }
        let d = density_features(&map);
        let edge_sum: f32 = d[9..13].iter().sum();
        assert!(edge_sum > 0.0);
    }

    #[test]
    fn radon_distinguishes_line_orientation() {
        // A horizontal scratch has very different projection variance
        // at 0° vs 90°.
        let mut map = WaferMap::blank(24, 24);
        for x in 6..18 {
            map.set(x, 12, Die::Fail);
        }
        let feats = radon_features(&map, 4); // angles 0°, 45°, 90°, 135°
        let stds = &feats[4..];
        // Projecting onto the x-axis (θ=0) spreads the line; onto the
        // y-axis (θ=90°) concentrates it into one bin -> higher std.
        assert!(stds[2] > stds[0] * 1.5, "expected θ=90° std >> θ=0° std, got {stds:?}");
    }

    #[test]
    fn geometry_separates_blob_from_scratch() {
        let cfg = GenConfig::new(24).with_background_fail_rate(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let blob = generate(DefectClass::Center, &cfg, &mut rng);
        let scratch = generate(DefectClass::Scratch, &cfg, &mut rng);
        let gb = geometry_features(&blob);
        let gs = geometry_features(&scratch);
        // Scratches are far more eccentric than centre blobs.
        assert!(gs[4] > gb[4], "eccentricity: scratch {} vs blob {}", gs[4], gb[4]);
    }

    #[test]
    fn largest_region_picks_the_bigger_component() {
        let mut map = WaferMap::blank(16, 16);
        map.set(4, 4, Die::Fail); // singleton
        for x in 8..12 {
            map.set(x, 8, Die::Fail); // 4-cell line
        }
        let region = largest_fail_region(&map);
        assert_eq!(region.len(), 4);
    }

    #[test]
    fn near_full_has_max_area() {
        let cfg = GenConfig::new(16);
        let mut rng = StdRng::seed_from_u64(2);
        let nf = generate(DefectClass::NearFull, &cfg, &mut rng);
        let g = geometry_features(&nf);
        assert!(g[0] > 0.5, "near-full area feature too small: {}", g[0]);
    }
}
