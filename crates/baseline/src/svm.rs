//! A binary soft-margin kernel SVM trained with simplified SMO
//! (Platt's algorithm in the form popularized by the Stanford CS229
//! notes): repeatedly pick a multiplier violating the KKT conditions,
//! pair it with a random second multiplier, and solve the
//! two-variable subproblem analytically.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// SVM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(a, b) = aᵀb`.
    Linear,
    /// `K(a, b) = exp(−γ‖a − b‖²)`.
    Rbf {
        /// Kernel width γ.
        gamma: f32,
    },
}

impl Kernel {
    /// Evaluate the kernel on two feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    #[must_use]
    pub fn eval(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "kernel dimension mismatch");
        match *self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmParams {
    /// Soft-margin penalty `C`.
    pub c: f32,
    /// Kernel.
    pub kernel: Kernel,
    /// KKT violation tolerance.
    pub tol: f32,
    /// Stop after this many consecutive passes without updates.
    pub max_passes: usize,
    /// Hard cap on total passes over the data.
    pub max_iter: usize,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            c: 1.0,
            kernel: Kernel::Rbf { gamma: 0.05 },
            tol: 1e-3,
            max_passes: 3,
            max_iter: 60,
        }
    }
}

/// A trained binary SVM: support vectors, dual coefficients and bias.
///
/// # Example
///
/// ```
/// use baseline::{Kernel, Svm, SvmParams};
///
/// // Linearly separable 1-D data.
/// let x = vec![vec![-2.0], vec![-1.5], vec![1.5], vec![2.0]];
/// let y = vec![-1.0, -1.0, 1.0, 1.0];
/// let params = SvmParams { kernel: Kernel::Linear, ..SvmParams::default() };
/// let svm = Svm::train(&x, &y, &params, 0);
/// assert!(svm.decision(&[3.0]) > 0.0);
/// assert!(svm.decision(&[-3.0]) < 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Svm {
    support_vectors: Vec<Vec<f32>>,
    /// `α_i · y_i` for each support vector.
    coefficients: Vec<f32>,
    bias: f32,
    kernel: Kernel,
}

impl Svm {
    /// Train on feature rows `x` and labels `y ∈ {−1, +1}`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, lengths mismatch, labels are not
    /// ±1, or only one class is present.
    #[must_use]
    pub fn train(x: &[Vec<f32>], y: &[f32], params: &SvmParams, seed: u64) -> Self {
        let n = x.len();
        assert!(n > 0, "cannot train on no samples");
        assert_eq!(y.len(), n, "labels length mismatch");
        assert!(y.iter().all(|&v| v == 1.0 || v == -1.0), "labels must be ±1");
        assert!(y.contains(&1.0) && y.contains(&-1.0), "need both classes to train");

        // Precompute the kernel matrix (training sets here are small
        // enough; 2000² f32 = 16 MB).
        let k: Vec<f32> = {
            let mut k = vec![0.0f32; n * n];
            for i in 0..n {
                for j in i..n {
                    let v = params.kernel.eval(&x[i], &x[j]);
                    k[i * n + j] = v;
                    k[j * n + i] = v;
                }
            }
            k
        };

        let mut alpha = vec![0.0f32; n];
        let mut b = 0.0f32;
        let mut rng = StdRng::seed_from_u64(seed);
        let decision = |alpha: &[f32], b: f32, idx: usize, k: &[f32]| -> f32 {
            let mut s = b;
            for (j, &a) in alpha.iter().enumerate() {
                if a != 0.0 {
                    s += a * y[j] * k[idx * n + j];
                }
            }
            s
        };

        let mut passes = 0usize;
        let mut iter = 0usize;
        while passes < params.max_passes && iter < params.max_iter {
            iter += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let ei = decision(&alpha, b, i, &k) - y[i];
                let violates = (y[i] * ei < -params.tol && alpha[i] < params.c)
                    || (y[i] * ei > params.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // Pick j != i at random.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = decision(&alpha, b, j, &k) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if y[i] == y[j] {
                    ((ai_old + aj_old - params.c).max(0.0), (ai_old + aj_old).min(params.c))
                } else {
                    ((aj_old - ai_old).max(0.0), (params.c + aj_old - ai_old).min(params.c))
                };
                if lo >= hi - 1e-8 {
                    continue;
                }
                let eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;
                let b1 = b
                    - ei
                    - y[i] * (ai - ai_old) * k[i * n + i]
                    - y[j] * (aj - aj_old) * k[i * n + j];
                let b2 = b
                    - ej
                    - y[i] * (ai - ai_old) * k[i * n + j]
                    - y[j] * (aj - aj_old) * k[j * n + j];
                b = if ai > 0.0 && ai < params.c {
                    b1
                } else if aj > 0.0 && aj < params.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Keep only support vectors.
        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                support_vectors.push(x[i].clone());
                coefficients.push(alpha[i] * y[i]);
            }
        }
        Svm { support_vectors, coefficients, bias: b, kernel: params.kernel }
    }

    /// Signed decision value; positive means class `+1`.
    #[must_use]
    pub fn decision(&self, x: &[f32]) -> f32 {
        let mut s = self.bias;
        for (sv, &c) in self.support_vectors.iter().zip(&self.coefficients) {
            s += c * self.kernel.eval(sv, x);
        }
        s
    }

    /// Hard classification: `+1` or `−1`.
    #[must_use]
    pub fn predict(&self, x: &[f32]) -> f32 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Number of support vectors retained.
    #[must_use]
    pub fn support_vector_count(&self) -> usize {
        self.support_vectors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_dataset(n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        // Inner disc = +1, outer ring = −1: not linearly separable.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let theta = i as f32 * 0.7;
            let r = if i % 2 == 0 { 0.5 } else { 2.0 };
            x.push(vec![r * theta.cos(), r * theta.sin()]);
            y.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        (x, y)
    }

    #[test]
    fn linear_svm_separates_linear_data() {
        let x: Vec<Vec<f32>> =
            (0..40).map(|i| vec![i as f32 / 10.0 - 2.0, (i % 7) as f32 / 7.0]).collect();
        let y: Vec<f32> = x.iter().map(|p| if p[0] > 0.0 { 1.0 } else { -1.0 }).collect();
        let params = SvmParams { kernel: Kernel::Linear, ..SvmParams::default() };
        let svm = Svm::train(&x, &y, &params, 1);
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| svm.predict(xi) == yi).count();
        assert!(correct >= 38, "linear SVM only got {correct}/40");
    }

    #[test]
    fn rbf_svm_separates_ring_data() {
        let (x, y) = ring_dataset(60);
        let params = SvmParams { kernel: Kernel::Rbf { gamma: 1.0 }, ..SvmParams::default() };
        let svm = Svm::train(&x, &y, &params, 2);
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| svm.predict(xi) == yi).count();
        assert!(correct >= 57, "RBF SVM only got {correct}/60");
    }

    #[test]
    fn linear_svm_cannot_separate_ring_but_rbf_can() {
        let (x, y) = ring_dataset(60);
        let lin =
            Svm::train(&x, &y, &SvmParams { kernel: Kernel::Linear, ..SvmParams::default() }, 3);
        let lin_correct = x.iter().zip(&y).filter(|(xi, &yi)| lin.predict(xi) == yi).count();
        assert!(lin_correct < 45, "linear should fail on rings: {lin_correct}/60");
    }

    #[test]
    fn decision_margin_sign_far_from_boundary() {
        let x = vec![vec![-1.0f32], vec![1.0]];
        let y = vec![-1.0, 1.0];
        let params = SvmParams { kernel: Kernel::Linear, ..SvmParams::default() };
        let svm = Svm::train(&x, &y, &params, 4);
        assert!(svm.decision(&[10.0]) > svm.decision(&[0.5]));
    }

    #[test]
    fn kernel_values() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let rbf = Kernel::Rbf { gamma: 0.5 };
        assert!((rbf.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-6);
        assert!(rbf.eval(&[0.0], &[10.0]) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![1.0, 1.0];
        let _ = Svm::train(&x, &y, &SvmParams::default(), 5);
    }

    #[test]
    fn sparse_model_keeps_few_support_vectors() {
        // Well-separated clusters need only boundary points.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            x.push(vec![-5.0 - (i % 5) as f32, 0.0]);
            y.push(-1.0);
            x.push(vec![5.0 + (i % 5) as f32, 0.0]);
            y.push(1.0);
        }
        let params = SvmParams { kernel: Kernel::Linear, ..SvmParams::default() };
        let svm = Svm::train(&x, &y, &params, 6);
        assert!(svm.support_vector_count() < 30, "too many SVs: {}", svm.support_vector_count());
    }
}
