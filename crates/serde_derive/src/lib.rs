//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes this workspace actually uses — non-generic structs with
//! named fields, and enums with unit / tuple / struct variants —
//! without depending on `syn`/`quote` (unavailable offline). The
//! derive input is parsed directly from the `proc_macro` token stream
//! and the generated impl is emitted as source text.
//!
//! Supported field attributes: `#[serde(skip)]` and
//! `#[serde(skip, default = "path")]`. Anything else (renames,
//! generics, tuple structs) fails loudly at compile time rather than
//! silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed `#[derive]` input: a struct or an enum.
enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

struct Field {
    name: String,
    skip: bool,
    default_fn: Option<String>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Derive `serde::Serialize` (the workspace's offline stand-in).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let out = match &item {
        Item::Struct { name, fields } => {
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
                 {body}\
                 let _ = &mut fields;\n\
                 serde::Value::Object(fields)\n\
                 }}\n}}\n",
                body = fields
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| format!(
                        "fields.push((\"{n}\".to_string(), \
                         serde::Serialize::to_value(&self.{n})));\n",
                        n = f.name
                    ))
                    .collect::<String>()
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants.iter().map(|v| serialize_variant_arm(name, v)).collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    };
    out.parse().expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (the workspace's offline stand-in).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let out = match &item {
        Item::Struct { name, fields } => {
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 if value.as_object().is_none() {{\n\
                 return Err(serde::Error::expected(\"object for `{name}`\", value));\n\
                 }}\n\
                 Ok({name} {{\n{body}}})\n\
                 }}\n}}\n",
                body = struct_fields_from_value(name, fields, "value")
            )
        }
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    out.parse().expect("serde_derive generated invalid Deserialize impl")
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("{enum_name}::{vn} => serde::Value::String(\"{vn}\".to_string()),\n")
        }
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{vn}(f0) => serde::Value::Object(vec![(\"{vn}\".to_string(), \
             serde::Serialize::to_value(f0))]),\n"
        ),
        VariantKind::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: Vec<String> =
                binders.iter().map(|b| format!("serde::Serialize::to_value({b})")).collect();
            format!(
                "{enum_name}::{vn}({binds}) => serde::Value::Object(vec![(\"{vn}\".to_string(), \
                 serde::Value::Array(vec![{items}]))]),\n",
                binds = binders.join(", "),
                items = items.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let binds: Vec<&str> =
                fields.iter().filter(|f| !f.skip).map(|f| f.name.as_str()).collect();
            let pushes: String = binds
                .iter()
                .map(|n| {
                    format!(
                        "fields.push((\"{n}\".to_string(), serde::Serialize::to_value({n})));\n"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vn} {{ {binds}{dots} }} => {{\n\
                 let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(fields))])\n\
                 }},\n",
                binds = binds.join(", "),
                dots = if binds.len() == fields.len() { "" } else { ", .." }
            )
        }
    }
}

/// Field initializers `name: <expr>,` for deserializing a struct (or
/// struct variant) out of the object value named by `src`.
fn struct_fields_from_value(ty_label: &str, fields: &[Field], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let n = &f.name;
            if f.skip {
                match &f.default_fn {
                    Some(path) => format!("{n}: {path}(),\n"),
                    None => format!("{n}: Default::default(),\n"),
                }
            } else {
                format!(
                    "{n}: match {src}.get(\"{n}\") {{\n\
                     Some(v) => serde::Deserialize::from_value(v)?,\n\
                     None => return Err(serde::Error::missing_field(\"{ty_label}\", \"{n}\")),\n\
                     }},\n"
                )
            }
        })
        .collect()
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),\n", vn = v.name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),\n"
                )),
                VariantKind::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                         let items = inner.as_array()\
                         .ok_or_else(|| serde::Error::expected(\"array for `{name}::{vn}`\", inner))?;\n\
                         if items.len() != {n} {{\n\
                         return Err(serde::Error::custom(\
                         \"wrong tuple arity for `{name}::{vn}`\"));\n\
                         }}\n\
                         Ok({name}::{vn}({elems}))\n\
                         }},\n",
                        elems = elems.join(", ")
                    ))
                }
                VariantKind::Struct(fields) => Some(format!(
                    "\"{vn}\" => {{\n\
                     if inner.as_object().is_none() {{\n\
                     return Err(serde::Error::expected(\"object for `{name}::{vn}`\", inner));\n\
                     }}\n\
                     Ok({name}::{vn} {{\n{body}}})\n\
                     }},\n",
                    body = struct_fields_from_value(&format!("{name}::{vn}"), fields, "inner")
                )),
            }
        })
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
         if let Some(s) = value.as_str() {{\n\
         match s {{\n\
         {unit_arms}\
         other => return Err(serde::Error::custom(\
         format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
         }}\n\
         }}\n\
         let obj = value.as_object()\
         .ok_or_else(|| serde::Error::expected(\"string or object for `{name}`\", value))?;\n\
         if obj.len() != 1 {{\n\
         return Err(serde::Error::custom(\"expected single-key object for enum `{name}`\"));\n\
         }}\n\
         let (tag, inner) = &obj[0];\n\
         let _ = inner;\n\
         match tag.as_str() {{\n\
         {tagged_arms}\
         other => Err(serde::Error::custom(\
         format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
         }}\n\
         }}\n}}\n"
    )
}

// ---- token-stream parsing -------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(peek_punct(&tokens, pos), Some('<')) {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }
    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde stand-in derive: expected braced body for `{name}`, got {other:?} \
             (tuple/unit structs are not supported)"
        ),
    };
    match keyword.as_str() {
        "struct" => Item::Struct { name, fields: parse_fields(body) },
        "enum" => Item::Enum { name, variants: parse_variants(body) },
        other => panic!("serde stand-in derive: unexpected item keyword `{other}`"),
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let (skip, default_fn) = collect_serde_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        match peek_punct(&tokens, pos) {
            Some(':') => pos += 1,
            _ => panic!("serde stand-in derive: expected `:` after field `{name}`"),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, skip, default_fn });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        let name = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_elements(g.stream());
                pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                pos += 1;
                VariantKind::Struct(parse_fields(inner))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present, then
        // the separating comma.
        while pos < tokens.len() && !matches!(peek_punct(&tokens, pos), Some(',')) {
            pos += 1;
        }
        if pos < tokens.len() {
            pos += 1; // the comma
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Number of comma-separated elements at the top level of a token
/// stream (angle-bracket aware; groups are atomic tokens already).
fn count_top_level_elements(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    count
}

/// Consume attributes, returning any `#[serde(...)]` skip/default
/// settings found among them.
fn collect_serde_attrs(tokens: &[TokenTree], pos: &mut usize) -> (bool, Option<String>) {
    let mut skip = false;
    let mut default_fn = None;
    while matches!(peek_punct(tokens, *pos), Some('#')) {
        *pos += 1;
        let group = match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g.stream(),
            other => panic!("serde stand-in derive: malformed attribute at {other:?}"),
        };
        *pos += 1;
        let inner: Vec<TokenTree> = group.into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let args = match inner.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            other => panic!("serde stand-in derive: malformed #[serde] attribute at {other:?}"),
        };
        let args: Vec<TokenTree> = args.into_iter().collect();
        let mut i = 0;
        while i < args.len() {
            match &args[i] {
                TokenTree::Ident(ident) => match ident.to_string().as_str() {
                    "skip" => skip = true,
                    "default" => {
                        // default = "path"
                        i += 1;
                        assert!(
                            matches!(&args[i], TokenTree::Punct(p) if p.as_char() == '='),
                            "serde stand-in derive: expected `=` after `default`"
                        );
                        i += 1;
                        let lit = args[i].to_string();
                        default_fn = Some(lit.trim_matches('"').to_string());
                    }
                    other => panic!(
                        "serde stand-in derive: unsupported #[serde({other})] attribute \
                         (only `skip` and `default = \"path\"` are implemented)"
                    ),
                },
                TokenTree::Punct(p) if p.as_char() == ',' => {}
                other => panic!("serde stand-in derive: unexpected token {other:?} in #[serde]"),
            }
            i += 1;
        }
    }
    (skip, default_fn)
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    let _ = collect_serde_attrs(tokens, pos);
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

/// Consume a field's type: everything up to the next top-level comma.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while *pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*pos] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde stand-in derive: expected identifier, got {other:?}"),
    }
}

fn peek_punct(tokens: &[TokenTree], pos: usize) -> Option<char> {
    match tokens.get(pos) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    }
}
