use serde::{Deserialize, Serialize};

use crate::Die;

/// A wafer map: a rectangular die grid with a circular wafer region.
///
/// Locations outside the inscribed circle are [`Die::OffWafer`]; dies
/// inside are [`Die::Pass`] or [`Die::Fail`]. The grid is square in
/// practice (WM-811K maps are near-square), but width and height are
/// tracked independently.
///
/// # Example
///
/// ```
/// use wafermap::{Die, WaferMap};
///
/// let mut map = WaferMap::blank(16, 16);
/// assert!(map.get(8, 8).is_on_wafer());
/// assert_eq!(map.get(0, 0), Die::OffWafer);
/// map.set(8, 8, Die::Fail);
/// assert_eq!(map.fail_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaferMap {
    width: usize,
    height: usize,
    dies: Vec<Die>,
}

impl WaferMap {
    /// Create an all-pass wafer: dies inside the inscribed circle are
    /// [`Die::Pass`], the rest [`Die::OffWafer`].
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    #[must_use]
    pub fn blank(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "wafer dimensions must be non-zero");
        let mut map = WaferMap { width, height, dies: vec![Die::OffWafer; width * height] };
        let (cx, cy) = map.center();
        let radius = map.radius();
        for y in 0..height {
            for x in 0..width {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                if (dx * dx + dy * dy).sqrt() <= radius {
                    map.dies[y * width + x] = Die::Pass;
                }
            }
        }
        map
    }

    /// Build a wafer map from an explicit die grid in row-major order.
    ///
    /// # Errors
    ///
    /// Returns an error if `dies.len() != width * height` or either
    /// dimension is zero.
    pub fn from_dies(width: usize, height: usize, dies: Vec<Die>) -> Result<Self, ShapeError> {
        if width == 0 || height == 0 || dies.len() != width * height {
            return Err(ShapeError { width, height, len: dies.len() });
        }
        Ok(WaferMap { width, height, dies })
    }

    /// Grid width in dies.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in dies.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of grid locations (`width * height`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.dies.len()
    }

    /// Whether the grid is empty (never true for a constructed map).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dies.is_empty()
    }

    /// Centre of the wafer in grid coordinates.
    #[must_use]
    pub fn center(&self) -> (f32, f32) {
        ((self.width as f32 - 1.0) / 2.0, (self.height as f32 - 1.0) / 2.0)
    }

    /// Radius of the inscribed wafer circle in die units.
    #[must_use]
    pub fn radius(&self) -> f32 {
        (self.width.min(self.height) as f32 - 1.0) / 2.0 + 0.4
    }

    /// Die state at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> Die {
        assert!(x < self.width && y < self.height, "die index out of bounds");
        self.dies[y * self.width + x]
    }

    /// Set the die state at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    pub fn set(&mut self, x: usize, y: usize, die: Die) {
        assert!(x < self.width && y < self.height, "die index out of bounds");
        self.dies[y * self.width + x] = die;
    }

    /// Mark the die at `(x, y)` as failed, if it is on the wafer.
    /// Off-wafer locations are left untouched, which lets pattern
    /// generators paint freely without clipping logic.
    pub fn fail_if_on_wafer(&mut self, x: usize, y: usize) {
        if x < self.width && y < self.height && self.dies[y * self.width + x].is_on_wafer() {
            self.dies[y * self.width + x] = Die::Fail;
        }
    }

    /// Row-major slice of all dies.
    #[must_use]
    pub fn dies(&self) -> &[Die] {
        &self.dies
    }

    /// Number of dies on the wafer (pass + fail).
    #[must_use]
    pub fn on_wafer_count(&self) -> usize {
        self.dies.iter().filter(|d| d.is_on_wafer()).count()
    }

    /// Number of failing dies.
    #[must_use]
    pub fn fail_count(&self) -> usize {
        self.dies.iter().filter(|d| d.is_fail()).count()
    }

    /// Fraction of on-wafer dies that fail, in `[0, 1]`. Returns 0 for
    /// a map with no on-wafer dies.
    #[must_use]
    pub fn fail_ratio(&self) -> f32 {
        let on = self.on_wafer_count();
        if on == 0 {
            0.0
        } else {
            self.fail_count() as f32 / on as f32
        }
    }

    /// Normalized image representation: one `f32` per grid location in
    /// row-major order, with off-wafer = 0.0, pass = 0.5, fail = 1.0.
    /// This is the tensor fed to the CNN.
    #[must_use]
    pub fn to_image(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dies.len()];
        self.write_image_into(&mut out);
        out
    }

    /// Write the normalized image (see [`WaferMap::to_image`]) into a
    /// caller-provided buffer — the allocation-free variant used by
    /// batch-staging hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `dest.len()` does not equal the grid size.
    pub fn write_image_into(&self, dest: &mut [f32]) {
        assert_eq!(dest.len(), self.dies.len(), "image buffer length mismatch");
        for (slot, die) in dest.iter_mut().zip(&self.dies) {
            *slot = die.intensity();
        }
    }

    /// Reconstruct a wafer map from a continuous image by quantizing
    /// each value to the nearest of the three die levels (the
    /// quantization step of Algorithm 1, line 7).
    ///
    /// The circular wafer `mask` of `reference` is re-imposed: a
    /// location that is off-wafer in `reference` stays off-wafer, and a
    /// location on the wafer is never quantized to off-wafer (it snaps
    /// to pass when the decoder output is low).
    ///
    /// # Errors
    ///
    /// Returns an error if `image.len()` does not match the reference
    /// grid size.
    pub fn from_image_masked(image: &[f32], reference: &WaferMap) -> Result<Self, ShapeError> {
        if image.len() != reference.len() {
            return Err(ShapeError {
                width: reference.width,
                height: reference.height,
                len: image.len(),
            });
        }
        let dies = reference
            .dies
            .iter()
            .zip(image)
            .map(|(&ref_die, &v)| {
                if !ref_die.is_on_wafer() {
                    Die::OffWafer
                } else {
                    match Die::from_intensity(v) {
                        Die::OffWafer => Die::Pass,
                        d => d,
                    }
                }
            })
            .collect();
        Ok(WaferMap { width: reference.width, height: reference.height, dies })
    }

    /// Iterate over `(x, y, die)` for all on-wafer locations.
    pub fn iter_on_wafer(&self) -> impl Iterator<Item = (usize, usize, Die)> + '_ {
        let width = self.width;
        self.dies
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_on_wafer())
            .map(move |(i, &d)| (i % width, i / width, d))
    }
}

/// Error for mismatched grid dimensions when constructing a
/// [`WaferMap`] from raw data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    width: usize,
    height: usize,
    len: usize,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data length {} does not match {}x{} wafer grid",
            self.len, self.width, self.height
        )
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_wafer_is_circular() {
        let map = WaferMap::blank(20, 20);
        // Corners off-wafer, centre on-wafer.
        assert_eq!(map.get(0, 0), Die::OffWafer);
        assert_eq!(map.get(19, 19), Die::OffWafer);
        assert!(map.get(10, 10).is_on_wafer());
        // The circle should cover most of π r² ≈ 0.785 of the grid.
        let ratio = map.on_wafer_count() as f32 / map.len() as f32;
        assert!(ratio > 0.7 && ratio < 0.85, "unexpected wafer area ratio {ratio}");
    }

    #[test]
    fn blank_wafer_has_no_failures() {
        let map = WaferMap::blank(16, 16);
        assert_eq!(map.fail_count(), 0);
        assert_eq!(map.fail_ratio(), 0.0);
    }

    #[test]
    fn from_dies_validates_shape() {
        assert!(WaferMap::from_dies(4, 4, vec![Die::Pass; 16]).is_ok());
        assert!(WaferMap::from_dies(4, 4, vec![Die::Pass; 15]).is_err());
        assert!(WaferMap::from_dies(0, 4, vec![]).is_err());
    }

    #[test]
    fn fail_if_on_wafer_skips_off_wafer_and_out_of_bounds() {
        let mut map = WaferMap::blank(16, 16);
        map.fail_if_on_wafer(0, 0); // off-wafer corner
        map.fail_if_on_wafer(100, 100); // out of bounds: no panic
        assert_eq!(map.fail_count(), 0);
        map.fail_if_on_wafer(8, 8);
        assert_eq!(map.fail_count(), 1);
    }

    #[test]
    fn image_roundtrip_preserves_map() {
        let mut map = WaferMap::blank(12, 12);
        map.set(6, 6, Die::Fail);
        map.set(5, 6, Die::Fail);
        let image = map.to_image();
        let back = WaferMap::from_image_masked(&image, &map).expect("same shape");
        assert_eq!(back, map);
    }

    #[test]
    fn from_image_masked_reimposes_wafer_mask() {
        let map = WaferMap::blank(8, 8);
        // An all-fail image: off-wafer locations must stay off-wafer.
        let image = vec![1.0; map.len()];
        let back = WaferMap::from_image_masked(&image, &map).expect("same shape");
        assert_eq!(back.on_wafer_count(), map.on_wafer_count());
        assert_eq!(back.fail_count(), map.on_wafer_count());
        // A low-intensity image on-wafer snaps to Pass, not OffWafer.
        let dark = vec![0.1; map.len()];
        let back = WaferMap::from_image_masked(&dark, &map).expect("same shape");
        assert_eq!(back.fail_count(), 0);
        assert_eq!(back.on_wafer_count(), map.on_wafer_count());
    }

    #[test]
    fn from_image_masked_rejects_wrong_len() {
        let map = WaferMap::blank(8, 8);
        assert!(WaferMap::from_image_masked(&[0.0; 3], &map).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_panics_out_of_bounds() {
        let map = WaferMap::blank(8, 8);
        let _ = map.get(8, 0);
    }

    #[test]
    fn iter_on_wafer_agrees_with_counts() {
        let mut map = WaferMap::blank(10, 10);
        map.set(5, 5, Die::Fail);
        let n = map.iter_on_wafer().count();
        assert_eq!(n, map.on_wafer_count());
        let fails = map.iter_on_wafer().filter(|(_, _, d)| d.is_fail()).count();
        assert_eq!(fails, 1);
    }
}
