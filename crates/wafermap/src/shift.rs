//! Distribution-shift generators for the concept-drift experiment
//! (paper Section IV-A / IV-D).
//!
//! The paper observed that on WM-811K's original "Test" split — whose
//! distribution differs substantially from "Train" — the selective
//! model's coverage collapsed from ~50% to ~5% while selected-sample
//! accuracy stayed at 99%, flagging the shift. This module produces a
//! controllably shifted test distribution so that experiment can be
//! reproduced: weakened/intensified patterns, heavier background
//! noise, and a fraction of wafers carrying two superimposed patterns.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::gen::{generate, generate_mixed, Dataset, GenConfig, Sample};
use crate::DefectClass;

/// Parameters describing how far the shifted distribution departs from
/// the nominal one. `ShiftConfig::default()` is a moderate shift;
/// [`ShiftConfig::severe`] approximates the paper's Train/Test
/// discrepancy.
///
/// # Example
///
/// ```
/// use wafermap::shift::ShiftConfig;
///
/// let severe = ShiftConfig::severe();
/// assert!(severe.mixed_fraction > ShiftConfig::default().mixed_fraction);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftConfig {
    /// Multiplier on systematic pattern density (1.0 = unchanged;
    /// values < 1 blur class signatures).
    pub pattern_strength: f32,
    /// Background fail-rate range for shifted wafers.
    pub background: (f32, f32),
    /// Fraction of wafers that carry two superimposed defect patterns.
    pub mixed_fraction: f64,
}

impl ShiftConfig {
    /// A moderate shift: weakened patterns, noisier background, 15%
    /// mixed-pattern wafers.
    #[must_use]
    pub fn moderate() -> Self {
        ShiftConfig { pattern_strength: 0.6, background: (0.04, 0.10), mixed_fraction: 0.15 }
    }

    /// A severe shift approximating the WM-811K Train/Test
    /// discrepancy: strongly weakened patterns, heavy background
    /// noise, 35% mixed wafers.
    #[must_use]
    pub fn severe() -> Self {
        ShiftConfig { pattern_strength: 0.35, background: (0.08, 0.18), mixed_fraction: 0.35 }
    }
}

impl Default for ShiftConfig {
    fn default() -> Self {
        ShiftConfig::moderate()
    }
}

/// Generate a shifted dataset with `per_class` wafers of each class.
///
/// Mixed-pattern wafers keep the label of their *first* pattern — just
/// as a human labeller forced to pick a single class would — which is
/// precisely the ambiguity that should push a selective model to
/// abstain.
#[must_use]
pub fn shifted_dataset(grid: usize, per_class: usize, cfg: &ShiftConfig, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let gen_cfg = GenConfig::new(grid)
        .with_pattern_strength(cfg.pattern_strength)
        .with_background_fail_rate(cfg.background.0, cfg.background.1);
    let mut ds = Dataset::new(grid);
    for class in DefectClass::ALL {
        for _ in 0..per_class {
            let map = if rng.gen_bool(cfg.mixed_fraction) {
                let other = random_other_class(class, &mut rng);
                generate_mixed(class, other, &gen_cfg, &mut rng)
            } else {
                generate(class, &gen_cfg, &mut rng)
            };
            ds.push(Sample::original(map, class));
        }
    }
    ds
}

fn random_other_class<R: Rng + ?Sized>(class: DefectClass, rng: &mut R) -> DefectClass {
    loop {
        let candidate = DefectClass::ALL[rng.gen_range(0..DefectClass::COUNT)];
        // Mixing with None or NearFull produces a wafer identical to a
        // single-pattern one; pick a genuinely different defect.
        if candidate != class
            && candidate != DefectClass::None
            && candidate != DefectClass::NearFull
        {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifted_dataset_has_requested_size() {
        let ds = shifted_dataset(16, 3, &ShiftConfig::default(), 11);
        assert_eq!(ds.len(), 3 * DefectClass::COUNT);
        for count in ds.class_counts() {
            assert_eq!(count, 3);
        }
    }

    #[test]
    fn severe_shift_is_noisier_than_nominal() {
        let shifted = shifted_dataset(24, 10, &ShiftConfig::severe(), 12);
        let (nominal, _) = crate::gen::SyntheticWm811k::new(24).scale(0.002).seed(12).build();
        // Compare the None class: background noise should clearly rise.
        let mean_ratio = |ds: &Dataset| {
            let nones = ds.of_class(DefectClass::None);
            nones.iter().map(|s| s.map.fail_ratio()).sum::<f32>() / nones.len() as f32
        };
        assert!(mean_ratio(&shifted) > mean_ratio(&nominal) * 2.0);
    }

    #[test]
    fn shifted_dataset_is_deterministic() {
        let a = shifted_dataset(16, 2, &ShiftConfig::severe(), 7);
        let b = shifted_dataset(16, 2, &ShiftConfig::severe(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn random_other_class_never_returns_same_or_trivial() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = random_other_class(DefectClass::Center, &mut rng);
            assert_ne!(c, DefectClass::Center);
            assert_ne!(c, DefectClass::None);
            assert_ne!(c, DefectClass::NearFull);
        }
    }
}
