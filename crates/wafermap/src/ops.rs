//! Image operations on wafer maps: rotation, salt-and-pepper noise and
//! quantization helpers used by the paper's data-augmentation
//! Algorithm 1.

use rand::Rng;

use crate::{Die, WaferMap};

/// Rotate a wafer map by `degrees` (counter-clockwise) about the wafer
/// centre using nearest-neighbour sampling, then re-impose the wafer
/// mask of the input: every die that is off-wafer in `map` stays
/// off-wafer in the result, and no on-wafer die is ever masked out.
///
/// Algorithm 1 rotates each synthetic image by `i * 360 / n_r`; because
/// the wafer is circular, rotation keeps the map physically plausible.
/// The mask is taken from the *input* (not an idealized circle), so
/// maps with irregular masks — e.g. real wafers loaded via `io` with
/// notches or flats — keep their exact footprint. Destination dies
/// whose source falls off-grid or off-wafer become [`Die::Pass`]
/// (background), mirroring how WM-811K renders rotated wafers.
///
/// # Example
///
/// ```
/// use wafermap::{ops::rotate, Die, WaferMap};
///
/// let mut map = WaferMap::blank(17, 17);
/// map.set(8, 2, Die::Fail); // north of centre
/// let quarter = rotate(&map, 90.0);
/// assert_eq!(quarter.fail_count(), 1);
/// assert_eq!(quarter.get(14, 8), Die::Fail); // now east of centre
/// ```
#[must_use]
pub fn rotate(map: &WaferMap, degrees: f32) -> WaferMap {
    let radians = degrees.to_radians();
    let (sin, cos) = radians.sin_cos();
    let (cx, cy) = map.center();
    let mut out = map.clone();
    for y in 0..map.height() {
        for x in 0..map.width() {
            if !map.get(x, y).is_on_wafer() {
                continue;
            }
            // Inverse rotation: sample the source location that maps
            // onto (x, y) under a CCW rotation by `degrees`.
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            let sx = (cos * dx + sin * dy + cx).round();
            let sy = (-sin * dx + cos * dy + cy).round();
            let die = if sx >= 0.0
                && sy >= 0.0
                && (sx as usize) < map.width()
                && (sy as usize) < map.height()
            {
                match map.get(sx as usize, sy as usize) {
                    Die::OffWafer => Die::Pass,
                    d => d,
                }
            } else {
                Die::Pass
            };
            out.set(x, y, die);
        }
    }
    out
}

/// Add salt-and-pepper noise: flip approximately `rate * on_wafer_count`
/// randomly chosen on-wafer dies from pass to fail or vice versa
/// (Algorithm 1, line 9).
///
/// `rate` is clamped to `[0, 1]`. Off-wafer locations are never
/// touched, so the wafer mask is preserved. The flipped locations are
/// **distinct** (sampled without replacement via a partial
/// Fisher–Yates shuffle), so exactly `round(rate * on_wafer_count)`
/// dies change state — sampling with replacement would silently
/// undershoot the requested noise rate whenever a location repeats.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use wafermap::{ops::salt_and_pepper, WaferMap};
///
/// let map = WaferMap::blank(24, 24);
/// let mut rng = StdRng::seed_from_u64(1);
/// let noisy = salt_and_pepper(&map, 0.02, &mut rng);
/// assert!(noisy.fail_count() > 0);
/// assert_eq!(noisy.on_wafer_count(), map.on_wafer_count());
/// ```
#[must_use]
pub fn salt_and_pepper<R: Rng + ?Sized>(map: &WaferMap, rate: f32, rng: &mut R) -> WaferMap {
    let rate = rate.clamp(0.0, 1.0);
    let mut out = map.clone();
    let mut coords: Vec<(usize, usize)> = map.iter_on_wafer().map(|(x, y, _)| (x, y)).collect();
    let n = coords.len();
    // `rate <= 1.0`, so `flips <= n` and the partial shuffle below
    // never indexes past the end.
    let flips = ((n as f32) * rate).round() as usize;
    // Partial Fisher–Yates: one `gen_range` per flip (the same RNG
    // stream discipline as the old with-replacement draw), but each
    // chosen coordinate is distinct.
    for i in 0..flips {
        let j = rng.gen_range(i..n);
        coords.swap(i, j);
        let (x, y) = coords[i];
        let die = out.get(x, y);
        out.set(x, y, die.flipped());
    }
    out
}

/// Quantize a continuous image (e.g. an auto-encoder reconstruction)
/// back to a valid three-level wafer map, using `reference` for the
/// circular mask (Algorithm 1, line 7).
///
/// This is a convenience re-export of [`WaferMap::from_image_masked`]
/// under the name the paper uses.
///
/// # Errors
///
/// Returns an error if `image.len()` does not match the reference grid.
pub fn quantize(image: &[f32], reference: &WaferMap) -> Result<WaferMap, crate::map::ShapeError> {
    WaferMap::from_image_masked(image, reference)
}

/// Mirror a wafer map horizontally (about the vertical axis through
/// the wafer centre), re-imposing the wafer mask of the input exactly
/// as [`rotate`] does: off-wafer dies stay off-wafer, and an on-wafer
/// die whose mirrored source is off-wafer becomes [`Die::Pass`].
///
/// A circular mask maps onto itself under a mirror, but real wafers
/// loaded via `io` can carry notches or flats that do not — copying
/// the mirrored die verbatim would relocate `OffWafer` markers and
/// corrupt the physical footprint.
///
/// # Example
///
/// ```
/// use wafermap::{ops::flip_horizontal, Die, WaferMap};
///
/// let mut map = WaferMap::blank(9, 9);
/// map.set(1, 4, Die::Fail);
/// let flipped = flip_horizontal(&map);
/// assert_eq!(flipped.get(7, 4), Die::Fail);
/// ```
#[must_use]
pub fn flip_horizontal(map: &WaferMap) -> WaferMap {
    let w = map.width();
    let mut out = map.clone();
    for (x, y, _) in map.iter_on_wafer() {
        let die = match map.get(w - 1 - x, y) {
            Die::OffWafer => Die::Pass,
            d => d,
        };
        out.set(x, y, die);
    }
    out
}

/// Mirror a wafer map vertically (about the horizontal axis through
/// the wafer centre), re-imposing the input's wafer mask — see
/// [`flip_horizontal`] for why the mask must come from the input
/// rather than the mirrored source.
#[must_use]
pub fn flip_vertical(map: &WaferMap) -> WaferMap {
    let h = map.height();
    let mut out = map.clone();
    for (x, y, _) in map.iter_on_wafer() {
        let die = match map.get(x, h - 1 - y) {
            Die::OffWafer => Die::Pass,
            d => d,
        };
        out.set(x, y, die);
    }
    out
}

/// Fraction of on-wafer dies on which two maps disagree. Useful for
/// measuring how far a synthetic sample drifted from its source.
///
/// # Panics
///
/// Panics if the two maps have different grid dimensions.
#[must_use]
pub fn die_disagreement(a: &WaferMap, b: &WaferMap) -> f32 {
    assert_eq!(a.width(), b.width(), "maps must share a grid");
    assert_eq!(a.height(), b.height(), "maps must share a grid");
    let mut on = 0usize;
    let mut differ = 0usize;
    for (da, db) in a.dies().iter().zip(b.dies()) {
        if da.is_on_wafer() && db.is_on_wafer() {
            on += 1;
            if da != db {
                differ += 1;
            }
        }
    }
    if on == 0 {
        0.0
    } else {
        differ as f32 / on as f32
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn rotate_zero_is_identity_on_wafer() {
        let mut map = WaferMap::blank(15, 15);
        map.set(7, 3, Die::Fail);
        map.set(4, 9, Die::Fail);
        let same = rotate(&map, 0.0);
        assert_eq!(die_disagreement(&map, &same), 0.0);
    }

    #[test]
    fn rotate_full_circle_is_identity() {
        let mut map = WaferMap::blank(21, 21);
        map.set(10, 4, Die::Fail);
        let back = rotate(&map, 360.0);
        assert_eq!(die_disagreement(&map, &back), 0.0);
    }

    #[test]
    fn rotate_preserves_mask_and_approx_fail_count() {
        let mut map = WaferMap::blank(25, 25);
        for x in 10..15 {
            for y in 10..15 {
                map.set(x, y, Die::Fail);
            }
        }
        let rot = rotate(&map, 45.0);
        assert_eq!(rot.on_wafer_count(), map.on_wafer_count());
        let delta = (rot.fail_count() as i64 - map.fail_count() as i64).abs();
        assert!(delta <= 6, "rotation changed fail count too much: {delta}");
    }

    #[test]
    fn four_quarter_turns_compose_to_identity() {
        let mut map = WaferMap::blank(19, 19);
        map.set(9, 2, Die::Fail);
        map.set(12, 6, Die::Fail);
        let mut cur = map.clone();
        for _ in 0..4 {
            cur = rotate(&cur, 90.0);
        }
        assert_eq!(die_disagreement(&map, &cur), 0.0);
    }

    #[test]
    fn rotate_preserves_irregular_non_circular_mask() {
        // A square wafer with one corner notched off-wafer — nothing
        // like the idealized circle `WaferMap::blank` produces.
        let w = 9;
        let mut dies = vec![Die::Pass; w * w];
        for y in 0..3 {
            for x in 0..3 {
                dies[y * w + x] = Die::OffWafer;
            }
        }
        let mut map = WaferMap::from_dies(w, w, dies).expect("valid grid");
        map.set(4, 1, Die::Fail);
        let rot = rotate(&map, 90.0);
        // The notch must survive: no off-wafer die becomes Pass, and
        // the on-wafer footprint is exactly the input's.
        assert_eq!(rot.on_wafer_count(), map.on_wafer_count());
        for y in 0..w {
            for x in 0..w {
                assert_eq!(
                    rot.get(x, y).is_on_wafer(),
                    map.get(x, y).is_on_wafer(),
                    "mask changed at ({x}, {y})"
                );
            }
        }
        // The defect still rotated: the quarter turn sends (4, 1)
        // north of centre to (7, 4) east of it.
        assert_eq!(rot.fail_count(), 1);
        assert_eq!(rot.get(7, 4), Die::Fail);
    }

    #[test]
    fn rotate_samples_off_wafer_sources_as_pass() {
        // A die whose rotated source lands in the notch gets Pass,
        // not the source's OffWafer marker.
        let w = 9;
        let mut dies = vec![Die::Pass; w * w];
        dies[4] = Die::OffWafer; // (4, 0): north of centre
        let map = WaferMap::from_dies(w, w, dies).expect("valid grid");
        let rot = rotate(&map, 90.0);
        // (8, 4) samples from the off-wafer (4, 0) under this turn.
        assert_eq!(rot.get(8, 4), Die::Pass);
        assert_eq!(rot.get(4, 0), Die::OffWafer, "mask untouched");
    }

    #[test]
    fn salt_and_pepper_zero_rate_is_identity() {
        let map = WaferMap::blank(16, 16);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(salt_and_pepper(&map, 0.0, &mut rng), map);
    }

    #[test]
    fn salt_and_pepper_rate_scales_flips() {
        let map = WaferMap::blank(32, 32);
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = salt_and_pepper(&map, 0.05, &mut rng);
        let expected = (map.on_wafer_count() as f32 * 0.05).round() as usize;
        // Flip locations are sampled without replacement, and every
        // die starts as Pass, so the fail count is exactly the
        // requested number of flips — no collision undershoot.
        assert_eq!(noisy.fail_count(), expected);
    }

    #[test]
    fn salt_and_pepper_flips_exactly_rate_fraction_at_any_rate() {
        let map = WaferMap::blank(20, 20);
        for rate in [0.01f32, 0.1, 0.5, 1.0] {
            let mut rng = StdRng::seed_from_u64(7);
            let noisy = salt_and_pepper(&map, rate, &mut rng);
            let expected = (map.on_wafer_count() as f32 * rate).round() as usize;
            assert_eq!(noisy.fail_count(), expected, "rate {rate}");
        }
    }

    #[test]
    fn salt_and_pepper_clamps_rate() {
        let map = WaferMap::blank(8, 8);
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = salt_and_pepper(&map, 42.0, &mut rng);
        assert_eq!(noisy.on_wafer_count(), map.on_wafer_count());
    }

    #[test]
    fn disagreement_is_zero_for_identical_maps() {
        let map = WaferMap::blank(10, 10);
        assert_eq!(die_disagreement(&map, &map), 0.0);
    }

    #[test]
    fn flips_are_involutions() {
        let mut map = WaferMap::blank(11, 11);
        map.set(2, 3, Die::Fail);
        map.set(7, 8, Die::Fail);
        assert_eq!(flip_horizontal(&flip_horizontal(&map)), map);
        assert_eq!(flip_vertical(&flip_vertical(&map)), map);
    }

    #[test]
    fn flips_preserve_mask_and_fail_count() {
        let mut map = WaferMap::blank(14, 14);
        map.fail_if_on_wafer(4, 5);
        map.fail_if_on_wafer(9, 2);
        for f in [flip_horizontal(&map), flip_vertical(&map)] {
            assert_eq!(f.on_wafer_count(), map.on_wafer_count());
            assert_eq!(f.fail_count(), map.fail_count());
        }
    }

    #[test]
    fn flips_preserve_irregular_non_circular_mask() {
        // Mirror of `rotate_preserves_irregular_non_circular_mask`: a
        // square wafer with a 3x3 corner notch. A naive cell-by-cell
        // mirror would relocate the notch's OffWafer dies to the
        // opposite corner; the fixed flips keep the footprint exact.
        let w = 9;
        let mut dies = vec![Die::Pass; w * w];
        for y in 0..3 {
            for x in 0..3 {
                dies[y * w + x] = Die::OffWafer;
            }
        }
        let mut map = WaferMap::from_dies(w, w, dies).expect("valid grid");
        map.set(6, 1, Die::Fail); // mirrors across the notch row
        map.set(1, 6, Die::Fail); // mirrors into intact territory
        for (name, flipped) in
            [("horizontal", flip_horizontal(&map)), ("vertical", flip_vertical(&map))]
        {
            assert_eq!(
                flipped.on_wafer_count(),
                map.on_wafer_count(),
                "{name} flip changed the on-wafer count"
            );
            for y in 0..w {
                for x in 0..w {
                    assert_eq!(
                        flipped.get(x, y).is_on_wafer(),
                        map.get(x, y).is_on_wafer(),
                        "{name} flip changed the mask at ({x}, {y})"
                    );
                }
            }
        }
        // Defects still mirror where the destination is on-wafer:
        // (6, 1) -> (2, 1) lands inside the notch's row but outside
        // the notch columns? (2, 1) is inside the notch — masked out.
        // (1, 6) -> (7, 6) is on-wafer and must carry the defect.
        let hflip = flip_horizontal(&map);
        assert_eq!(hflip.get(2, 1), Die::OffWafer, "notch die stays off-wafer");
        assert_eq!(hflip.get(7, 6), Die::Fail);
        // A die whose mirrored source is off-wafer becomes Pass, not
        // OffWafer: (6, 1)'s horizontal source is (2, 1) in the notch.
        assert_eq!(hflip.get(6, 1), Die::Pass);
    }

    #[test]
    fn double_flip_equals_half_turn() {
        let mut map = WaferMap::blank(13, 13);
        map.set(3, 6, Die::Fail);
        let hv = flip_vertical(&flip_horizontal(&map));
        let rot = rotate(&map, 180.0);
        assert_eq!(die_disagreement(&hv, &rot), 0.0);
    }
}
