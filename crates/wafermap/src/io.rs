//! Export wafer maps for visual inspection: binary PGM images (the
//! format used to eyeball Fig. 1 and Fig. 4 reproductions) and a
//! compact ASCII rendering for terminals and test failure output.

use std::io::{self, Write};
use std::path::Path;

use crate::{Die, WaferMap};

/// Write a wafer map as a binary PGM (P5) image using the WM-811K
/// pixel levels (0 / 127 / 255), magnified by `scale` so small die
/// grids remain visible in image viewers.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
///
/// # Panics
///
/// Panics if `scale == 0`.
///
/// # Example
///
/// ```no_run
/// use wafermap::{io::write_pgm, WaferMap};
///
/// # fn main() -> std::io::Result<()> {
/// let map = WaferMap::blank(32, 32);
/// let mut buf = Vec::new();
/// write_pgm(&map, 4, &mut buf)?;
/// assert!(buf.starts_with(b"P5"));
/// # Ok(())
/// # }
/// ```
pub fn write_pgm<W: Write>(map: &WaferMap, scale: usize, mut writer: W) -> io::Result<()> {
    assert!(scale > 0, "scale must be non-zero");
    let w = map.width() * scale;
    let h = map.height() * scale;
    write!(writer, "P5\n{w} {h}\n255\n")?;
    let mut row = Vec::with_capacity(w);
    for y in 0..map.height() {
        row.clear();
        for x in 0..map.width() {
            let level = map.get(x, y).pixel_level();
            for _ in 0..scale {
                row.push(level);
            }
        }
        for _ in 0..scale {
            writer.write_all(&row)?;
        }
    }
    Ok(())
}

/// Write a wafer map to a PGM file at `path` (see [`write_pgm`]).
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_pgm<P: AsRef<Path>>(map: &WaferMap, scale: usize, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_pgm(map, scale, io::BufWriter::new(file))
}

/// Render a wafer map as ASCII art: `' '` off-wafer, `'.'` pass,
/// `'#'` fail. One line per die row.
///
/// # Example
///
/// ```
/// use wafermap::{io::to_ascii, Die, WaferMap};
///
/// let mut map = WaferMap::blank(8, 8);
/// map.set(4, 4, Die::Fail);
/// let art = to_ascii(&map);
/// assert!(art.contains('#'));
/// assert_eq!(art.lines().count(), 8);
/// ```
#[must_use]
pub fn to_ascii(map: &WaferMap) -> String {
    let mut out = String::with_capacity((map.width() + 1) * map.height());
    for y in 0..map.height() {
        for x in 0..map.width() {
            out.push(match map.get(x, y) {
                Die::OffWafer => ' ',
                Die::Pass => '.',
                Die::Fail => '#',
            });
        }
        out.push('\n');
    }
    out
}

/// Write a dataset as CSV for interchange with Python tooling (or to
/// import the *real* WM-811K after converting it with a few lines of
/// pandas). One row per wafer:
///
/// ```text
/// label,width,height,dies
/// Edge-Ring,3,3,012112210
/// ```
///
/// where `dies` is the row-major grid with `0` = off-wafer, `1` =
/// pass, `2` = fail (WM-811K's own integer encoding).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(dataset: &crate::Dataset, mut writer: W) -> io::Result<()> {
    writeln!(writer, "label,width,height,dies")?;
    for sample in dataset {
        let mut dies = String::with_capacity(sample.map.len());
        for die in sample.map.dies() {
            dies.push(match die {
                Die::OffWafer => '0',
                Die::Pass => '1',
                Die::Fail => '2',
            });
        }
        writeln!(
            writer,
            "{},{},{},{dies}",
            sample.label.name(),
            sample.map.width(),
            sample.map.height()
        )?;
    }
    Ok(())
}

/// Read a dataset written by [`write_csv`] (or converted from the real
/// WM-811K). All wafers must share one square grid size; the paper's
/// pipeline rescales maps to a common size before training.
///
/// # Errors
///
/// Returns an [`io::Error`] (kind `InvalidData`) on malformed rows,
/// unknown labels, inconsistent grids, or non-square maps.
pub fn read_csv<R: io::BufRead>(reader: R) -> io::Result<crate::Dataset> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut dataset: Option<crate::Dataset> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue; // header / blank
        }
        let mut parts = line.splitn(4, ',');
        let label: crate::DefectClass = parts
            .next()
            .ok_or_else(|| bad(format!("line {lineno}: missing label")))?
            .parse()
            .map_err(|e| bad(format!("line {lineno}: {e}")))?;
        let width: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("line {lineno}: bad width")))?;
        let height: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("line {lineno}: bad height")))?;
        let dies_str = parts.next().ok_or_else(|| bad(format!("line {lineno}: missing dies")))?;
        if width != height {
            return Err(bad(format!("line {lineno}: non-square {width}x{height} map")));
        }
        let mut dies = Vec::with_capacity(width * height);
        for ch in dies_str.trim().chars() {
            dies.push(match ch {
                '0' => Die::OffWafer,
                '1' => Die::Pass,
                '2' => Die::Fail,
                other => return Err(bad(format!("line {lineno}: bad die char {other:?}"))),
            });
        }
        let map = WaferMap::from_dies(width, height, dies)
            .map_err(|e| bad(format!("line {lineno}: {e}")))?;
        let ds = dataset.get_or_insert_with(|| crate::Dataset::new(width));
        if ds.grid() != width {
            return Err(bad(format!(
                "line {lineno}: grid {width} differs from first wafer's {}",
                ds.grid()
            )));
        }
        ds.push(crate::Sample::original(map, label));
    }
    dataset.ok_or_else(|| bad("csv contained no wafers".to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_header_and_size_are_correct() {
        let map = WaferMap::blank(10, 10);
        let mut buf = Vec::new();
        write_pgm(&map, 3, &mut buf).expect("write to vec");
        let header_end = buf.windows(4).position(|w| w == b"255\n").expect("header") + 4;
        assert_eq!(&buf[..3], b"P5\n");
        assert_eq!(buf.len() - header_end, 30 * 30);
    }

    #[test]
    fn pgm_uses_canonical_levels_only() {
        let mut map = WaferMap::blank(8, 8);
        map.set(4, 4, Die::Fail);
        let mut buf = Vec::new();
        write_pgm(&map, 1, &mut buf).expect("write to vec");
        let header_end = buf.windows(4).position(|w| w == b"255\n").expect("header") + 4;
        for &b in &buf[header_end..] {
            assert!(b == 0 || b == 127 || b == 255, "bad pixel {b}");
        }
    }

    #[test]
    fn ascii_marks_fail_locations() {
        let mut map = WaferMap::blank(6, 6);
        map.set(3, 3, Die::Fail);
        let art = to_ascii(&map);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines[3].as_bytes()[3], b'#');
    }

    #[test]
    fn ascii_corner_is_off_wafer() {
        let map = WaferMap::blank(12, 12);
        let art = to_ascii(&map);
        assert_eq!(art.as_bytes()[0], b' ');
    }

    #[test]
    fn csv_roundtrip_preserves_dataset() {
        let (train, _) = crate::gen::SyntheticWm811k::new(8).scale(0.0005).seed(3).build();
        let mut buf = Vec::new();
        write_csv(&train, &mut buf).expect("write csv");
        let back = read_csv(io::BufReader::new(buf.as_slice())).expect("read csv");
        assert_eq!(back.len(), train.len());
        for (a, b) in back.iter().zip(train.iter()) {
            assert_eq!(a.map, b.map);
            assert_eq!(a.label, b.label);
        }
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        let no_wafers = "label,width,height,dies\n";
        assert!(read_csv(io::BufReader::new(no_wafers.as_bytes())).is_err());
        let bad_label = "label,width,height,dies\nNotAClass,2,2,1111\n";
        assert!(read_csv(io::BufReader::new(bad_label.as_bytes())).is_err());
        let bad_die = "label,width,height,dies\nDonut,2,2,1119\n";
        assert!(read_csv(io::BufReader::new(bad_die.as_bytes())).is_err());
        let wrong_len = "label,width,height,dies\nDonut,2,2,111\n";
        assert!(read_csv(io::BufReader::new(wrong_len.as_bytes())).is_err());
        let non_square = "label,width,height,dies\nDonut,2,3,111111\n";
        assert!(read_csv(io::BufReader::new(non_square.as_bytes())).is_err());
    }

    #[test]
    fn csv_parses_wm811k_integer_encoding() {
        let csv = "label,width,height,dies\nEdge-Ring,3,3,012112210\n";
        let ds = read_csv(io::BufReader::new(csv.as_bytes())).expect("parse");
        assert_eq!(ds.len(), 1);
        let map = &ds.samples()[0].map;
        assert_eq!(map.get(0, 0), Die::OffWafer);
        assert_eq!(map.get(1, 0), Die::Pass);
        assert_eq!(map.get(2, 0), Die::Fail);
        assert_eq!(map.fail_count(), 3);
    }
}
