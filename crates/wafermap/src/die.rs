use serde::{Deserialize, Serialize};

/// State of a single die location on a wafer map.
///
/// WM-811K encodes wafer maps as grey-scale images with three pixel
/// levels; this enum is the typed equivalent:
///
/// | Variant | WM-811K pixel level | Meaning |
/// |---|---|---|
/// | [`Die::OffWafer`] | 0 | location outside the circular wafer |
/// | [`Die::Pass`] | 127 | die that passed electrical test |
/// | [`Die::Fail`] | 255 | die that failed electrical test |
///
/// # Example
///
/// ```
/// use wafermap::Die;
///
/// assert_eq!(Die::Fail.pixel_level(), 255);
/// assert_eq!(Die::from_pixel_level(127), Die::Pass);
/// assert!(Die::Fail.is_on_wafer());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Die {
    /// Location not part of the wafer (pixel level 0).
    #[default]
    OffWafer,
    /// Die that passed test (pixel level 127).
    Pass,
    /// Die that failed test (pixel level 255).
    Fail,
}

impl Die {
    /// The WM-811K grey-scale pixel level for this die state.
    #[must_use]
    pub const fn pixel_level(self) -> u8 {
        match self {
            Die::OffWafer => 0,
            Die::Pass => 127,
            Die::Fail => 255,
        }
    }

    /// Normalized intensity in `[0, 1]` used when feeding a wafer map
    /// to a neural network (`0.0`, `0.5`, `1.0`).
    #[must_use]
    pub const fn intensity(self) -> f32 {
        match self {
            Die::OffWafer => 0.0,
            Die::Pass => 0.5,
            Die::Fail => 1.0,
        }
    }

    /// Inverse of [`Die::pixel_level`], snapping an arbitrary pixel to
    /// the nearest of the three canonical levels.
    #[must_use]
    pub fn from_pixel_level(level: u8) -> Self {
        // Midpoints between 0,127 and 127,255.
        if level < 64 {
            Die::OffWafer
        } else if level < 191 {
            Die::Pass
        } else {
            Die::Fail
        }
    }

    /// Inverse of [`Die::intensity`]: quantize a continuous value (as
    /// produced by e.g. an auto-encoder decoder) to the nearest die
    /// state. Values are clamped to `[0, 1]` first.
    #[must_use]
    pub fn from_intensity(value: f32) -> Self {
        let v = if value.is_nan() { 0.0 } else { value.clamp(0.0, 1.0) };
        if v < 0.25 {
            Die::OffWafer
        } else if v < 0.75 {
            Die::Pass
        } else {
            Die::Fail
        }
    }

    /// Whether the location is part of the wafer at all.
    #[must_use]
    pub const fn is_on_wafer(self) -> bool {
        !matches!(self, Die::OffWafer)
    }

    /// Whether the die failed test.
    #[must_use]
    pub const fn is_fail(self) -> bool {
        matches!(self, Die::Fail)
    }

    /// Flip a pass die to fail and vice versa; off-wafer is unchanged.
    ///
    /// This is the primitive used by salt-and-pepper noise in the
    /// paper's Algorithm 1 ("switch a pass to fail and vice versa").
    #[must_use]
    pub const fn flipped(self) -> Self {
        match self {
            Die::OffWafer => Die::OffWafer,
            Die::Pass => Die::Fail,
            Die::Fail => Die::Pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_levels_roundtrip() {
        for die in [Die::OffWafer, Die::Pass, Die::Fail] {
            assert_eq!(Die::from_pixel_level(die.pixel_level()), die);
        }
    }

    #[test]
    fn intensity_roundtrip() {
        for die in [Die::OffWafer, Die::Pass, Die::Fail] {
            assert_eq!(Die::from_intensity(die.intensity()), die);
        }
    }

    #[test]
    fn from_pixel_level_snaps_to_nearest() {
        assert_eq!(Die::from_pixel_level(10), Die::OffWafer);
        assert_eq!(Die::from_pixel_level(100), Die::Pass);
        assert_eq!(Die::from_pixel_level(150), Die::Pass);
        assert_eq!(Die::from_pixel_level(230), Die::Fail);
    }

    #[test]
    fn from_intensity_clamps_out_of_range() {
        assert_eq!(Die::from_intensity(-3.0), Die::OffWafer);
        assert_eq!(Die::from_intensity(7.5), Die::Fail);
        assert_eq!(Die::from_intensity(f32::NAN), Die::OffWafer);
    }

    #[test]
    fn flip_is_involution_on_wafer() {
        assert_eq!(Die::Pass.flipped(), Die::Fail);
        assert_eq!(Die::Fail.flipped(), Die::Pass);
        assert_eq!(Die::OffWafer.flipped(), Die::OffWafer);
        for die in [Die::Pass, Die::Fail] {
            assert_eq!(die.flipped().flipped(), die);
        }
    }

    #[test]
    fn default_is_off_wafer() {
        assert_eq!(Die::default(), Die::OffWafer);
    }
}
