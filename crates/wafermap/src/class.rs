use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The nine defect pattern classes of the WM-811K dataset.
///
/// Class indices follow the paper's Table II row order, so
/// [`DefectClass::index`] can be used directly as a label in a
/// `n_c = 9` classifier and as a row/column index in confusion
/// matrices.
///
/// # Example
///
/// ```
/// use wafermap::DefectClass;
///
/// assert_eq!(DefectClass::ALL.len(), 9);
/// assert_eq!(DefectClass::Center.index(), 0);
/// assert_eq!(DefectClass::from_index(8), Some(DefectClass::None));
/// assert_eq!("Edge-Ring".parse::<DefectClass>().ok(), Some(DefectClass::EdgeRing));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DefectClass {
    /// Cluster of failing dies at the wafer centre.
    Center,
    /// Ring of failing dies around the centre (hole in the middle).
    Donut,
    /// Localized cluster of failures at the wafer edge.
    EdgeLoc,
    /// Ring of failures along the entire wafer edge.
    EdgeRing,
    /// Localized cluster of failures away from centre and edge.
    Location,
    /// Nearly the whole wafer fails.
    NearFull,
    /// Spatially uncorrelated (uniform random) failures.
    Random,
    /// Thin curvilinear streak of failures (mechanical scratch).
    Scratch,
    /// No systematic pattern; only background yield loss.
    None,
}

impl DefectClass {
    /// All nine classes in Table II row order.
    pub const ALL: [DefectClass; 9] = [
        DefectClass::Center,
        DefectClass::Donut,
        DefectClass::EdgeLoc,
        DefectClass::EdgeRing,
        DefectClass::Location,
        DefectClass::NearFull,
        DefectClass::Random,
        DefectClass::Scratch,
        DefectClass::None,
    ];

    /// Number of classes (`n_c` in the paper).
    pub const COUNT: usize = 9;

    /// Zero-based label index (Table II row order).
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("class present in ALL")
    }

    /// Inverse of [`DefectClass::index`]; `None` if out of range.
    #[must_use]
    pub fn from_index(index: usize) -> Option<Self> {
        Self::ALL.get(index).copied()
    }

    /// Human-readable name as printed in the paper's tables.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            DefectClass::Center => "Center",
            DefectClass::Donut => "Donut",
            DefectClass::EdgeLoc => "Edge-Loc",
            DefectClass::EdgeRing => "Edge-Ring",
            DefectClass::Location => "Location",
            DefectClass::NearFull => "Near-Full",
            DefectClass::Random => "Random",
            DefectClass::Scratch => "Scratch",
            DefectClass::None => "None",
        }
    }

    /// Whether this class is an actual defect pattern (everything
    /// except [`DefectClass::None`]). The paper reports defect-only
    /// detection rates separately because those matter most for yield
    /// analysis.
    #[must_use]
    pub const fn is_defect(self) -> bool {
        !matches!(self, DefectClass::None)
    }

    /// Training-set sample counts from the paper's Table II
    /// ("Training" column). Used to reproduce the dataset's class
    /// imbalance at any overall scale.
    #[must_use]
    pub const fn paper_training_count(self) -> usize {
        match self {
            DefectClass::Center => 2767,
            DefectClass::Donut => 329,
            DefectClass::EdgeLoc => 1958,
            DefectClass::EdgeRing => 6802,
            DefectClass::Location => 1311,
            DefectClass::NearFull => 49,
            DefectClass::Random => 498,
            DefectClass::Scratch => 413,
            DefectClass::None => 29357,
        }
    }

    /// Test-set sample counts from the paper's Table II ("Testing").
    #[must_use]
    pub const fn paper_testing_count(self) -> usize {
        match self {
            DefectClass::Center => 695,
            DefectClass::Donut => 80,
            DefectClass::EdgeLoc => 459,
            DefectClass::EdgeRing => 1752,
            DefectClass::Location => 309,
            DefectClass::NearFull => 5,
            DefectClass::Random => 111,
            DefectClass::Scratch => 87,
            DefectClass::None => 7373,
        }
    }
}

impl fmt::Display for DefectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`DefectClass`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDefectClassError {
    input: String,
}

impl fmt::Display for ParseDefectClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown defect class name: {:?}", self.input)
    }
}

impl std::error::Error for ParseDefectClassError {}

impl FromStr for DefectClass {
    type Err = ParseDefectClassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canon = s.trim().to_ascii_lowercase().replace(['-', '_', ' '], "");
        let class = match canon.as_str() {
            "center" => DefectClass::Center,
            "donut" => DefectClass::Donut,
            "edgeloc" | "edgelocation" => DefectClass::EdgeLoc,
            "edgering" => DefectClass::EdgeRing,
            "location" | "loc" => DefectClass::Location,
            "nearfull" => DefectClass::NearFull,
            "random" => DefectClass::Random,
            "scratch" => DefectClass::Scratch,
            "none" => DefectClass::None,
            _ => return Err(ParseDefectClassError { input: s.to_owned() }),
        };
        Ok(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_roundtrip() {
        for (i, class) in DefectClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(DefectClass::from_index(i), Some(*class));
        }
        assert_eq!(DefectClass::from_index(9), None);
    }

    #[test]
    fn parse_accepts_paper_spellings() {
        for class in DefectClass::ALL {
            assert_eq!(class.name().parse::<DefectClass>().ok(), Some(class));
        }
        assert_eq!("edge_loc".parse::<DefectClass>().ok(), Some(DefectClass::EdgeLoc));
        assert_eq!("NEAR-FULL".parse::<DefectClass>().ok(), Some(DefectClass::NearFull));
        assert!("gibberish".parse::<DefectClass>().is_err());
    }

    #[test]
    fn paper_counts_match_table_ii_totals() {
        let train: usize = DefectClass::ALL.iter().map(|c| c.paper_training_count()).sum();
        let test: usize = DefectClass::ALL.iter().map(|c| c.paper_testing_count()).sum();
        assert_eq!(train, 43484);
        assert_eq!(test, 10871);
        assert_eq!(train + test, 54355);
    }

    #[test]
    fn only_none_is_not_a_defect() {
        let defects: Vec<_> = DefectClass::ALL.iter().filter(|c| c.is_defect()).collect();
        assert_eq!(defects.len(), 8);
        assert!(!DefectClass::None.is_defect());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DefectClass::EdgeRing.to_string(), "Edge-Ring");
    }
}
