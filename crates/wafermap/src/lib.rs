//! Wafer map representation and synthetic WM-811K-style defect generation.
//!
//! This crate is the data substrate for the deep-selective-learning
//! reproduction. It provides:
//!
//! - [`WaferMap`]: a die grid over a circular wafer, where each die is
//!   [`Die::Pass`], [`Die::Fail`], or [`Die::OffWafer`] — exactly the
//!   three-level encoding of the WM-811K dataset (pixel levels 127, 255
//!   and 0 respectively).
//! - [`DefectClass`]: the nine WM-811K defect pattern classes.
//! - [`gen`]: parametric spatial generators for every class and a
//!   [`gen::SyntheticWm811k`] dataset builder that mirrors the class
//!   mixture of the paper's Table II.
//! - [`ops`]: rotation, salt-and-pepper noise, and three-level
//!   quantization — the image operations used by the paper's
//!   Algorithm 1 (data augmentation).
//! - [`io`]: PGM export and ASCII rendering for visual inspection.
//!
//! # Example
//!
//! ```
//! use wafermap::{DefectClass, gen::{GenConfig, generate}};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let cfg = GenConfig::new(32);
//! let mut rng = StdRng::seed_from_u64(7);
//! let map = generate(DefectClass::Donut, &cfg, &mut rng);
//! assert_eq!(map.width(), 32);
//! assert!(map.fail_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod die;
mod map;

pub mod gen;
pub mod io;
pub mod ops;
pub mod shift;
pub mod stats;

pub use class::{DefectClass, ParseDefectClassError};
pub use die::Die;
pub use gen::{Dataset, Sample};
pub use map::{ShapeError, WaferMap};
