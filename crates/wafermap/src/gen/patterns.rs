//! Per-class spatial stochastic models.
//!
//! Each pattern is described by a [`PatternParams`] value sampled once
//! per wafer; painting is then a per-die Bernoulli draw whose
//! probability is a function of position. Probabilities are scaled by
//! [`GenConfig::pattern_strength`] so the concept-shift experiment can
//! weaken or intensify systematic patterns without changing geometry.

use std::f32::consts::PI;

use rand::Rng;
use serde::{Deserialize, Serialize};

use super::GenConfig;
use crate::{DefectClass, WaferMap};

/// Sampled parameters for one systematic defect pattern instance.
///
/// The variants carry everything needed to re-paint the same pattern
/// (all geometry in units relative to the wafer radius), which makes
/// generation reproducible and lets experiments perturb parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PatternParams {
    /// Gaussian blob of failures at the wafer centre.
    Center {
        /// Blob standard deviation as a fraction of the radius.
        sigma: f32,
        /// Peak fail probability at the blob centre.
        density: f32,
    },
    /// Annulus of failures around the centre.
    Donut {
        /// Inner ring radius as a fraction of the wafer radius.
        inner: f32,
        /// Outer ring radius as a fraction of the wafer radius.
        outer: f32,
        /// Fail probability inside the annulus.
        density: f32,
    },
    /// Arc-shaped cluster hugging the wafer edge.
    EdgeLoc {
        /// Angular centre of the arc in radians.
        theta: f32,
        /// Angular half-width of the arc in radians.
        half_width: f32,
        /// Radial inner bound as a fraction of the radius.
        inner: f32,
        /// Fail probability inside the arc.
        density: f32,
    },
    /// Complete ring along the wafer edge.
    EdgeRing {
        /// Radial inner bound as a fraction of the radius.
        inner: f32,
        /// Fail probability inside the ring.
        density: f32,
        /// Angular gap (radians) left un-failed, if any.
        gap: f32,
        /// Angular position of the gap centre.
        gap_theta: f32,
    },
    /// Off-centre localized blob.
    Location {
        /// Blob centre offset from wafer centre, fraction of radius.
        offset: f32,
        /// Direction of the offset in radians.
        theta: f32,
        /// Blob standard deviation as a fraction of the radius.
        sigma: f32,
        /// Peak fail probability at the blob centre.
        density: f32,
    },
    /// Nearly the whole wafer fails.
    NearFull {
        /// Uniform fail probability.
        density: f32,
    },
    /// Spatially uncorrelated failures.
    Random {
        /// Uniform fail probability.
        density: f32,
    },
    /// Thin curvilinear streak (mechanical scratch).
    Scratch {
        /// Start position as (radius fraction, angle).
        start: (f32, f32),
        /// Initial heading in radians.
        heading: f32,
        /// Per-step heading jitter (radians, std of Gaussian).
        wobble: f32,
        /// Streak length in die steps.
        length: usize,
        /// Probability of widening a step to 2 dies.
        thicken: f32,
    },
    /// No systematic pattern (background yield loss only).
    None,
}

impl PatternParams {
    /// Sample pattern parameters for `class` from its nominal ranges.
    pub fn sample<R: Rng + ?Sized>(class: DefectClass, cfg: &GenConfig, rng: &mut R) -> Self {
        let grid = cfg.grid as f32;
        match class {
            DefectClass::Center => PatternParams::Center {
                sigma: rng.gen_range(0.12..0.28),
                density: rng.gen_range(0.75..0.95),
            },
            DefectClass::Donut => {
                let inner = rng.gen_range(0.25..0.45);
                PatternParams::Donut {
                    inner,
                    outer: inner + rng.gen_range(0.18..0.35),
                    density: rng.gen_range(0.65..0.9),
                }
            }
            DefectClass::EdgeLoc => PatternParams::EdgeLoc {
                theta: rng.gen_range(0.0..2.0 * PI),
                half_width: rng.gen_range(0.25..0.7),
                inner: rng.gen_range(0.72..0.85),
                density: rng.gen_range(0.7..0.95),
            },
            DefectClass::EdgeRing => PatternParams::EdgeRing {
                inner: rng.gen_range(0.8..0.9),
                density: rng.gen_range(0.8..0.97),
                gap: if rng.gen_bool(0.3) { rng.gen_range(0.2..0.8) } else { 0.0 },
                gap_theta: rng.gen_range(0.0..2.0 * PI),
            },
            DefectClass::Location => PatternParams::Location {
                offset: rng.gen_range(0.25..0.6),
                theta: rng.gen_range(0.0..2.0 * PI),
                sigma: rng.gen_range(0.1..0.22),
                density: rng.gen_range(0.7..0.95),
            },
            DefectClass::NearFull => PatternParams::NearFull { density: rng.gen_range(0.8..0.97) },
            DefectClass::Random => PatternParams::Random { density: rng.gen_range(0.15..0.38) },
            DefectClass::Scratch => PatternParams::Scratch {
                start: (rng.gen_range(0.0..0.7), rng.gen_range(0.0..2.0 * PI)),
                heading: rng.gen_range(0.0..2.0 * PI),
                wobble: rng.gen_range(0.05..0.25),
                length: rng.gen_range((grid * 0.5) as usize..(grid * 1.4) as usize),
                thicken: rng.gen_range(0.0..0.35),
            },
            DefectClass::None => PatternParams::None,
        }
    }

    /// The defect class this parameter set belongs to.
    #[must_use]
    pub fn class(&self) -> DefectClass {
        match self {
            PatternParams::Center { .. } => DefectClass::Center,
            PatternParams::Donut { .. } => DefectClass::Donut,
            PatternParams::EdgeLoc { .. } => DefectClass::EdgeLoc,
            PatternParams::EdgeRing { .. } => DefectClass::EdgeRing,
            PatternParams::Location { .. } => DefectClass::Location,
            PatternParams::NearFull { .. } => DefectClass::NearFull,
            PatternParams::Random { .. } => DefectClass::Random,
            PatternParams::Scratch { .. } => DefectClass::Scratch,
            PatternParams::None => DefectClass::None,
        }
    }
}

/// Paint the systematic pattern onto `map` (failures only; never
/// touches off-wafer locations).
pub(super) fn paint<R: Rng + ?Sized>(
    map: &mut WaferMap,
    params: &PatternParams,
    cfg: &GenConfig,
    rng: &mut R,
) {
    let strength = cfg.pattern_strength;
    let (cx, cy) = map.center();
    let radius = map.radius();
    match *params {
        PatternParams::None => {}
        PatternParams::NearFull { density } | PatternParams::Random { density } => {
            let p = (density * strength).clamp(0.0, 1.0);
            for_each_on_wafer(map, |map, x, y| {
                if rng.gen::<f32>() < p {
                    map.fail_if_on_wafer(x, y);
                }
            });
        }
        PatternParams::Center { sigma, density } => {
            let s = sigma * radius;
            paint_blob(map, cx, cy, s, density * strength, rng);
        }
        PatternParams::Location { offset, theta, sigma, density } => {
            let bx = cx + offset * radius * theta.cos();
            let by = cy + offset * radius * theta.sin();
            paint_blob(map, bx, by, sigma * radius, density * strength, rng);
        }
        PatternParams::Donut { inner, outer, density } => {
            let p = (density * strength).clamp(0.0, 1.0);
            let (r0, r1) = (inner * radius, outer * radius);
            for_each_on_wafer(map, |map, x, y| {
                let d = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)).sqrt();
                if d >= r0 && d <= r1 && rng.gen::<f32>() < p {
                    map.fail_if_on_wafer(x, y);
                }
            });
        }
        PatternParams::EdgeRing { inner, density, gap, gap_theta } => {
            let p = (density * strength).clamp(0.0, 1.0);
            let r0 = inner * radius;
            for_each_on_wafer(map, |map, x, y| {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                let d = (dx * dx + dy * dy).sqrt();
                if d < r0 {
                    return;
                }
                if gap > 0.0 {
                    let theta = dy.atan2(dx);
                    if angular_distance(theta, gap_theta) < gap / 2.0 {
                        return;
                    }
                }
                if rng.gen::<f32>() < p {
                    map.fail_if_on_wafer(x, y);
                }
            });
        }
        PatternParams::EdgeLoc { theta, half_width, inner, density } => {
            let p = (density * strength).clamp(0.0, 1.0);
            let r0 = inner * radius;
            for_each_on_wafer(map, |map, x, y| {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                let d = (dx * dx + dy * dy).sqrt();
                if d < r0 {
                    return;
                }
                let angle = dy.atan2(dx);
                if angular_distance(angle, theta) <= half_width && rng.gen::<f32>() < p {
                    map.fail_if_on_wafer(x, y);
                }
            });
        }
        PatternParams::Scratch { start, heading, wobble, length, thicken } => {
            let mut x = cx + start.0 * radius * start.1.cos();
            let mut y = cy + start.0 * radius * start.1.sin();
            let mut dir = heading;
            for _ in 0..length {
                let xi = x.round();
                let yi = y.round();
                if xi >= 0.0 && yi >= 0.0 {
                    map.fail_if_on_wafer(xi as usize, yi as usize);
                    if rng.gen::<f32>() < thicken {
                        // Widen perpendicular to the travel direction.
                        let px = (x - dir.sin()).round();
                        let py = (y + dir.cos()).round();
                        if px >= 0.0 && py >= 0.0 {
                            map.fail_if_on_wafer(px as usize, py as usize);
                        }
                    }
                }
                dir += super::gaussian(rng) * wobble;
                x += dir.cos();
                y += dir.sin();
                // Reflect off the wafer boundary so scratches stay on it.
                let dx = x - cx;
                let dy = y - cy;
                if (dx * dx + dy * dy).sqrt() > radius {
                    dir += PI / 2.0 + rng.gen_range(0.0..PI);
                    x = (x - 2.0 * dx / radius).clamp(0.0, map.width() as f32 - 1.0);
                    y = (y - 2.0 * dy / radius).clamp(0.0, map.height() as f32 - 1.0);
                }
            }
        }
    }
}

/// Sprinkle isolated background failures (yield loss) over the wafer.
pub(super) fn sprinkle_background<R: Rng + ?Sized>(map: &mut WaferMap, rate: f32, rng: &mut R) {
    if rate <= 0.0 {
        return;
    }
    for_each_on_wafer(map, |map, x, y| {
        if rng.gen::<f32>() < rate {
            map.fail_if_on_wafer(x, y);
        }
    });
}

/// Gaussian-falloff blob painter shared by Center and Location.
fn paint_blob<R: Rng + ?Sized>(
    map: &mut WaferMap,
    bx: f32,
    by: f32,
    sigma: f32,
    peak: f32,
    rng: &mut R,
) {
    let peak = peak.clamp(0.0, 1.0);
    let two_sigma_sq = 2.0 * sigma * sigma;
    for_each_on_wafer(map, |map, x, y| {
        let d2 = (x as f32 - bx).powi(2) + (y as f32 - by).powi(2);
        let p = peak * (-d2 / two_sigma_sq).exp();
        if rng.gen::<f32>() < p {
            map.fail_if_on_wafer(x, y);
        }
    });
}

/// Smallest absolute angular difference between two angles (radians).
fn angular_distance(a: f32, b: f32) -> f32 {
    let mut d = (a - b) % (2.0 * PI);
    if d > PI {
        d -= 2.0 * PI;
    }
    if d < -PI {
        d += 2.0 * PI;
    }
    d.abs()
}

/// Visit every on-wafer location. Collects coordinates first so the
/// closure may mutate the map.
fn for_each_on_wafer<F: FnMut(&mut WaferMap, usize, usize)>(map: &mut WaferMap, mut f: F) {
    let coords: Vec<(usize, usize)> = map.iter_on_wafer().map(|(x, y, _)| (x, y)).collect();
    for (x, y) in coords {
        f(map, x, y);
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn params_class_roundtrip() {
        let cfg = GenConfig::new(32);
        let mut rng = StdRng::seed_from_u64(1);
        for class in DefectClass::ALL {
            let params = PatternParams::sample(class, &cfg, &mut rng);
            assert_eq!(params.class(), class);
        }
    }

    #[test]
    fn angular_distance_handles_wraparound() {
        assert!((angular_distance(0.1, 2.0 * PI - 0.1) - 0.2).abs() < 1e-5);
        assert!((angular_distance(PI, -PI)).abs() < 1e-5);
        assert!((angular_distance(0.0, PI) - PI).abs() < 1e-5);
    }

    #[test]
    fn zero_strength_paints_nothing_systematic() {
        let cfg = GenConfig::new(32).with_pattern_strength(0.0).with_background_fail_rate(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        for class in [DefectClass::Center, DefectClass::Donut, DefectClass::EdgeRing] {
            let map = super::super::generate(class, &cfg, &mut rng);
            assert_eq!(map.fail_count(), 0, "{class} painted at zero strength");
        }
    }

    #[test]
    fn location_blob_is_off_centre() {
        let cfg = GenConfig::new(32).with_background_fail_rate(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut off_centre = 0;
        let trials = 20;
        for _ in 0..trials {
            let map = super::super::generate(DefectClass::Location, &cfg, &mut rng);
            let (cx, cy) = map.center();
            // Centroid of failures.
            let fails: Vec<(f32, f32)> = map
                .iter_on_wafer()
                .filter(|(_, _, d)| d.is_fail())
                .map(|(x, y, _)| (x as f32, y as f32))
                .collect();
            if fails.is_empty() {
                continue;
            }
            let mx = fails.iter().map(|f| f.0).sum::<f32>() / fails.len() as f32;
            let my = fails.iter().map(|f| f.1).sum::<f32>() / fails.len() as f32;
            let d = ((mx - cx).powi(2) + (my - cy).powi(2)).sqrt();
            if d > map.radius() * 0.15 {
                off_centre += 1;
            }
        }
        assert!(off_centre >= trials * 3 / 4, "location blobs centred: {off_centre}/{trials}");
    }

    #[test]
    fn scratch_stays_on_wafer() {
        let cfg = GenConfig::new(24).with_background_fail_rate(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let map = super::super::generate(DefectClass::Scratch, &cfg, &mut rng);
            // All failures must be on-wafer by construction.
            assert_eq!(
                map.fail_count(),
                map.iter_on_wafer().filter(|(_, _, d)| d.is_fail()).count()
            );
        }
    }

    #[test]
    fn background_rate_sprinkles_roughly_proportionally() {
        let mut map = WaferMap::blank(48, 48);
        let mut rng = StdRng::seed_from_u64(5);
        sprinkle_background(&mut map, 0.1, &mut rng);
        let expected = map.on_wafer_count() as f32 * 0.1;
        let got = map.fail_count() as f32;
        assert!((got - expected).abs() < expected * 0.5, "expected ~{expected}, got {got}");
    }
}
