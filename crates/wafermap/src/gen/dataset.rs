//! Labeled datasets of synthetic wafer maps and the WM-811K-mixture
//! builder used by every experiment.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use super::{generate, GenConfig};
use crate::{DefectClass, WaferMap};

/// One labeled wafer-map sample.
///
/// `weight` participates in the training loss: original samples carry
/// weight 1.0 while synthetic (augmented) samples carry the paper's
/// `w < 1` so that "the objective function \[is penalized\] 1/w more
/// when an original sample is misclassified compared to when a
/// synthetic sample is".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The wafer map.
    pub map: WaferMap,
    /// Ground-truth defect class.
    pub label: DefectClass,
    /// Loss weight (1.0 for original, `w < 1` for synthetic samples).
    pub weight: f32,
    /// Whether this sample was produced by data augmentation.
    pub synthetic: bool,
}

impl Sample {
    /// A new original (non-synthetic, unit-weight) sample.
    #[must_use]
    pub fn original(map: WaferMap, label: DefectClass) -> Self {
        Sample { map, label, weight: 1.0, synthetic: false }
    }

    /// A new synthetic sample with the given loss weight.
    #[must_use]
    pub fn synthetic(map: WaferMap, label: DefectClass, weight: f32) -> Self {
        Sample { map, label, weight, synthetic: true }
    }
}

/// A collection of labeled wafer-map samples sharing one grid size.
///
/// # Example
///
/// ```
/// use wafermap::gen::{SyntheticWm811k, Dataset};
///
/// let (train, test) = SyntheticWm811k::new(16).scale(0.002).seed(1).build();
/// assert!(train.len() > 0 && test.len() > 0);
/// assert_eq!(train.grid(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    grid: usize,
    samples: Vec<Sample>,
}

impl Dataset {
    /// Create an empty dataset for `grid x grid` wafers.
    ///
    /// # Panics
    ///
    /// Panics if `grid == 0`.
    #[must_use]
    pub fn new(grid: usize) -> Self {
        assert!(grid > 0, "grid must be non-zero");
        Dataset { grid, samples: Vec::new() }
    }

    /// Grid side length shared by all samples.
    #[must_use]
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Append a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample's grid does not match the dataset's.
    pub fn push(&mut self, sample: Sample) {
        assert_eq!(sample.map.width(), self.grid, "sample grid mismatch");
        assert_eq!(sample.map.height(), self.grid, "sample grid mismatch");
        self.samples.push(sample);
    }

    /// Samples in insertion order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterate over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Shuffle samples in place.
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.samples.shuffle(rng);
    }

    /// Per-class sample counts indexed by [`DefectClass::index`].
    #[must_use]
    pub fn class_counts(&self) -> [usize; DefectClass::COUNT] {
        let mut counts = [0usize; DefectClass::COUNT];
        for s in &self.samples {
            counts[s.label.index()] += 1;
        }
        counts
    }

    /// Samples belonging to one class.
    #[must_use]
    pub fn of_class(&self, class: DefectClass) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.label == class).collect()
    }

    /// Dataset restricted to samples whose class satisfies `keep`.
    #[must_use]
    pub fn filtered<F: Fn(DefectClass) -> bool>(&self, keep: F) -> Dataset {
        Dataset {
            grid: self.grid,
            samples: self.samples.iter().filter(|s| keep(s.label)).cloned().collect(),
        }
    }

    /// Split into `(front, back)` where `front` holds `fraction` of the
    /// samples **per class** (stratified), after a seeded shuffle of
    /// each class bucket.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    #[must_use]
    pub fn stratified_split<R: Rng + ?Sized>(
        &self,
        fraction: f64,
        rng: &mut R,
    ) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let mut front = Dataset::new(self.grid);
        let mut back = Dataset::new(self.grid);
        for class in DefectClass::ALL {
            let mut bucket: Vec<Sample> =
                self.samples.iter().filter(|s| s.label == class).cloned().collect();
            bucket.shuffle(rng);
            let cut = ((bucket.len() as f64) * fraction).round() as usize;
            for (i, s) in bucket.into_iter().enumerate() {
                if i < cut {
                    front.push(s);
                } else {
                    back.push(s);
                }
            }
        }
        (front, back)
    }

    /// Flattened `f32` image batch plus label indices and weights, in
    /// sample order: the tensors a training loop consumes. Images are
    /// row-major, one `grid*grid` block per sample.
    #[must_use]
    pub fn to_tensors(&self) -> (Vec<f32>, Vec<usize>, Vec<f32>) {
        let pixels = self.grid * self.grid;
        let mut images = Vec::with_capacity(self.samples.len() * pixels);
        let mut labels = Vec::with_capacity(self.samples.len());
        let mut weights = Vec::with_capacity(self.samples.len());
        for s in &self.samples {
            images.extend(s.map.to_image());
            labels.push(s.label.index());
            weights.push(s.weight);
        }
        (images, labels, weights)
    }

    /// Serialize the dataset to a JSON file (reproducible experiment
    /// snapshots without re-running generation).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and serialization errors.
    pub fn save_json<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self).map_err(std::io::Error::other)
    }

    /// Load a dataset written by [`Dataset::save_json`].
    ///
    /// # Errors
    ///
    /// Propagates file-open and deserialization errors.
    pub fn load_json<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(file)).map_err(std::io::Error::other)
    }

    /// Merge another dataset into this one.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.grid, other.grid, "grid mismatch");
        self.samples.extend(other.samples.iter().cloned());
    }
}

impl Extend<Sample> for Dataset {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        for s in iter {
            self.push(s);
        }
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// Builder for a synthetic WM-811K-style dataset with the paper's
/// Table II class mixture.
///
/// `scale` multiplies the per-class Table II counts, so `scale = 1.0`
/// reproduces the full 43,484-train / 10,871-test mixture and smaller
/// values produce CPU-friendly datasets with identical imbalance.
/// Every class is guaranteed at least one sample in each split.
///
/// # Example
///
/// ```
/// use wafermap::{gen::SyntheticWm811k, DefectClass};
///
/// let (train, test) = SyntheticWm811k::new(24).scale(0.01).seed(7).build();
/// let counts = train.class_counts();
/// // None dominates, as in the real dataset.
/// assert!(counts[DefectClass::None.index()] > counts[DefectClass::Donut.index()]);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWm811k {
    grid: usize,
    scale: f64,
    seed: u64,
    config: GenConfig,
}

impl SyntheticWm811k {
    /// Builder for `grid x grid` wafers with nominal generation
    /// parameters, scale 1.0 and seed 0.
    #[must_use]
    pub fn new(grid: usize) -> Self {
        SyntheticWm811k { grid, scale: 1.0, seed: 0, config: GenConfig::new(grid) }
    }

    /// Multiply all Table II class counts by `scale` (rounded, min 1).
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    #[must_use]
    pub fn scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Seed for deterministic generation.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the generation config (noise ranges, pattern strength).
    ///
    /// # Panics
    ///
    /// Panics if the config grid disagrees with the builder grid.
    #[must_use]
    pub fn config(mut self, config: GenConfig) -> Self {
        assert_eq!(config.grid, self.grid, "config grid mismatch");
        self.config = config;
        self
    }

    /// Number of training samples this builder will generate for a
    /// class.
    #[must_use]
    pub fn train_count(&self, class: DefectClass) -> usize {
        scaled(class.paper_training_count(), self.scale)
    }

    /// Number of test samples this builder will generate for a class.
    #[must_use]
    pub fn test_count(&self, class: DefectClass) -> usize {
        scaled(class.paper_testing_count(), self.scale)
    }

    /// Generate `(train, test)` datasets.
    #[must_use]
    pub fn build(&self) -> (Dataset, Dataset) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut train = Dataset::new(self.grid);
        let mut test = Dataset::new(self.grid);
        for class in DefectClass::ALL {
            for _ in 0..self.train_count(class) {
                train.push(Sample::original(generate(class, &self.config, &mut rng), class));
            }
            for _ in 0..self.test_count(class) {
                test.push(Sample::original(generate(class, &self.config, &mut rng), class));
            }
        }
        (train, test)
    }
}

fn scaled(count: usize, scale: f64) -> usize {
    (((count as f64) * scale).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn builder_respects_table_ii_mixture() {
        let b = SyntheticWm811k::new(16).scale(0.01);
        // 1% of 29357 ≈ 294, of 49 → max(1, 0) = 1.
        assert_eq!(b.train_count(DefectClass::None), 294);
        assert_eq!(b.train_count(DefectClass::NearFull), 1);
        assert_eq!(b.test_count(DefectClass::EdgeRing), 18);
    }

    #[test]
    fn build_is_deterministic() {
        let (a_train, a_test) = SyntheticWm811k::new(16).scale(0.001).seed(9).build();
        let (b_train, b_test) = SyntheticWm811k::new(16).scale(0.001).seed(9).build();
        assert_eq!(a_train, b_train);
        assert_eq!(a_test, b_test);
    }

    #[test]
    fn class_counts_match_builder_promises() {
        let b = SyntheticWm811k::new(16).scale(0.005).seed(2);
        let (train, test) = b.build();
        let counts = train.class_counts();
        for class in DefectClass::ALL {
            assert_eq!(counts[class.index()], b.train_count(class), "{class}");
        }
        let tcounts = test.class_counts();
        for class in DefectClass::ALL {
            assert_eq!(tcounts[class.index()], b.test_count(class), "{class}");
        }
    }

    #[test]
    fn stratified_split_keeps_class_proportions() {
        let (train, _) = SyntheticWm811k::new(16).scale(0.01).seed(3).build();
        let mut rng = StdRng::seed_from_u64(4);
        let (front, back) = train.stratified_split(0.8, &mut rng);
        assert_eq!(front.len() + back.len(), train.len());
        let fc = front.class_counts();
        let tc = train.class_counts();
        for class in DefectClass::ALL {
            let expected = ((tc[class.index()] as f64) * 0.8).round() as usize;
            assert_eq!(fc[class.index()], expected, "{class}");
        }
    }

    #[test]
    fn to_tensors_shapes_agree() {
        let (train, _) = SyntheticWm811k::new(8).scale(0.001).seed(5).build();
        let (images, labels, weights) = train.to_tensors();
        assert_eq!(images.len(), train.len() * 64);
        assert_eq!(labels.len(), train.len());
        assert_eq!(weights.len(), train.len());
        assert!(weights.iter().all(|&w| w == 1.0));
    }

    #[test]
    fn filtered_drops_requested_classes() {
        let (train, _) = SyntheticWm811k::new(8).scale(0.002).seed(6).build();
        let no_nearfull = train.filtered(|c| c != DefectClass::NearFull);
        assert_eq!(no_nearfull.class_counts()[DefectClass::NearFull.index()], 0);
        assert!(no_nearfull.len() < train.len());
    }

    #[test]
    fn json_roundtrip_preserves_dataset() {
        let (train, _) = SyntheticWm811k::new(8).scale(0.0005).seed(10).build();
        let dir = std::env::temp_dir().join("wafermap_dataset_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("ds.json");
        train.save_json(&path).expect("save");
        let loaded = Dataset::load_json(&path).expect("load");
        assert_eq!(loaded, train);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "grid mismatch")]
    fn push_rejects_wrong_grid() {
        let mut ds = Dataset::new(8);
        ds.push(Sample::original(WaferMap::blank(9, 9), DefectClass::None));
    }
}
