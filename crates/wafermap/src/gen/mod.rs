//! Parametric synthetic generators for the nine WM-811K defect
//! pattern classes.
//!
//! The real WM-811K dataset is not redistributable here, so this module
//! implements the closest synthetic equivalent: each class is a
//! spatial stochastic model over the circular die grid whose draws
//! reproduce the geometry the paper's Fig. 1 shows — centre blobs,
//! donut rings, edge arcs and rings, local clusters, scratch streaks,
//! uniform random failures, near-full wafers, and clean wafers with
//! only background yield loss. Intra-class variation (position, size,
//! orientation, density) and class imbalance (Table II mixture) are
//! both preserved, which is what the classifier, the selective head,
//! the augmentation pipeline and the SVM baseline actually exercise.

mod dataset;
mod patterns;

pub use dataset::{Dataset, Sample, SyntheticWm811k};
pub use patterns::PatternParams;

use rand::Rng;

use crate::{DefectClass, WaferMap};

/// Configuration shared by all pattern generators.
///
/// # Example
///
/// ```
/// use wafermap::gen::GenConfig;
///
/// let cfg = GenConfig::new(32);
/// assert_eq!(cfg.grid, 32);
/// let quiet = cfg.with_background_fail_rate(0.0, 0.0);
/// assert_eq!(quiet.background_lo, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Side length of the (square) die grid.
    pub grid: usize,
    /// Lower bound of the per-wafer background fail probability.
    pub background_lo: f32,
    /// Upper bound of the per-wafer background fail probability.
    pub background_hi: f32,
    /// Multiplier on systematic-pattern fail densities; 1.0 matches
    /// the nominal models, values below weaken patterns (used by the
    /// concept-shift experiment).
    pub pattern_strength: f32,
}

impl GenConfig {
    /// Nominal configuration for a `grid x grid` wafer.
    ///
    /// # Panics
    ///
    /// Panics if `grid < 8`; smaller grids cannot carry the patterns.
    #[must_use]
    pub fn new(grid: usize) -> Self {
        assert!(grid >= 8, "wafer grid must be at least 8x8");
        GenConfig { grid, background_lo: 0.005, background_hi: 0.03, pattern_strength: 1.0 }
    }

    /// Override the background (yield-loss) fail-rate range.
    #[must_use]
    pub fn with_background_fail_rate(mut self, lo: f32, hi: f32) -> Self {
        self.background_lo = lo.clamp(0.0, 1.0);
        self.background_hi = hi.clamp(self.background_lo, 1.0);
        self
    }

    /// Override the systematic-pattern strength multiplier.
    #[must_use]
    pub fn with_pattern_strength(mut self, strength: f32) -> Self {
        self.pattern_strength = strength.max(0.0);
        self
    }
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig::new(32)
    }
}

/// Draw one wafer map of the given defect class.
///
/// Each call samples fresh pattern parameters (position, size,
/// orientation, density) so repeated calls produce the intra-class
/// variation a classifier must generalize over.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use wafermap::{gen::{generate, GenConfig}, DefectClass};
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let cfg = GenConfig::new(32);
/// let wafer = generate(DefectClass::Scratch, &cfg, &mut rng);
/// assert!(wafer.fail_count() > 0);
/// ```
#[must_use]
pub fn generate<R: Rng + ?Sized>(class: DefectClass, cfg: &GenConfig, rng: &mut R) -> WaferMap {
    let params = PatternParams::sample(class, cfg, rng);
    generate_with_params(&params, cfg, rng)
}

/// Draw one wafer map from explicit, pre-sampled pattern parameters.
///
/// Exposing the intermediate [`PatternParams`] lets callers generate
/// correlated samples (e.g. the same scratch at two noise levels) and
/// lets the concept-shift experiment perturb parameters directly.
#[must_use]
pub fn generate_with_params<R: Rng + ?Sized>(
    params: &PatternParams,
    cfg: &GenConfig,
    rng: &mut R,
) -> WaferMap {
    let mut map = WaferMap::blank(cfg.grid, cfg.grid);
    patterns::paint(&mut map, params, cfg, rng);
    let background = rng.gen_range(cfg.background_lo..=cfg.background_hi);
    patterns::sprinkle_background(&mut map, background, rng);
    map
}

/// Draw a wafer exhibiting **two** superimposed defect patterns.
///
/// The paper motivates the reject option partly by wafers that "exhibit
/// more than one defect pattern which can overwhelm the classification
/// model"; this generator produces exactly those ambiguous samples for
/// the concept-shift and abstention experiments.
#[must_use]
pub fn generate_mixed<R: Rng + ?Sized>(
    a: DefectClass,
    b: DefectClass,
    cfg: &GenConfig,
    rng: &mut R,
) -> WaferMap {
    let pa = PatternParams::sample(a, cfg, rng);
    let pb = PatternParams::sample(b, cfg, rng);
    let mut map = WaferMap::blank(cfg.grid, cfg.grid);
    patterns::paint(&mut map, &pa, cfg, rng);
    patterns::paint(&mut map, &pb, cfg, rng);
    let background = rng.gen_range(cfg.background_lo..=cfg.background_hi);
    patterns::sprinkle_background(&mut map, background, rng);
    map
}

/// Standard-normal sample via the Box–Muller transform.
///
/// `rand_distr` is outside the allowed dependency set, so the few
/// places that need Gaussian noise use this helper.
#[must_use]
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDAC2020)
    }

    #[test]
    fn every_class_generates_valid_wafers() {
        let cfg = GenConfig::new(32);
        let mut rng = rng();
        for class in DefectClass::ALL {
            let map = generate(class, &cfg, &mut rng);
            assert_eq!(map.width(), 32);
            assert_eq!(map.height(), 32);
            assert!(map.on_wafer_count() > 600, "{class}: wafer mask broken");
        }
    }

    #[test]
    fn near_full_is_mostly_failing_and_none_mostly_passing() {
        let cfg = GenConfig::new(32);
        let mut rng = rng();
        for _ in 0..10 {
            let nf = generate(DefectClass::NearFull, &cfg, &mut rng);
            assert!(nf.fail_ratio() > 0.6, "near-full too sparse: {}", nf.fail_ratio());
            let none = generate(DefectClass::None, &cfg, &mut rng);
            assert!(none.fail_ratio() < 0.08, "none too dense: {}", none.fail_ratio());
        }
    }

    #[test]
    fn center_failures_concentrate_near_centre() {
        let cfg = GenConfig::new(32);
        let mut rng = rng();
        let mut inner = 0usize;
        let mut outer = 0usize;
        for _ in 0..20 {
            let map = generate(DefectClass::Center, &cfg, &mut rng);
            let (cx, cy) = map.center();
            let half = map.radius() * 0.5;
            for (x, y, die) in map.iter_on_wafer() {
                if die.is_fail() {
                    let d = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)).sqrt();
                    if d <= half {
                        inner += 1;
                    } else {
                        outer += 1;
                    }
                }
            }
        }
        assert!(inner > outer * 2, "center pattern not central: {inner} vs {outer}");
    }

    #[test]
    fn edge_ring_failures_concentrate_near_edge() {
        let cfg = GenConfig::new(32);
        let mut rng = rng();
        let mut edge = 0usize;
        let mut interior = 0usize;
        for _ in 0..20 {
            let map = generate(DefectClass::EdgeRing, &cfg, &mut rng);
            let (cx, cy) = map.center();
            let band = map.radius() * 0.75;
            for (x, y, die) in map.iter_on_wafer() {
                if die.is_fail() {
                    let d = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)).sqrt();
                    if d >= band {
                        edge += 1;
                    } else {
                        interior += 1;
                    }
                }
            }
        }
        assert!(edge > interior * 3, "edge-ring not at edge: {edge} vs {interior}");
    }

    #[test]
    fn donut_has_a_hole() {
        let cfg = GenConfig::new(32).with_background_fail_rate(0.0, 0.0);
        let mut rng = rng();
        for _ in 0..10 {
            let map = generate(DefectClass::Donut, &cfg, &mut rng);
            let (cx, cy) = map.center();
            let hole = map.radius() * 0.15;
            let hole_fails = map
                .iter_on_wafer()
                .filter(|(x, y, die)| {
                    die.is_fail()
                        && ((*x as f32 - cx).powi(2) + (*y as f32 - cy).powi(2)).sqrt() < hole
                })
                .count();
            assert!(hole_fails <= 2, "donut hole contains {hole_fails} failures");
        }
    }

    #[test]
    fn scratch_is_thin_but_long() {
        let cfg = GenConfig::new(32).with_background_fail_rate(0.0, 0.0);
        let mut rng = rng();
        for _ in 0..10 {
            let map = generate(DefectClass::Scratch, &cfg, &mut rng);
            let fails = map.fail_count();
            assert!(fails >= 8, "scratch too short: {fails}");
            assert!((map.fail_ratio()) < 0.15, "scratch too thick: ratio {}", map.fail_ratio());
        }
    }

    #[test]
    fn mixed_pattern_carries_both_signatures() {
        let cfg = GenConfig::new(32).with_background_fail_rate(0.0, 0.0);
        let mut rng = rng();
        let mixed = generate_mixed(DefectClass::Center, DefectClass::EdgeRing, &cfg, &mut rng);
        let single = generate(DefectClass::Center, &cfg, &mut rng);
        assert!(mixed.fail_count() > single.fail_count());
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = rng();
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "gaussian variance {var}");
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let cfg = GenConfig::new(32);
        let a = generate(DefectClass::Donut, &cfg, &mut StdRng::seed_from_u64(5));
        let b = generate(DefectClass::Donut, &cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
