//! Descriptive statistics over wafer maps and datasets: per-class
//! fail-ratio summaries and radial fail profiles. Useful for sanity
//! checking generated data and for characterizing distribution shift.

use serde::{Deserialize, Serialize};

use crate::{Dataset, DefectClass, WaferMap};

/// Summary statistics of one class within a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Samples of the class.
    pub count: usize,
    /// Mean fraction of on-wafer dies that fail.
    pub mean_fail_ratio: f32,
    /// Standard deviation of the fail ratio.
    pub std_fail_ratio: f32,
    /// Minimum fail ratio observed.
    pub min_fail_ratio: f32,
    /// Maximum fail ratio observed.
    pub max_fail_ratio: f32,
}

impl ClassStats {
    fn from_ratios(ratios: &[f32]) -> Self {
        if ratios.is_empty() {
            return ClassStats {
                count: 0,
                mean_fail_ratio: 0.0,
                std_fail_ratio: 0.0,
                min_fail_ratio: 0.0,
                max_fail_ratio: 0.0,
            };
        }
        let n = ratios.len() as f32;
        let mean = ratios.iter().sum::<f32>() / n;
        let var = ratios.iter().map(|r| (r - mean) * (r - mean)).sum::<f32>() / n;
        ClassStats {
            count: ratios.len(),
            mean_fail_ratio: mean,
            std_fail_ratio: var.sqrt(),
            min_fail_ratio: ratios.iter().copied().fold(f32::INFINITY, f32::min),
            max_fail_ratio: ratios.iter().copied().fold(f32::NEG_INFINITY, f32::max),
        }
    }
}

/// Per-class statistics for a dataset, indexed by
/// [`DefectClass::index`].
///
/// # Example
///
/// ```
/// use wafermap::{gen::SyntheticWm811k, stats::dataset_stats, DefectClass};
///
/// let (train, _) = SyntheticWm811k::new(16).scale(0.002).seed(1).build();
/// let stats = dataset_stats(&train);
/// let nf = stats[DefectClass::NearFull.index()];
/// let none = stats[DefectClass::None.index()];
/// assert!(nf.mean_fail_ratio > none.mean_fail_ratio);
/// ```
#[must_use]
pub fn dataset_stats(dataset: &Dataset) -> [ClassStats; DefectClass::COUNT] {
    let mut ratios: [Vec<f32>; DefectClass::COUNT] = Default::default();
    for s in dataset {
        ratios[s.label.index()].push(s.map.fail_ratio());
    }
    std::array::from_fn(|i| ClassStats::from_ratios(&ratios[i]))
}

/// Radial fail-density profile: the wafer is split into `n_bins`
/// concentric annuli of equal radial width and each bin reports the
/// fraction of its on-wafer dies that fail.
///
/// Center patterns peak in the inner bins, edge rings in the outer
/// ones — a compact, interpretable signature.
///
/// # Panics
///
/// Panics if `n_bins` is zero.
#[must_use]
pub fn radial_profile(map: &WaferMap, n_bins: usize) -> Vec<f32> {
    assert!(n_bins > 0, "need at least one radial bin");
    let (cx, cy) = map.center();
    let radius = map.radius();
    let mut fails = vec![0u32; n_bins];
    let mut totals = vec![0u32; n_bins];
    for (x, y, die) in map.iter_on_wafer() {
        let d = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)).sqrt();
        let bin = ((d / radius) * n_bins as f32).clamp(0.0, n_bins as f32 - 1.0) as usize;
        totals[bin] += 1;
        if die.is_fail() {
            fails[bin] += 1;
        }
    }
    (0..n_bins)
        .map(|b| if totals[b] == 0 { 0.0 } else { fails[b] as f32 / totals[b] as f32 })
        .collect()
}

/// Angular fail-density profile: `n_bins` equal angular sectors, each
/// reporting its fail fraction. Edge-Loc arcs produce a single bump;
/// edge rings are flat.
///
/// # Panics
///
/// Panics if `n_bins` is zero.
#[must_use]
pub fn angular_profile(map: &WaferMap, n_bins: usize) -> Vec<f32> {
    assert!(n_bins > 0, "need at least one angular bin");
    let (cx, cy) = map.center();
    let tau = 2.0 * std::f32::consts::PI;
    let mut fails = vec![0u32; n_bins];
    let mut totals = vec![0u32; n_bins];
    for (x, y, die) in map.iter_on_wafer() {
        let theta = (y as f32 - cy).atan2(x as f32 - cx).rem_euclid(tau);
        let bin = ((theta / tau) * n_bins as f32).clamp(0.0, n_bins as f32 - 1.0) as usize;
        totals[bin] += 1;
        if die.is_fail() {
            fails[bin] += 1;
        }
    }
    (0..n_bins)
        .map(|b| if totals[b] == 0 { 0.0 } else { fails[b] as f32 / totals[b] as f32 })
        .collect()
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::Die;

    #[test]
    fn center_peaks_inner_edge_ring_peaks_outer() {
        let cfg = GenConfig::new(32).with_background_fail_rate(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let center = generate(DefectClass::Center, &cfg, &mut rng);
        let ring = generate(DefectClass::EdgeRing, &cfg, &mut rng);
        let pc = radial_profile(&center, 5);
        let pr = radial_profile(&ring, 5);
        assert!(pc[0] > pc[4], "center profile not decreasing: {pc:?}");
        assert!(pr[4] > pr[0], "edge-ring profile not increasing: {pr:?}");
    }

    #[test]
    fn angular_profile_flags_edge_loc_arc() {
        let cfg = GenConfig::new(32).with_background_fail_rate(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let arc = generate(DefectClass::EdgeLoc, &cfg, &mut rng);
        let profile = angular_profile(&arc, 8);
        let max = profile.iter().copied().fold(0.0f32, f32::max);
        let nonzero = profile.iter().filter(|&&v| v > max * 0.5).count();
        assert!(nonzero <= 5, "edge-loc arc spread over {nonzero} of 8 sectors: {profile:?}");
    }

    #[test]
    fn dataset_stats_counts_match() {
        let (train, _) = crate::gen::SyntheticWm811k::new(16).scale(0.002).seed(3).build();
        let stats = dataset_stats(&train);
        let counts = train.class_counts();
        for class in DefectClass::ALL {
            assert_eq!(stats[class.index()].count, counts[class.index()]);
        }
    }

    #[test]
    fn empty_class_stats_are_zero() {
        let ds = Dataset::new(8);
        let stats = dataset_stats(&ds);
        assert_eq!(stats[0].count, 0);
        assert_eq!(stats[0].mean_fail_ratio, 0.0);
    }

    #[test]
    fn uniform_failures_give_flat_profiles() {
        let mut map = WaferMap::blank(20, 20);
        let coords: Vec<(usize, usize)> = map.iter_on_wafer().map(|(x, y, _)| (x, y)).collect();
        for (x, y) in coords {
            map.set(x, y, Die::Fail);
        }
        for v in radial_profile(&map, 4) {
            assert!((v - 1.0).abs() < 1e-6);
        }
        for v in angular_profile(&map, 4) {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }
}
