//! Property tests for the mask contract of every `ops` transform:
//! whatever irregular wafer footprint goes in — notches, flats,
//! scattered off-wafer dies — exactly that footprint comes out.
//!
//! Regression suite for the flip bug where `flip_horizontal` /
//! `flip_vertical` copied dies cell-by-cell and relocated `OffWafer`
//! markers on any mask that was not mirror-symmetric.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wafermap::{ops, Die, WaferMap};

/// Build an arbitrary irregular wafer: a square grid with a random
/// rectangular notch, random scattered off-wafer dies, and random
/// failures on what remains.
fn irregular_map(grid: usize, seed: u64) -> WaferMap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dies = vec![Die::Pass; grid * grid];
    // Rectangular notch anchored at a random corner.
    let nw = rng.gen_range(0..grid / 2);
    let nh = rng.gen_range(0..grid / 2);
    let (x0, y0) = (
        if rng.gen_bool(0.5) { 0 } else { grid - nw },
        if rng.gen_bool(0.5) { 0 } else { grid - nh },
    );
    for y in y0..(y0 + nh).min(grid) {
        for x in x0..(x0 + nw).min(grid) {
            dies[y * grid + x] = Die::OffWafer;
        }
    }
    // Scattered defects and isolated off-wafer dies.
    for die in dies.iter_mut() {
        if *die == Die::Pass {
            if rng.gen_bool(0.05) {
                *die = Die::OffWafer;
            } else if rng.gen_bool(0.15) {
                *die = Die::Fail;
            }
        }
    }
    // Keep at least one on-wafer die so the map is a valid wafer.
    dies[(grid / 2) * grid + grid / 2] = Die::Pass;
    WaferMap::from_dies(grid, grid, dies).expect("valid grid")
}

/// Assert `b` has exactly `a`'s on-wafer footprint.
fn assert_same_mask(a: &WaferMap, b: &WaferMap, what: &str) {
    assert_eq!(a.on_wafer_count(), b.on_wafer_count(), "{what}: on-wafer count changed");
    for y in 0..a.height() {
        for x in 0..a.width() {
            assert_eq!(
                a.get(x, y).is_on_wafer(),
                b.get(x, y).is_on_wafer(),
                "{what}: mask changed at ({x}, {y})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rotate_preserves_arbitrary_masks(
        seed in any::<u64>(),
        grid in prop_oneof![Just(9usize), Just(12), Just(17)],
        angle in prop_oneof![Just(30.0f32), Just(45.0), Just(90.0), Just(137.0), Just(270.0)],
    ) {
        let map = irregular_map(grid, seed);
        assert_same_mask(&map, &ops::rotate(&map, angle), "rotate");
    }

    #[test]
    fn flips_preserve_arbitrary_masks(
        seed in any::<u64>(),
        grid in prop_oneof![Just(9usize), Just(12), Just(17)],
    ) {
        let map = irregular_map(grid, seed);
        assert_same_mask(&map, &ops::flip_horizontal(&map), "flip_horizontal");
        assert_same_mask(&map, &ops::flip_vertical(&map), "flip_vertical");
    }

    #[test]
    fn salt_and_pepper_preserves_arbitrary_masks_and_flip_count(
        seed in any::<u64>(),
        grid in prop_oneof![Just(9usize), Just(12), Just(17)],
        rate in prop_oneof![Just(0.0f32), Just(0.05), Just(0.3), Just(1.0)],
    ) {
        let map = irregular_map(grid, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let noisy = ops::salt_and_pepper(&map, rate, &mut rng);
        assert_same_mask(&map, &noisy, "salt_and_pepper");
        // Distinct sampling: exactly round(rate * on_wafer) dies differ.
        let expected = (map.on_wafer_count() as f32 * rate).round() as usize;
        let differing = map
            .dies()
            .iter()
            .zip(noisy.dies())
            .filter(|(a, b)| a != b)
            .count();
        prop_assert_eq!(differing, expected, "flip count must match the requested rate exactly");
    }

    #[test]
    fn quantize_round_trip_preserves_arbitrary_masks(
        seed in any::<u64>(),
        grid in prop_oneof![Just(9usize), Just(12), Just(17)],
    ) {
        let map = irregular_map(grid, seed);
        // Round-trip through the continuous image representation, as
        // the auto-encoder pipeline does (decode -> quantize).
        let image = map.to_image();
        let back = ops::quantize(&image, &map).expect("matching grid");
        assert_same_mask(&map, &back, "quantize round-trip");
        prop_assert_eq!(&back, &map, "exact round-trip through image space");
    }
}
