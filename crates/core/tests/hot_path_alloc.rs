//! The zero-allocation contract of the training hot path.
//!
//! Every internal scratch buffer on the batch path (im2col columns,
//! conv gradient partials, GEMM pack panels, loss scratch) is sized
//! through `nn::workspace::reserve_f32`, which grows a buffer at most
//! once per high-water mark and counts each growth. After a warm-up
//! epoch has visited every shape, further training must not grow any
//! workspace buffer: the process-wide grow counter stays flat.
//!
//! This file holds a single test on purpose: the counter is
//! process-global, so a concurrently running test that warms its own
//! buffers would show up as a spurious delta.

use selective::{SelectiveConfig, SelectiveModel, TrainConfig, Trainer};
use wafermap::gen::{generate, GenConfig, Sample};
use wafermap::{Dataset, DefectClass};

fn dataset(per_class: usize, seed: u64) -> Dataset {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cfg = GenConfig::new(16);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(16);
    for _ in 0..per_class {
        for class in [DefectClass::NearFull, DefectClass::None, DefectClass::Center] {
            ds.push(Sample::original(generate(class, &cfg, &mut rng), class));
        }
    }
    ds
}

#[test]
fn steady_state_training_grows_no_workspace_buffers() {
    let config = SelectiveConfig::for_grid(16).with_conv_channels([4, 4, 4]).with_fc(16);
    let train = dataset(8, 1);
    let trainer = Trainer::new(TrainConfig {
        epochs: 4,
        batch_size: 8,
        learning_rate: 1e-3,
        target_coverage: 0.5,
        ..TrainConfig::default()
    });

    // Warm-up: epoch 0 visits every batch shape (incl. the ragged
    // final batch) and grows each workspace buffer to its high-water
    // mark.
    let mut model = SelectiveModel::new(&config, 7);
    let (_, bundle) = trainer.run_to_checkpoint(&mut model, &train, 1);

    let before = nn::workspace::grow_count();
    trainer.resume(&mut model, &train, &bundle).expect("resume from warm checkpoint");
    let after = nn::workspace::grow_count();
    assert_eq!(
        after - before,
        0,
        "steady-state training grew a hot-path scratch buffer {} time(s) after warmup",
        after - before
    );
}
