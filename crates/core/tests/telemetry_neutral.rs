//! Telemetry must be a pure observer: training with a registry
//! attached produces bit-identical weights and reports to training
//! without one, and the snapshot it fills is non-empty and renders in
//! both exposition formats.

use selective::{SelectiveConfig, SelectiveModel, TrainConfig, Trainer};
use telemetry::Registry;
use wafermap::gen::SyntheticWm811k;

#[test]
fn training_is_bit_identical_with_telemetry_attached() {
    let (train, _) = SyntheticWm811k::new(16).scale(0.002).seed(3).build();
    let config = SelectiveConfig::for_grid(16).with_conv_channels([4, 4, 4]).with_fc(16);
    let train_config = TrainConfig {
        epochs: 2,
        batch_size: 16,
        learning_rate: 3e-3,
        target_coverage: 0.75,
        seed: 5,
        ..TrainConfig::default()
    };

    let mut bare_model = SelectiveModel::new(&config, 5);
    let bare_report = Trainer::new(train_config).run(&mut bare_model, &train);

    let registry = Registry::new();
    let mut wired_model = SelectiveModel::new(&config, 5);
    let wired_report =
        Trainer::new(train_config).with_telemetry(registry.clone()).run(&mut wired_model, &train);

    // Identical training trajectory, to the last bit.
    assert_eq!(bare_report, wired_report, "telemetry changed the training report");
    let bare = bare_model.state_dict();
    let wired = wired_model.state_dict();
    let (bare, wired) = (bare.values(), wired.values());
    assert_eq!(bare.len(), wired.len());
    for (a, b) in bare.iter().zip(&wired) {
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.data(), b.data(), "telemetry changed the trained weights");
    }

    // ...while the registry observed the whole run.
    let snapshot = registry.snapshot();
    assert!(!snapshot.is_empty(), "training left no telemetry behind");
    let epochs = snapshot
        .counters
        .iter()
        .find(|c| c.name == "train_epochs_total")
        .expect("trainer registers an epoch counter");
    assert_eq!(epochs.value, 2);
    assert!(snapshot.histograms.iter().any(|h| h.name == "train_epoch_seconds"));

    // Both exposition formats round-trip.
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    let back: telemetry::Snapshot = serde_json::from_str(&json).expect("snapshot deserializes");
    assert_eq!(back, snapshot);
    let text = registry.prometheus();
    let parsed = telemetry::parse_exposition(&text).expect("valid Prometheus exposition");
    assert!(parsed.samples > 0, "exposition must carry samples");
}
