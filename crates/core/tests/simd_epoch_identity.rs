//! End-to-end bit-identity of the SIMD GEMM micro-kernels: a full
//! training run (forward, backward, Adam) must produce bit-identical
//! epoch statistics and final weights with SIMD on or forced off, at
//! any worker-pool width.
//!
//! The kernels vectorize across output columns only — each output
//! element's k-accumulation order is unchanged, and `_mm256_fmadd_ps`
//! is lane-wise the same operation as `f32::mul_add` — so this holds
//! exactly, not approximately (`nn/tests/simd_parity.rs` proves it
//! per-kernel; this test proves the composition).
//!
//! Single test in its own file: SIMD dispatch and the pool width are
//! process-global, so concurrent tests would race the toggles.

use nn::{pool, simd, Tensor};
use selective::{SelectiveConfig, SelectiveModel, TrainConfig, Trainer};
use wafermap::gen::{generate, GenConfig, Sample};
use wafermap::{Dataset, DefectClass};

fn dataset(per_class: usize, seed: u64) -> Dataset {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cfg = GenConfig::new(16);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(16);
    for _ in 0..per_class {
        for class in [DefectClass::Center, DefectClass::Donut, DefectClass::None] {
            ds.push(Sample::original(generate(class, &cfg, &mut rng), class));
        }
    }
    ds
}

/// Train a fresh model under the given dispatch/pool setting and
/// return (per-epoch stats, probe logits, probe selection scores).
fn train_fingerprint(
    force_scalar: bool,
    threads: usize,
    train: &Dataset,
) -> (selective::TrainReport, Vec<f32>, Vec<f32>) {
    simd::set_force_scalar(force_scalar);
    pool::set_thread_limit(threads);
    let config = SelectiveConfig::for_grid(16).with_conv_channels([4, 4, 4]).with_fc(16);
    let mut model = SelectiveModel::new(&config, 11);
    let report = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 8,
        learning_rate: 1e-3,
        target_coverage: 0.5,
        ..TrainConfig::default()
    })
    .run(&mut model, train);
    let probe = Tensor::full(&[3, 1, 16, 16], 0.5);
    let (logits, g) = model.forward(&probe);
    (report, logits.data().to_vec(), g)
}

#[test]
fn training_is_bit_identical_across_simd_dispatch_and_pool_width() {
    let train = dataset(8, 3);
    let (ref_report, ref_logits, ref_g) = train_fingerprint(false, 1, &train);
    for (force_scalar, threads) in [(true, 1), (false, 4), (true, 4)] {
        let (report, logits, g) = train_fingerprint(force_scalar, threads, &train);
        assert_eq!(
            report, ref_report,
            "epoch stats diverged at force_scalar={force_scalar}, threads={threads}"
        );
        assert_eq!(
            logits, ref_logits,
            "trained logits diverged at force_scalar={force_scalar}, threads={threads}"
        );
        assert_eq!(
            g, ref_g,
            "selection scores diverged at force_scalar={force_scalar}, threads={threads}"
        );
    }
    // Leave the process defaults in place for any later code.
    simd::set_force_scalar(false);
    pool::set_thread_limit(1);
}
