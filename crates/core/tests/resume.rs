//! Regression test for the broken persistence contract: a
//! checkpoint-then-resume run must be **bit-identical** to an
//! uninterrupted one. Before the Adam step counter was persisted,
//! the resumed run silently restarted bias correction at `t = 0`
//! and diverged.

use rand::rngs::StdRng;
use rand::SeedableRng;

use selective::{
    BundleError, CheckpointBundle, SelectiveConfig, SelectiveModel, TrainConfig, Trainer,
};
use wafermap::gen::{generate, GenConfig, Sample};
use wafermap::{Dataset, DefectClass};

fn tiny_config() -> SelectiveConfig {
    SelectiveConfig::for_grid(16).with_conv_channels([4, 4, 4]).with_fc(16)
}

fn small_dataset(per_class: usize, seed: u64) -> Dataset {
    let cfg = GenConfig::new(16);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(16);
    for _ in 0..per_class {
        for class in [DefectClass::NearFull, DefectClass::None, DefectClass::Center] {
            ds.push(Sample::original(generate(class, &cfg, &mut rng), class));
        }
    }
    ds
}

fn train_config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 8,
        learning_rate: 5e-3,
        target_coverage: 0.7,
        seed: 17,
        ..TrainConfig::default()
    }
}

#[test]
fn checkpoint_then_resume_is_bit_identical_to_straight_run() {
    let dataset = small_dataset(8, 21);
    let total_epochs = 6;
    let stop_at = 3;
    let cfg = train_config(total_epochs);

    // Straight run: all epochs in one go.
    let mut straight = SelectiveModel::new(&tiny_config(), 33);
    let straight_report = Trainer::new(cfg).run(&mut straight, &dataset);

    // Interrupted run: train to epoch `stop_at`, bundle through a
    // file (so serialization must also be bit-exact), resume into a
    // *fresh* model.
    let mut first_leg = SelectiveModel::new(&tiny_config(), 33);
    let (partial, bundle) = Trainer::new(cfg).run_to_checkpoint(&mut first_leg, &dataset, stop_at);
    assert_eq!(partial.epochs.len(), stop_at);
    assert_eq!(partial.epochs[..], straight_report.epochs[..stop_at]);

    let dir = std::env::temp_dir().join("core_resume_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("bundle.json");
    bundle.save(&path).expect("save");
    let loaded = CheckpointBundle::load(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded, bundle, "bundle JSON roundtrip must be exact");

    let mut resumed = SelectiveModel::new(&tiny_config(), 999); // different init: overwritten
    let resumed_report =
        Trainer::new(cfg).resume(&mut resumed, &dataset, &loaded).expect("valid bundle");

    // Bit-identical: same per-epoch stats and same final weights.
    assert_eq!(resumed_report, straight_report);
    assert_eq!(resumed.state_dict().values(), straight.state_dict().values());
}

#[test]
fn resume_without_step_counter_would_diverge() {
    // Non-vacuity check for the test above: resuming the same weights
    // with a *fresh* optimizer (the old, buggy behaviour — moments kept
    // via the state dict but `t` reset) produces different weights.
    let dataset = small_dataset(6, 5);
    let cfg = train_config(4);

    let mut straight = SelectiveModel::new(&tiny_config(), 7);
    let straight_report = Trainer::new(cfg).run(&mut straight, &dataset);

    let mut broken = SelectiveModel::new(&tiny_config(), 7);
    let (_, bundle) = Trainer::new(cfg).run_to_checkpoint(&mut broken, &dataset, 2);
    // Simulate the pre-fix path: re-run the *last two* epochs as a
    // fresh 2-epoch job from the checkpointed weights (t restarts at 0,
    // shuffle stream restarts from the seed).
    let mut model = bundle.build_model().expect("bundle fits");
    let tail_cfg = TrainConfig { epochs: 2, ..cfg };
    let _ = Trainer::new(tail_cfg).run(&mut model, &dataset);
    assert_ne!(
        model.state_dict().values(),
        straight.state_dict().values(),
        "stale-optimizer resume should diverge; the exactness test would be vacuous"
    );
    assert_eq!(straight_report.epochs.len(), 4);
}

#[test]
fn resume_validates_bundle_compatibility() {
    let dataset = small_dataset(4, 9);
    let cfg = train_config(3);
    let mut model = SelectiveModel::new(&tiny_config(), 1);
    let (_, bundle) = Trainer::new(cfg).run_to_checkpoint(&mut model, &dataset, 1);

    // Mismatched training config is refused.
    let other = TrainConfig { learning_rate: 1e-4, ..cfg };
    let mut fresh = SelectiveModel::new(&tiny_config(), 2);
    assert!(matches!(
        Trainer::new(other).resume(&mut fresh, &dataset, &bundle),
        Err(BundleError::ConfigMismatch { .. })
    ));

    // Mismatched model architecture is refused.
    let wide = tiny_config().with_fc(32);
    let mut wrong_arch = SelectiveModel::new(&wide, 3);
    assert!(matches!(
        Trainer::new(cfg).resume(&mut wrong_arch, &dataset, &bundle),
        Err(BundleError::ModelMismatch { .. })
    ));

    // An inference-only export cannot resume training.
    let export = CheckpointBundle::export(&mut model);
    let mut fresh2 = SelectiveModel::new(&tiny_config(), 4);
    assert!(matches!(
        Trainer::new(cfg).resume(&mut fresh2, &dataset, &export),
        Err(BundleError::MissingProgress)
    ));
}
