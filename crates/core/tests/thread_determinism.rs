//! End-to-end training must be bit-identical regardless of the worker
//! pool size: `WM_NUM_THREADS=1` and the default limit have to produce
//! the same weights to the last bit (DESIGN.md, "Threading model &
//! determinism"). `set_thread_limit` stands in for the environment
//! variable, which the pool reads only once per process.

use nn::pool;
use selective::{SelectiveConfig, SelectiveModel, TrainConfig, Trainer};
use wafermap::gen::SyntheticWm811k;

#[test]
fn training_is_bit_identical_across_thread_limits() {
    let (train, _) = SyntheticWm811k::new(16).scale(0.002).seed(7).build();
    let config = SelectiveConfig::for_grid(16);
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 16,
        learning_rate: 3e-3,
        target_coverage: 0.75,
        lambda: 0.5,
        alpha: 0.5,
        seed: 7,
    });
    let run = |limit: usize| {
        pool::set_thread_limit(limit);
        let mut model = SelectiveModel::new(&config, 7);
        let report = trainer.run(&mut model, &train);
        (model.state_dict(), report)
    };
    let (serial, _) = run(1);
    let (pooled, _) = run(pool::default_thread_limit().max(4));
    pool::set_thread_limit(pool::default_thread_limit());

    let serial = serial.values();
    let pooled = pooled.values();
    assert_eq!(serial.len(), pooled.len());
    for (a, b) in serial.iter().zip(&pooled) {
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.data(), b.data(), "weights diverged across thread limits");
    }
}
