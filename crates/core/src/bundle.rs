//! Train-to-serve checkpoint bundles.
//!
//! A [`CheckpointBundle`] is the single on-disk artifact connecting
//! training to serving: it pairs the low-level [`nn::serialize::Checkpoint`]
//! (parameter state dict + Adam optimizer state) with the model
//! architecture ([`SelectiveConfig`]) and, when produced mid-training,
//! a [`TrainProgress`] record that lets [`crate::Trainer::resume`]
//! continue **bit-identically** to an uninterrupted run.
//!
//! # Exact-resume guarantee
//!
//! Resuming from a bundle written by [`crate::Trainer::run_to_checkpoint`]
//! with the same [`TrainConfig`] and dataset reproduces the exact
//! weights and [`crate::TrainReport`] of a straight run, because the
//! bundle carries everything the trainer consumes:
//!
//! - parameter values, gradients, and per-parameter Adam moments
//!   (the state dict),
//! - the Adam step counter `t` driving bias correction, plus the
//!   optimizer hyper-parameters for validation ([`AdamState`]),
//! - the training config and the number of completed epochs, from
//!   which the resume replays the epoch shuffles to fast-forward the
//!   data-ordering RNG to the same state.

use std::fmt;
use std::path::{Path, PathBuf};

use nn::optim::{AdamState, StateError};
use nn::serialize::{Checkpoint, LoadError, RestoreError, StateDict};
use serde::{Deserialize, Serialize};

use crate::{EpochStats, SelectiveConfig, SelectiveModel, TrainConfig};

/// Current on-disk format version written by [`CheckpointBundle::save`].
///
/// Version history:
/// - **1** — initial format: model architecture + versioned parameter /
///   optimizer checkpoint + optional training progress.
pub const BUNDLE_FORMAT_VERSION: u32 = 1;

/// How far a training run had progressed when its bundle was written.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainProgress {
    /// The configuration the run was started with. A resume must use
    /// an equal config or the replayed schedule would diverge.
    pub config: TrainConfig,
    /// First epoch the resumed run must execute (epochs `0..next_epoch`
    /// are already folded into the bundled parameters).
    pub next_epoch: usize,
    /// Per-epoch statistics of the completed epochs, in order.
    pub epochs: Vec<EpochStats>,
}

/// Versioned artifact bundling everything needed to rebuild a
/// [`SelectiveModel`] — and, when training progress is attached, to
/// resume training exactly.
///
/// See the [module docs](self) for the exact-resume guarantee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointBundle {
    format_version: u32,
    model: SelectiveConfig,
    checkpoint: Checkpoint,
    progress: Option<TrainProgress>,
}

impl CheckpointBundle {
    /// Snapshot `model` for inference-only use (no optimizer state, no
    /// training progress) — e.g. a final export for the serving layer.
    #[must_use]
    pub fn export(model: &mut SelectiveModel) -> Self {
        CheckpointBundle {
            format_version: BUNDLE_FORMAT_VERSION,
            model: *model.config(),
            checkpoint: Checkpoint::new(model.state_dict()),
            progress: None,
        }
    }

    /// Snapshot `model` mid-training with its optimizer state and
    /// progress, so the run can later be resumed exactly.
    #[must_use]
    pub fn capture(
        model: &mut SelectiveModel,
        optimizer: AdamState,
        progress: TrainProgress,
    ) -> Self {
        CheckpointBundle {
            format_version: BUNDLE_FORMAT_VERSION,
            model: *model.config(),
            checkpoint: Checkpoint::new(model.state_dict()).with_optimizer(optimizer),
            progress: Some(progress),
        }
    }

    /// Format version this bundle was written with.
    #[must_use]
    pub fn format_version(&self) -> u32 {
        self.format_version
    }

    /// Architecture of the bundled model.
    #[must_use]
    pub fn model_config(&self) -> &SelectiveConfig {
        &self.model
    }

    /// The low-level parameter/optimizer checkpoint.
    #[must_use]
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.checkpoint
    }

    /// The bundled parameter snapshot.
    #[must_use]
    pub fn params(&self) -> &StateDict {
        self.checkpoint.params()
    }

    /// Training progress, if the bundle was captured mid-training.
    #[must_use]
    pub fn progress(&self) -> Option<&TrainProgress> {
        self.progress.as_ref()
    }

    /// Rebuild the bundled model: construct the architecture from the
    /// stored config and restore every parameter.
    ///
    /// # Errors
    ///
    /// Returns [`BundleError::Restore`] if the state dict does not
    /// match the stored architecture (a corrupted bundle).
    pub fn build_model(&self) -> Result<SelectiveModel, BundleError> {
        let mut model = SelectiveModel::new(&self.model, 0);
        model.load_state_dict(self.checkpoint.params()).map_err(BundleError::Restore)?;
        Ok(model)
    }

    /// Serialize to a checksummed v2 container file, written
    /// atomically (temp file + fsync + rename) via
    /// [`nn::serialize::atomic_write`] — a crash mid-save leaves the
    /// previous bundle intact, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and serialization errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), std::io::Error> {
        nn::serialize::save_json_container(path, self)
    }

    /// Deserialize from a file written by [`CheckpointBundle::save`] —
    /// either a checksummed v2 container or a bare v1 JSON file —
    /// rejecting unknown format versions.
    ///
    /// # Errors
    ///
    /// Returns the typed [`LoadError`] classifying any truncation,
    /// checksum mismatch, version skew (container or bundle), or
    /// parse failure — garbage on disk is never misparsed into a
    /// bundle and never a panic.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, LoadError> {
        let (bundle, _version): (CheckpointBundle, u32) = nn::serialize::load_json_container(path)?;
        if bundle.format_version != BUNDLE_FORMAT_VERSION {
            return Err(LoadError::UnsupportedVersion {
                found: bundle.format_version,
                supported: BUNDLE_FORMAT_VERSION,
            });
        }
        Ok(bundle)
    }

    /// Load the newest intact bundle from a primary path and an
    /// ordered chain of fallbacks (newest first — typically the
    /// previous checkpoint generations of the same run).
    ///
    /// Each candidate is tried with [`CheckpointBundle::load`]; the
    /// first one that loads wins. Every failure along the way is
    /// collected into the result, so the caller can log *why* the
    /// primary was skipped (truncated? checksum? missing?) instead of
    /// silently serving stale weights.
    ///
    /// # Errors
    ///
    /// Returns [`FallbackExhausted`] — carrying the per-path
    /// [`LoadError`]s — when no candidate loads.
    pub fn load_with_fallback<P: AsRef<Path>, Q: AsRef<Path>>(
        primary: P,
        fallbacks: &[Q],
    ) -> Result<FallbackLoad, FallbackExhausted> {
        let mut failures: Vec<(PathBuf, LoadError)> = Vec::new();
        let candidates = std::iter::once(primary.as_ref().to_path_buf())
            .chain(fallbacks.iter().map(|p| p.as_ref().to_path_buf()));
        for (index, path) in candidates.enumerate() {
            match CheckpointBundle::load(&path) {
                Ok(bundle) => {
                    return Ok(FallbackLoad { bundle, source: path, source_index: index, failures })
                }
                Err(e) => failures.push((path, e)),
            }
        }
        Err(FallbackExhausted { failures })
    }
}

/// Successful [`CheckpointBundle::load_with_fallback`]: the bundle,
/// where it came from, and what failed before it.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackLoad {
    /// The newest intact bundle found.
    pub bundle: CheckpointBundle,
    /// Path the bundle was loaded from.
    pub source: PathBuf,
    /// Position in the candidate chain: `0` is the primary, `1` the
    /// first fallback, and so on. Non-zero means degraded recovery —
    /// the served weights are older than intended.
    pub source_index: usize,
    /// Candidates that failed before `source`, with the typed reason
    /// each was rejected.
    pub failures: Vec<(PathBuf, LoadError)>,
}

impl FallbackLoad {
    /// Whether the primary itself loaded (no fallback was needed).
    #[must_use]
    pub fn is_primary(&self) -> bool {
        self.source_index == 0
    }
}

/// [`CheckpointBundle::load_with_fallback`] found no intact candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackExhausted {
    /// Every candidate path with the typed reason it was rejected,
    /// in the order tried (primary first).
    pub failures: Vec<(PathBuf, LoadError)>,
}

impl fmt::Display for FallbackExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no intact checkpoint bundle among {} candidate(s):", self.failures.len())?;
        for (path, err) in &self.failures {
            write!(f, " [{}: {err}]", path.display())?;
        }
        Ok(())
    }
}

impl std::error::Error for FallbackExhausted {}

/// Error consuming a [`CheckpointBundle`].
#[derive(Debug, Clone, PartialEq)]
pub enum BundleError {
    /// The bundle's state dict does not fit the target architecture.
    Restore(RestoreError),
    /// The bundled optimizer hyper-parameters are invalid.
    Optimizer(StateError),
    /// The bundle carries no optimizer state (inference-only export),
    /// so training cannot resume from it.
    MissingOptimizer,
    /// The bundle carries no training progress (inference-only export).
    MissingProgress,
    /// The resuming trainer's configuration differs from the one the
    /// bundle was trained with, so the replayed schedule would diverge.
    ConfigMismatch {
        /// Config stored in the bundle.
        bundle: Box<TrainConfig>,
        /// Config of the resuming trainer.
        trainer: Box<TrainConfig>,
    },
    /// The target model's architecture differs from the bundled one.
    ModelMismatch {
        /// Architecture stored in the bundle.
        bundle: Box<SelectiveConfig>,
        /// Architecture of the target model.
        model: Box<SelectiveConfig>,
    },
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Restore(e) => write!(f, "bundle does not fit model: {e}"),
            BundleError::Optimizer(e) => write!(f, "invalid bundled optimizer state: {e}"),
            BundleError::MissingOptimizer => {
                write!(f, "bundle has no optimizer state; cannot resume training")
            }
            BundleError::MissingProgress => {
                write!(f, "bundle has no training progress; cannot resume training")
            }
            BundleError::ConfigMismatch { bundle, trainer } => {
                write!(f, "training config mismatch: bundle {bundle:?} vs trainer {trainer:?}")
            }
            BundleError::ModelMismatch { bundle, model } => {
                write!(f, "model architecture mismatch: bundle {bundle:?} vs model {model:?}")
            }
        }
    }
}

impl std::error::Error for BundleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BundleError::Restore(e) => Some(e),
            BundleError::Optimizer(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model(seed: u64) -> SelectiveModel {
        let config = SelectiveConfig::for_grid(16).with_conv_channels([4, 4, 4]).with_fc(16);
        SelectiveModel::new(&config, seed)
    }

    #[test]
    fn export_roundtrips_model_parameters() {
        let mut model = tiny_model(11);
        let bundle = CheckpointBundle::export(&mut model);
        assert_eq!(bundle.format_version(), BUNDLE_FORMAT_VERSION);
        assert!(bundle.progress().is_none());
        assert!(bundle.checkpoint().optimizer().is_none());
        let mut rebuilt = bundle.build_model().expect("architecture matches");
        assert_eq!(rebuilt.state_dict(), model.state_dict());
    }

    #[test]
    fn file_roundtrip_is_exact() {
        let mut model = tiny_model(12);
        let bundle = CheckpointBundle::export(&mut model);
        let dir = std::env::temp_dir().join("core_bundle_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("bundle.json");
        bundle.save(&path).expect("save");
        let loaded = CheckpointBundle::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded, bundle);
    }

    #[test]
    fn load_rejects_future_format_version() {
        let mut model = tiny_model(13);
        let mut bundle = CheckpointBundle::export(&mut model);
        bundle.format_version = BUNDLE_FORMAT_VERSION + 7;
        let dir = std::env::temp_dir().join("core_bundle_version_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("future.json");
        bundle.save(&path).expect("save");
        let err = CheckpointBundle::load(&path).expect_err("future version must be rejected");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, LoadError::UnsupportedVersion { supported, .. }
            if supported == BUNDLE_FORMAT_VERSION));
    }

    #[test]
    fn legacy_v1_json_bundle_still_loads() {
        let mut model = tiny_model(15);
        let bundle = CheckpointBundle::export(&mut model);
        let dir = std::env::temp_dir().join("core_bundle_v1_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("legacy.json");
        // The pre-container on-disk format: bare JSON, no header.
        std::fs::write(&path, serde_json::to_string(&bundle).expect("serialize")).expect("write");
        let loaded = CheckpointBundle::load(&path).expect("v1 bundle must still load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded, bundle);
    }

    #[test]
    fn load_with_fallback_steps_back_to_newest_intact_generation() {
        let mut model = tiny_model(16);
        let bundle = CheckpointBundle::export(&mut model);
        let dir = std::env::temp_dir().join("core_bundle_fallback_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let gen2 = dir.join("gen2.ckpt");
        let gen1 = dir.join("gen1.ckpt");
        let gen0 = dir.join("gen0.ckpt");
        bundle.save(&gen2).expect("save gen2");
        bundle.save(&gen1).expect("save gen1");
        bundle.save(&gen0).expect("save gen0");

        // Intact primary: no fallback consulted.
        let hit = CheckpointBundle::load_with_fallback(&gen2, &[gen1.clone(), gen0.clone()])
            .expect("primary intact");
        assert!(hit.is_primary());
        assert!(hit.failures.is_empty());
        assert_eq!(hit.bundle, bundle);

        // Corrupt the newest two generations: recovery lands on gen0
        // and reports why the others were skipped.
        let len = std::fs::metadata(&gen2).expect("meta").len();
        let intact = std::fs::read(&gen2).expect("read");
        std::fs::write(&gen2, &intact[..len as usize / 2]).expect("truncate gen2");
        let mut flipped = intact.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        std::fs::write(&gen1, &flipped).expect("corrupt gen1");

        let recovered = CheckpointBundle::load_with_fallback(&gen2, &[gen1.clone(), gen0.clone()])
            .expect("gen0 intact");
        assert_eq!(recovered.source_index, 2);
        assert_eq!(recovered.source, gen0);
        assert_eq!(recovered.bundle, bundle);
        assert_eq!(recovered.failures.len(), 2);
        assert!(matches!(recovered.failures[0].1, LoadError::Truncated { .. }));
        assert!(matches!(recovered.failures[1].1, LoadError::ChecksumMismatch { .. }));

        // No intact candidate: typed exhaustion, not a panic.
        std::fs::remove_file(&gen0).expect("remove gen0");
        let err = CheckpointBundle::load_with_fallback(&gen2, &[gen1.clone(), gen0.clone()])
            .expect_err("all candidates corrupt or missing");
        assert_eq!(err.failures.len(), 3);
        assert!(matches!(err.failures[2].1, LoadError::Io { .. }));
        let _ = std::fs::remove_file(&gen2);
        let _ = std::fs::remove_file(&gen1);
    }

    #[test]
    fn build_model_rejects_corrupted_architecture() {
        let mut model = tiny_model(14);
        let mut bundle = CheckpointBundle::export(&mut model);
        // Claim a wider FC layer than the captured parameters have.
        bundle.model.fc = 32;
        assert!(matches!(bundle.build_model(), Err(BundleError::Restore(_))));
    }
}
