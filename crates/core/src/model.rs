use nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu, Sigmoid};
use nn::optim::Adam;
use nn::serialize::{RestoreError, StateDict};
use nn::{Layer, Sequential, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{SelectiveConfig, SelectivePrediction};
use eval::{SelectiveMetrics, SelectiveOutcome};
use wafermap::Dataset;

std::thread_local! {
    /// Per-worker staging tensor for the inference path: grown once
    /// per thread to the largest block it has staged, then refilled in
    /// place for every block (the workspace memory model — see
    /// `nn::workspace`).
    static SAMPLE_STAGE: std::cell::RefCell<Tensor> = std::cell::RefCell::new(Tensor::default());
}

/// Wafers per inference block: each worker runs one batched forward
/// over a block this size (ragged tail allowed). 4 amortizes GEMM
/// packing and per-call overhead while keeping a block's activation
/// working set small enough (~100 KB at grid 32) that concurrent
/// blocks don't thrash a shared cache — larger blocks measured slower
/// on narrow hosts for exactly that reason. Block boundaries never
/// change results — only where the batch dimension is cut.
const INFER_BLOCK: usize = 4;

/// The paper's two-head selective CNN (Fig. 2).
///
/// A shared trunk (Table I) produces a feature vector; the prediction
/// head `f` maps it to class logits and the selection head `g` — one
/// sigmoid neuron — to a selection score in `(0, 1)`. At inference the
/// model predicts `argmax f(x)` when `g(x) ≥ τ` and abstains
/// otherwise.
///
/// See the crate-level docs for a full training example.
#[derive(Debug)]
pub struct SelectiveModel {
    config: SelectiveConfig,
    trunk: Sequential,
    head_f: Linear,
    head_g: Sequential,
    head_aux: Option<Linear>,
}

impl SelectiveModel {
    /// Build a freshly initialized model from a config and RNG seed.
    #[must_use]
    pub fn new(config: &SelectiveConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let [c1, c2, c3] = config.conv_channels;
        let [k1, k2, k3] = config.kernels;
        let trunk = Sequential::new()
            .with(Conv2d::same(1, c1, k1, &mut rng))
            .with(Relu::new())
            .with(MaxPool2d::new(2))
            .with(Conv2d::same(c1, c2, k2, &mut rng))
            .with(Relu::new())
            .with(MaxPool2d::new(2))
            .with(Conv2d::same(c2, c3, k3, &mut rng))
            .with(Relu::new())
            .with(MaxPool2d::new(2))
            .with(Flatten::new())
            .with(Linear::new(config.flat_features(), config.fc, &mut rng))
            .with(Relu::new());
        let head_f = Linear::new(config.fc, config.n_classes, &mut rng);
        let head_g =
            Sequential::new().with(Linear::new(config.fc, 1, &mut rng)).with(Sigmoid::new());
        let head_aux = config.aux_head.then(|| Linear::new(config.fc, config.n_classes, &mut rng));
        SelectiveModel { config: *config, trunk, head_f, head_g, head_aux }
    }

    /// The architecture configuration.
    #[must_use]
    pub fn config(&self) -> &SelectiveConfig {
        &self.config
    }

    /// Total trainable parameter count (trunk + all heads).
    #[must_use]
    pub fn param_count(&mut self) -> usize {
        self.trunk.param_count()
            + self.head_f.param_count()
            + self.head_g.param_count()
            + self.head_aux.as_mut().map_or(0, Layer::param_count)
    }

    /// Whether the model carries the SelectiveNet-style auxiliary
    /// head.
    #[must_use]
    pub fn has_aux_head(&self) -> bool {
        self.head_aux.is_some()
    }

    /// Forward pass for a `[N, 1, grid, grid]` batch.
    ///
    /// Returns `(logits [N, n_classes], selection scores [N])`.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the configuration.
    pub fn forward(&mut self, images: &Tensor) -> (Tensor, Vec<f32>) {
        let (logits, g, _) = self.forward_full(images);
        (logits, g)
    }

    /// Forward pass returning the auxiliary head's logits as well
    /// (`None` unless the model was configured with
    /// [`SelectiveConfig::with_aux_head`]).
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the configuration.
    pub fn forward_full(&mut self, images: &Tensor) -> (Tensor, Vec<f32>, Option<Tensor>) {
        let shape = images.shape();
        assert_eq!(
            shape,
            &[shape[0], 1, self.config.grid, self.config.grid],
            "expected [N, 1, {g}, {g}] input",
            g = self.config.grid
        );
        let features = self.trunk.forward(images);
        let logits = self.head_f.forward(&features);
        let g = self.head_g.forward(&features);
        let aux = self.head_aux.as_mut().map(|h| h.forward(&features));
        (logits, g.into_data(), aux)
    }

    /// Backward pass given gradients for both heads.
    ///
    /// `grad_g` must have one entry per sample (gradient w.r.t. the
    /// post-sigmoid selection score).
    ///
    /// # Panics
    ///
    /// Panics if called before [`SelectiveModel::forward`] or with
    /// mismatched shapes.
    pub fn backward(&mut self, grad_logits: &Tensor, grad_g: &[f32]) {
        self.backward_full(grad_logits, grad_g, None);
    }

    /// Backward pass including an optional gradient for the auxiliary
    /// head's logits.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`, with mismatched shapes, or
    /// with `grad_aux` on a model without an auxiliary head.
    pub fn backward_full(
        &mut self,
        grad_logits: &Tensor,
        grad_g: &[f32],
        grad_aux: Option<&Tensor>,
    ) {
        let n = grad_logits.shape()[0];
        assert_eq!(grad_g.len(), n, "grad_g length mismatch");
        let grad_feat_f = self.head_f.backward(grad_logits);
        let grad_g_tensor = Tensor::from_vec(grad_g.to_vec(), &[n, 1]);
        let grad_feat_g = self.head_g.backward(&grad_g_tensor);
        let mut grad_features = grad_feat_f.add(&grad_feat_g);
        if let Some(grad_aux) = grad_aux {
            let head =
                self.head_aux.as_mut().expect("grad_aux supplied but model has no auxiliary head");
            grad_features = grad_features.add(&head.backward(grad_aux));
        }
        let _ = self.trunk.backward(&grad_features);
    }

    /// Zero all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.trunk.zero_grad();
        self.head_f.zero_grad();
        self.head_g.zero_grad();
        if let Some(aux) = &mut self.head_aux {
            aux.zero_grad();
        }
    }

    /// Apply one optimizer step over all parameters.
    pub fn step(&mut self, adam: &mut Adam) {
        match &mut self.head_aux {
            Some(aux) => {
                adam.step_multi(&mut [&mut self.trunk, &mut self.head_f, &mut self.head_g, aux])
            }
            None => {
                adam.step_multi(&mut [&mut self.trunk, &mut self.head_f, &mut self.head_g]);
            }
        }
    }

    /// Classify a batch of wafer-map images with the reject option.
    ///
    /// `threshold` is the selection cut-off τ: the model predicts when
    /// `g(x) ≥ τ` (τ = 0.5 reproduces the paper; see
    /// [`crate::calibrate_threshold`] for coverage-targeted τ).
    pub fn predict(&mut self, images: &Tensor, threshold: f32) -> Vec<SelectivePrediction> {
        let (logits, g) = self.forward(images);
        let probs = nn::loss::softmax(&logits);
        let c = self.config.n_classes;
        g.iter()
            .enumerate()
            .map(|(i, &score)| {
                let row = &probs.data()[i * c..(i + 1) * c];
                SelectivePrediction {
                    label: nn::loss::argmax(row),
                    confidence: row.iter().fold(0.0f32, |m, &v| m.max(v)),
                    selection_score: score,
                    selected: score >= threshold,
                }
            })
            .collect()
    }

    /// Inference-only batch classification — the serving path.
    ///
    /// Bit-identical to [`SelectiveModel::predict`] but runs through
    /// `&self` on the no-grad [`Layer::infer`] path: no activation
    /// caches are written and samples are processed **block-major** —
    /// the batch splits into fixed [`INFER_BLOCK`]-wafer blocks, each
    /// block runs the whole network as one batched forward on its
    /// worker. Blocked forwards amortize GEMM packing and per-call
    /// overhead (one `m = 4` fc GEMM instead of four `m = 1` ones), so
    /// micro-batching pays even on a single core, while the per-block
    /// fan-out still scales across the pool.
    /// Results are independent of block boundaries and pool size: the
    /// kernels accumulate every output element in a fixed contraction
    /// order regardless of the batch dimension.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the configuration.
    #[must_use]
    pub fn infer_predict(&self, images: &Tensor, threshold: f32) -> Vec<SelectivePrediction> {
        self.infer_predict_timed(images, threshold).0
    }

    /// [`SelectiveModel::infer_predict`] plus per-wafer **compute**
    /// seconds: entry `i` of the second vector is the amortized model
    /// cost of sample `i` — its compute block's wall clock divided by
    /// the block size — excluding any wait for pool scheduling or for
    /// the rest of the micro-batch. The serving layer reports these
    /// alongside full queue+compute completion latencies.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the configuration.
    #[must_use]
    pub fn infer_predict_timed(
        &self,
        images: &Tensor,
        threshold: f32,
    ) -> (Vec<SelectivePrediction>, Vec<f64>) {
        let shape = images.shape();
        assert_eq!(
            shape,
            &[shape[0], 1, self.config.grid, self.config.grid],
            "expected [N, 1, {g}, {g}] input",
            g = self.config.grid
        );
        let n = shape[0];
        let pixels = self.config.grid * self.config.grid;
        let c = self.config.n_classes;
        let data = images.data();
        let blocks = nn::pool::parallel_map(n.div_ceil(INFER_BLOCK), |b| {
            let lo = b * INFER_BLOCK;
            let hi = ((b + 1) * INFER_BLOCK).min(n);
            let start = std::time::Instant::now();
            let preds = SAMPLE_STAGE.with(|cell| {
                let mut block = cell.borrow_mut();
                block.resize(&[hi - lo, 1, self.config.grid, self.config.grid]);
                block.data_mut().copy_from_slice(&data[lo * pixels..hi * pixels]);
                let features = self.trunk.infer(&block);
                let logits = self.head_f.infer(&features);
                let scores = self.head_g.infer(&features);
                let probs = nn::loss::softmax(&logits);
                (0..hi - lo)
                    .map(|j| {
                        let row = &probs.data()[j * c..(j + 1) * c];
                        let score = scores.data()[j];
                        SelectivePrediction {
                            label: nn::loss::argmax(row),
                            confidence: row.iter().fold(0.0f32, |m, &v| m.max(v)),
                            selection_score: score,
                            selected: score >= threshold,
                        }
                    })
                    .collect::<Vec<_>>()
            });
            let per_wafer_secs = start.elapsed().as_secs_f64() / (hi - lo) as f64;
            (preds, per_wafer_secs)
        });
        let mut preds = Vec::with_capacity(n);
        let mut secs = Vec::with_capacity(n);
        for (block_preds, per_wafer) in blocks {
            secs.resize(secs.len() + block_preds.len(), per_wafer);
            preds.extend(block_preds);
        }
        (preds, secs)
    }

    /// Selection scores `g(x)` for every sample of a dataset via the
    /// inference-only path (bit-identical to
    /// [`SelectiveModel::selection_scores`]); used by the serving
    /// engine to calibrate τ without mutable access to the model.
    ///
    /// # Panics
    ///
    /// Panics if the dataset grid does not match the model's.
    #[must_use]
    pub fn infer_selection_scores(&self, dataset: &Dataset) -> Vec<f32> {
        assert_eq!(dataset.grid(), self.config.grid, "dataset grid mismatch");
        let samples = dataset.samples();
        nn::pool::parallel_map(samples.len(), |i| {
            SAMPLE_STAGE.with(|cell| {
                let mut image = cell.borrow_mut();
                image.resize(&[1, 1, self.config.grid, self.config.grid]);
                samples[i].map.write_image_into(image.data_mut());
                let features = self.trunk.infer(&image);
                self.head_g.infer(&features).data()[0]
            })
        })
    }

    /// Evaluate on a labeled dataset, producing selective metrics
    /// (coverage, selective accuracy, per-class coverage — the
    /// quantities of Table II).
    ///
    /// Runs in mini-batches of 64 to bound memory.
    ///
    /// # Panics
    ///
    /// Panics if the dataset grid does not match the model's.
    #[must_use]
    pub fn evaluate(&mut self, dataset: &Dataset, threshold: f32) -> SelectiveMetrics {
        assert_eq!(dataset.grid(), self.config.grid, "dataset grid mismatch");
        let mut metrics = SelectiveMetrics::new(self.config.n_classes);
        let pixels = self.config.grid * self.config.grid;
        let samples = dataset.samples();
        for chunk in samples.chunks(64) {
            let mut data = Vec::with_capacity(chunk.len() * pixels);
            for s in chunk {
                data.extend(s.map.to_image());
            }
            let images =
                Tensor::from_vec(data, &[chunk.len(), 1, self.config.grid, self.config.grid]);
            let preds = self.predict(&images, threshold);
            for (s, p) in chunk.iter().zip(preds) {
                let outcome = if p.selected {
                    SelectiveOutcome::Predicted(p.label)
                } else {
                    SelectiveOutcome::Abstained
                };
                metrics.record(s.label.index(), outcome);
            }
        }
        metrics
    }

    /// Selection scores `g(x)` for every sample of a dataset (used for
    /// threshold calibration).
    ///
    /// # Panics
    ///
    /// Panics if the dataset grid does not match the model's.
    #[must_use]
    pub fn selection_scores(&mut self, dataset: &Dataset) -> Vec<f32> {
        assert_eq!(dataset.grid(), self.config.grid, "dataset grid mismatch");
        let pixels = self.config.grid * self.config.grid;
        let mut scores = Vec::with_capacity(dataset.len());
        for chunk in dataset.samples().chunks(64) {
            let mut data = Vec::with_capacity(chunk.len() * pixels);
            for s in chunk {
                data.extend(s.map.to_image());
            }
            let images =
                Tensor::from_vec(data, &[chunk.len(), 1, self.config.grid, self.config.grid]);
            let (_, g) = self.forward(&images);
            scores.extend(g);
        }
        scores
    }

    /// Snapshot all parameters (including optimizer moments).
    #[must_use]
    pub fn state_dict(&mut self) -> StateDict {
        StateDict::capture(&mut ParamChain(self))
    }

    /// Restore parameters from a snapshot taken with
    /// [`SelectiveModel::state_dict`] on an identically configured
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] if the snapshot does not match this
    /// architecture.
    pub fn load_state_dict(&mut self, state: &StateDict) -> Result<(), RestoreError> {
        state.restore(&mut ParamChain(self))
    }
}

/// Adapter exposing the model's three (or four) parameter sub-trees
/// as one [`Layer`] for capture/restore in a stable order.
struct ParamChain<'a>(&'a mut SelectiveModel);

impl std::fmt::Debug for ParamChain<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ParamChain")
    }
}

impl Layer for ParamChain<'_> {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        input.clone()
    }
    fn backward(&mut self, grad: &Tensor) -> Tensor {
        grad.clone()
    }
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut nn::Param)) {
        self.0.trunk.visit_params(visitor);
        self.0.head_f.visit_params(visitor);
        self.0.head_g.visit_params(visitor);
        if let Some(aux) = &mut self.0.head_aux {
            aux.visit_params(visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SelectiveConfig {
        SelectiveConfig::for_grid(16).with_conv_channels([4, 4, 4]).with_fc(16)
    }

    #[test]
    fn infer_predict_matches_training_predict_bitwise() {
        let mut model = SelectiveModel::new(&tiny_config(), 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let images = Tensor::randn(&[7, 1, 16, 16], 1.0, &mut rng);
        let trained = model.predict(&images, 0.5);
        let served = model.infer_predict(&images, 0.5);
        assert_eq!(trained.len(), served.len());
        for (i, (a, b)) in trained.iter().zip(&served).enumerate() {
            assert_eq!(a.label, b.label, "label diverged at sample {i}");
            assert_eq!(a.confidence, b.confidence, "confidence diverged at sample {i}");
            assert_eq!(
                a.selection_score, b.selection_score,
                "selection score diverged at sample {i}"
            );
            assert_eq!(a.selected, b.selected, "selection diverged at sample {i}");
        }
    }

    #[test]
    fn forward_shapes() {
        let mut model = SelectiveModel::new(&tiny_config(), 0);
        let x = Tensor::zeros(&[3, 1, 16, 16]);
        let (logits, g) = model.forward(&x);
        assert_eq!(logits.shape(), &[3, 9]);
        assert_eq!(g.len(), 3);
        assert!(g.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn paper_architecture_parameter_count() {
        // Table I on a 32x32 grid:
        // conv1: 64·(1·5·5)+64, conv2: 32·(64·3·3)+32, conv3: 32·(32·3·3)+32
        // fc: 256·(32·4·4)+256, f: 9·256+9, g: 1·256+1
        let mut model = SelectiveModel::new(&SelectiveConfig::for_grid(32), 0);
        let expect = (64 * 25 + 64)
            + (32 * 64 * 9 + 32)
            + (32 * 32 * 9 + 32)
            + (256 * 512 + 256)
            + (9 * 256 + 9)
            + (256 + 1);
        assert_eq!(model.param_count(), expect);
    }

    #[test]
    fn deterministic_initialization() {
        let cfg = tiny_config();
        let mut a = SelectiveModel::new(&cfg, 7);
        let mut b = SelectiveModel::new(&cfg, 7);
        let x = Tensor::full(&[1, 1, 16, 16], 0.5);
        let (la, ga) = a.forward(&x);
        let (lb, gb) = b.forward(&x);
        assert_eq!(la.data(), lb.data());
        assert_eq!(ga, gb);
    }

    #[test]
    fn predict_threshold_controls_selection() {
        let mut model = SelectiveModel::new(&tiny_config(), 1);
        let x = Tensor::full(&[2, 1, 16, 16], 0.5);
        let all = model.predict(&x, 0.0);
        assert!(all.iter().all(|p| p.selected));
        let none = model.predict(&x, 1.1);
        assert!(none.iter().all(|p| !p.selected));
    }

    #[test]
    fn state_dict_roundtrip_preserves_outputs() {
        let cfg = tiny_config();
        let mut a = SelectiveModel::new(&cfg, 2);
        let snap = a.state_dict();
        let mut b = SelectiveModel::new(&cfg, 99);
        b.load_state_dict(&snap).expect("same architecture");
        let x = Tensor::full(&[1, 1, 16, 16], 0.7);
        let (la, ga) = a.forward(&x);
        let (lb, gb) = b.forward(&x);
        assert_eq!(la.data(), lb.data());
        assert_eq!(ga, gb);
    }

    #[test]
    fn load_rejects_mismatched_architecture() {
        let mut a = SelectiveModel::new(&tiny_config(), 3);
        let snap = a.state_dict();
        let mut b = SelectiveModel::new(&tiny_config().with_fc(8), 3);
        assert!(b.load_state_dict(&snap).is_err());
    }

    #[test]
    fn aux_head_changes_param_count_and_forward_shape() {
        let base = tiny_config();
        let with_aux = base.with_aux_head();
        let mut plain = SelectiveModel::new(&base, 5);
        let mut aux = SelectiveModel::new(&with_aux, 5);
        assert!(!plain.has_aux_head());
        assert!(aux.has_aux_head());
        assert_eq!(aux.param_count(), plain.param_count() + 16 * 9 + 9);
        let x = Tensor::full(&[2, 1, 16, 16], 0.5);
        let (_, _, aux_logits) = aux.forward_full(&x);
        assert_eq!(aux_logits.expect("aux logits").shape(), &[2, 9]);
        let (_, _, none) = plain.forward_full(&x);
        assert!(none.is_none());
    }

    #[test]
    fn aux_state_dict_roundtrips() {
        let cfg = tiny_config().with_aux_head();
        let mut a = SelectiveModel::new(&cfg, 6);
        let snap = a.state_dict();
        let mut b = SelectiveModel::new(&cfg, 77);
        b.load_state_dict(&snap).expect("same architecture");
        let x = Tensor::full(&[1, 1, 16, 16], 0.3);
        let (la, _, aa) = a.forward_full(&x);
        let (lb, _, ab) = b.forward_full(&x);
        assert_eq!(la.data(), lb.data());
        assert_eq!(aa.expect("aux").data(), ab.expect("aux").data());
        // Snapshot from aux model cannot restore into a plain model.
        let mut plain = SelectiveModel::new(&tiny_config(), 6);
        assert!(plain.load_state_dict(&snap).is_err());
    }

    #[test]
    #[should_panic(expected = "expected [N, 1, 16, 16]")]
    fn forward_validates_input_shape() {
        let mut model = SelectiveModel::new(&tiny_config(), 4);
        let _ = model.forward(&Tensor::zeros(&[1, 1, 8, 8]));
    }
}
