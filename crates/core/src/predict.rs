use serde::{Deserialize, Serialize};

/// Outcome of the selective classifier on one wafer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectivePrediction {
    /// Predicted class index (argmax of the prediction head) — only
    /// meaningful when [`SelectivePrediction::selected`] is true.
    pub label: usize,
    /// Softmax probability of the predicted class.
    pub confidence: f32,
    /// Selection-head score `g(x)` in `(0, 1)`.
    pub selection_score: f32,
    /// Whether `g(x)` cleared the threshold (the model commits).
    pub selected: bool,
}

/// Pick a selection threshold τ targeting a given empirical coverage
/// on a calibration set of `g` scores.
///
/// SelectiveNet calibrates the inference threshold the same way: sort
/// the validation scores and cut at the `(1 − coverage)` quantile so a
/// fraction `coverage` of samples clears it. Returns 0.5 for an empty
/// slice; clamps `coverage` into `[0, 1]`.
///
/// # Guarantee
///
/// The empirical coverage of the rule `s >= τ` on the calibration
/// scores is **exact or under** the target, never over: at most
/// `floor(len · coverage)` scores clear the returned τ, and exactly
/// that many do when no calibration score ties with the score at the
/// cut. When scores tie at the cut, τ steps up to the next distinct
/// value so *every* duplicate is excluded — deterministically, rather
/// than keeping all of them and silently overshooting the target.
/// (Over-coverage is the harmful direction for a selective model: it
/// admits exactly the low-confidence wafers the reject option exists
/// to abstain on.)
///
/// # Example
///
/// ```
/// use selective::calibrate_threshold;
///
/// let scores = [0.1, 0.2, 0.6, 0.8, 0.9];
/// let tau = calibrate_threshold(&scores, 0.4);
/// let kept = scores.iter().filter(|&&s| s >= tau).count();
/// assert_eq!(kept, 2);
///
/// // Ties at the cut are excluded rather than overshooting: a naive
/// // quantile cut at 0.8 would keep 3 of 4 samples here (75%
/// // coverage against a 50% target).
/// let tied = [0.1, 0.8, 0.8, 0.9];
/// let tau = calibrate_threshold(&tied, 0.5);
/// let kept = tied.iter().filter(|&&s| s >= tau).count();
/// assert_eq!(kept, 1);
/// ```
#[must_use]
pub fn calibrate_threshold(scores: &[f32], coverage: f64) -> f32 {
    if scores.is_empty() {
        return 0.5;
    }
    let coverage = coverage.clamp(0.0, 1.0);
    let mut sorted: Vec<f32> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    let keep = ((n as f64) * coverage).floor() as usize;
    if keep == 0 {
        return above(sorted[n - 1]);
    }
    if keep >= n {
        return sorted[0];
    }
    // Keep the `keep` largest scores: cut at element n-keep.
    let cut = sorted[n - keep];
    if sorted[n - keep - 1] < cut {
        // No tie across the cut: exactly `keep` scores satisfy s >= cut.
        return cut;
    }
    // Duplicates of the cut score extend below the cut index, so
    // `s >= cut` would keep more than `keep`. Exclude the whole tie
    // group: τ becomes the next distinct value above the cut (or a
    // value above the maximum when the tie reaches the top).
    match sorted[n - keep..].iter().find(|&&s| s > cut) {
        Some(&next) => next,
        None => above(sorted[n - 1]),
    }
}

/// A threshold strictly above `max` (no score clears it).
fn above(max: f32) -> f32 {
    max + f32::EPSILON.max(max.abs() * 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_coverage_keeps_everything() {
        let scores = [0.3, 0.1, 0.9];
        let tau = calibrate_threshold(&scores, 1.0);
        assert!(scores.iter().all(|&s| s >= tau));
    }

    #[test]
    fn zero_coverage_rejects_everything() {
        let scores = [0.3, 0.1, 0.9];
        let tau = calibrate_threshold(&scores, 0.0);
        assert!(scores.iter().all(|&s| s < tau));
    }

    #[test]
    fn half_coverage_keeps_half() {
        let scores: Vec<f32> = (0..10).map(|i| i as f32 / 10.0).collect();
        let tau = calibrate_threshold(&scores, 0.5);
        let kept = scores.iter().filter(|&&s| s >= tau).count();
        assert_eq!(kept, 5);
    }

    #[test]
    fn empty_scores_default() {
        assert_eq!(calibrate_threshold(&[], 0.5), 0.5);
    }

    #[test]
    fn out_of_range_coverage_is_clamped() {
        let scores = [0.2, 0.4];
        assert!(scores.iter().all(|&s| s >= calibrate_threshold(&scores, 5.0)));
        let tau = calibrate_threshold(&scores, -1.0);
        assert!(scores.iter().all(|&s| s < tau));
    }

    #[test]
    fn ties_at_the_cut_are_excluded_not_overshot() {
        // Target 50% of 6 = 3, but the value at the cut (0.7) has three
        // copies spanning it; keeping all of them would cover 4/6.
        let scores = [0.1, 0.2, 0.7, 0.7, 0.7, 0.9];
        let tau = calibrate_threshold(&scores, 0.5);
        let kept = scores.iter().filter(|&&s| s >= tau).count();
        assert_eq!(kept, 1, "only the strictly-above-tie score survives");
        assert!(tau > 0.7 && tau <= 0.9);
    }

    #[test]
    fn tie_group_reaching_the_maximum_rejects_everything() {
        let scores = [0.3, 0.8, 0.8, 0.8];
        // keep = 2, the cut is 0.8 and every score from the cut up ties.
        let tau = calibrate_threshold(&scores, 0.5);
        assert_eq!(scores.iter().filter(|&&s| s >= tau).count(), 0);
    }

    #[test]
    fn all_equal_scores_under_partial_coverage_reject_everything() {
        let scores = [0.6; 8];
        let tau = calibrate_threshold(&scores, 0.5);
        assert_eq!(scores.iter().filter(|&&s| s >= tau).count(), 0);
        // Full coverage still keeps everything.
        let tau = calibrate_threshold(&scores, 1.0);
        assert_eq!(scores.iter().filter(|&&s| s >= tau).count(), 8);
    }

    #[test]
    fn calibration_is_deterministic_under_permutation() {
        let a = [0.5, 0.1, 0.5, 0.9, 0.5, 0.3];
        let mut b = a;
        b.reverse();
        for cov in [0.2, 1.0 / 3.0, 0.5, 0.8] {
            assert_eq!(calibrate_threshold(&a, cov), calibrate_threshold(&b, cov));
        }
    }
}
