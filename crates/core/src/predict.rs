use serde::{Deserialize, Serialize};

/// Outcome of the selective classifier on one wafer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectivePrediction {
    /// Predicted class index (argmax of the prediction head) — only
    /// meaningful when [`SelectivePrediction::selected`] is true.
    pub label: usize,
    /// Softmax probability of the predicted class.
    pub confidence: f32,
    /// Selection-head score `g(x)` in `(0, 1)`.
    pub selection_score: f32,
    /// Whether `g(x)` cleared the threshold (the model commits).
    pub selected: bool,
}

/// Pick a selection threshold τ that achieves (approximately) a target
/// empirical coverage on a calibration set of `g` scores.
///
/// SelectiveNet calibrates the inference threshold the same way: sort
/// the validation scores and cut at the `(1 − coverage)` quantile so a
/// fraction `coverage` of samples clears it. Returns 0.5 for an empty
/// slice; clamps `coverage` into `[0, 1]`.
///
/// # Example
///
/// ```
/// use selective::calibrate_threshold;
///
/// let scores = [0.1, 0.2, 0.6, 0.8, 0.9];
/// let tau = calibrate_threshold(&scores, 0.4);
/// let kept = scores.iter().filter(|&&s| s >= tau).count();
/// assert_eq!(kept, 2);
/// ```
#[must_use]
pub fn calibrate_threshold(scores: &[f32], coverage: f64) -> f32 {
    if scores.is_empty() {
        return 0.5;
    }
    let coverage = coverage.clamp(0.0, 1.0);
    let mut sorted: Vec<f32> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let keep = ((scores.len() as f64) * coverage).round() as usize;
    if keep == 0 {
        // Threshold above the maximum.
        return sorted[sorted.len() - 1] + f32::EPSILON.max(sorted[sorted.len() - 1].abs() * 1e-6);
    }
    if keep >= sorted.len() {
        return sorted[0];
    }
    // Keep the `keep` largest scores: threshold at element len-keep.
    sorted[sorted.len() - keep]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_coverage_keeps_everything() {
        let scores = [0.3, 0.1, 0.9];
        let tau = calibrate_threshold(&scores, 1.0);
        assert!(scores.iter().all(|&s| s >= tau));
    }

    #[test]
    fn zero_coverage_rejects_everything() {
        let scores = [0.3, 0.1, 0.9];
        let tau = calibrate_threshold(&scores, 0.0);
        assert!(scores.iter().all(|&s| s < tau));
    }

    #[test]
    fn half_coverage_keeps_half() {
        let scores: Vec<f32> = (0..10).map(|i| i as f32 / 10.0).collect();
        let tau = calibrate_threshold(&scores, 0.5);
        let kept = scores.iter().filter(|&&s| s >= tau).count();
        assert_eq!(kept, 5);
    }

    #[test]
    fn empty_scores_default() {
        assert_eq!(calibrate_threshold(&[], 0.5), 0.5);
    }

    #[test]
    fn out_of_range_coverage_is_clamped() {
        let scores = [0.2, 0.4];
        assert!(scores.iter().all(|&s| s >= calibrate_threshold(&scores, 5.0)));
        let tau = calibrate_threshold(&scores, -1.0);
        assert!(scores.iter().all(|&s| s < tau));
    }
}
