//! The selective training objective — the paper's eqs. (6)–(9).

use nn::loss::{cross_entropy_grad_rows_into, cross_entropy_per_sample_into, softmax_into};
use nn::Tensor;
use serde::{Deserialize, Serialize};

/// Reusable buffers for [`SelectiveLoss::compute_scratch`].
///
/// One instance lives next to each training loop; every buffer grows
/// to the largest batch seen and is then refilled in place, so
/// steady-state training performs no loss-side allocation.
#[derive(Debug, Default)]
pub struct SelectiveScratch {
    probs: Tensor,
    ce: Vec<f32>,
    grad_logits: Tensor,
    grad_g: Vec<f32>,
}

/// Hyper-parameters of the selective objective.
///
/// The paper fixes `λ = α = 0.5` and varies `c0` over
/// `{0.2, 0.5, 0.75, 1}`; `c0 = 1` degenerates to plain cross-entropy
/// (handled by the trainer, not this struct).
///
/// # Example
///
/// ```
/// use selective::SelectiveLoss;
///
/// let loss = SelectiveLoss::new(0.5);
/// assert_eq!(loss.target_coverage(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectiveLoss {
    c0: f32,
    lambda: f32,
    alpha: f32,
}

/// The decomposed value of the selective objective for one batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectiveLossValue {
    /// Total objective `α·(risk + λ·penalty) + (1−α)·plain`.
    pub total: f32,
    /// g-weighted selective risk `r(f,g|D)` (eq. (7)).
    pub selective_risk: f32,
    /// Empirical coverage `c(g|D)` (eq. (6)).
    pub coverage: f32,
    /// Quadratic coverage-shortfall penalty `Ψ(c0 − c)` (eq. (8)).
    pub penalty: f32,
    /// Plain weighted cross-entropy `r(f|D)` (the `(1−α)` term).
    pub plain_risk: f32,
}

impl SelectiveLoss {
    /// Selective loss with target coverage `c0` and the paper's
    /// `λ = α = 0.5`.
    ///
    /// # Panics
    ///
    /// Panics if `c0` is outside `(0, 1]`.
    #[must_use]
    pub fn new(c0: f32) -> Self {
        assert!(c0 > 0.0 && c0 <= 1.0, "target coverage must be in (0, 1]");
        SelectiveLoss { c0, lambda: 0.5, alpha: 0.5 }
    }

    /// Override `λ` (coverage-constraint weight in eq. (8)).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative.
    #[must_use]
    pub fn with_lambda(mut self, lambda: f32) -> Self {
        assert!(lambda >= 0.0, "lambda must be non-negative");
        self.lambda = lambda;
        self
    }

    /// Override `α` (selective-vs-plain mixing weight in eq. (9)).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]`.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        self.alpha = alpha;
        self
    }

    /// Target coverage `c0`.
    #[must_use]
    pub fn target_coverage(&self) -> f32 {
        self.c0
    }

    /// Evaluate the objective and its gradients for one batch.
    ///
    /// * `logits` — `[N, n_classes]` prediction-head outputs.
    /// * `g` — `[N]` post-sigmoid selection scores.
    /// * `labels` — `[N]` class indices.
    /// * `weights` — `[N]` per-sample loss weights (1.0 for original
    ///   samples, the paper's `w < 1` for synthetic ones).
    ///
    /// Returns the decomposed loss, the gradient w.r.t. the logits and
    /// the gradient w.r.t. the selection scores.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or an empty batch.
    #[must_use]
    pub fn compute(
        &self,
        logits: &Tensor,
        g: &[f32],
        labels: &[usize],
        weights: &[f32],
    ) -> (SelectiveLossValue, Tensor, Vec<f32>) {
        let mut scratch = SelectiveScratch::default();
        let (value, _, _) = self.compute_scratch(logits, g, labels, weights, &mut scratch);
        (value, scratch.grad_logits, scratch.grad_g)
    }

    /// [`SelectiveLoss::compute`] through reusable scratch buffers:
    /// bit-identical numbers, but the gradients are left in (and
    /// borrowed from) `scratch` instead of freshly allocated. The
    /// returned gradient references are mutable so callers can scale
    /// them in place (the trainer's α-mixing).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or an empty batch.
    pub fn compute_scratch<'s>(
        &self,
        logits: &Tensor,
        g: &[f32],
        labels: &[usize],
        weights: &[f32],
        scratch: &'s mut SelectiveScratch,
    ) -> (SelectiveLossValue, &'s mut Tensor, &'s mut Vec<f32>) {
        let n = logits.shape()[0];
        let c = logits.shape()[1];
        assert!(n > 0, "empty batch");
        assert_eq!(g.len(), n, "g length mismatch");
        assert_eq!(labels.len(), n, "labels length mismatch");
        assert_eq!(weights.len(), n, "weights length mismatch");

        softmax_into(logits, &mut scratch.probs);
        cross_entropy_per_sample_into(&scratch.probs, labels, &mut scratch.ce);
        let (probs, ce) = (&scratch.probs, &scratch.ce);

        // Eq. (6): empirical coverage (unweighted mean of g).
        let g_sum: f32 = g.iter().sum();
        let coverage = g_sum / n as f32;

        // Eq. (7): selective risk. The numerator carries the sample
        // weights (the paper's synthetic-sample down-weighting applies
        // to every loss term involving l(f(x), y)); the denominator is
        // the coverage mass exactly as in eq. (7).
        let g_sum_safe = g_sum.max(1e-8);
        let weighted_ce_g: f32 =
            ce.iter().zip(g).zip(weights).map(|((&l, &gi), &wi)| wi * l * gi).sum();
        let selective_risk = weighted_ce_g / g_sum_safe;

        // Eq. (8): Ψ(z) = max(0, z)² on the coverage shortfall.
        let shortfall = (self.c0 - coverage).max(0.0);
        let penalty = shortfall * shortfall;

        // The (1−α) plain risk: weighted mean CE over the whole batch.
        let w_sum: f32 = weights.iter().sum::<f32>().max(1e-8);
        let plain_risk = ce.iter().zip(weights).map(|(&l, &wi)| wi * l).sum::<f32>() / w_sum;

        let total =
            self.alpha * (selective_risk + self.lambda * penalty) + (1.0 - self.alpha) * plain_risk;

        // Gradient w.r.t. logits: per-sample coefficient times
        // (p − onehot). d selective_risk/d ce_i = w_i·g_i / Σg;
        // d plain/d ce_i = w_i / Σw.
        cross_entropy_grad_rows_into(probs, labels, &mut scratch.grad_logits);
        for (i, row) in scratch.grad_logits.data_mut().chunks_exact_mut(c).enumerate() {
            let coef = self.alpha * weights[i] * g[i] / g_sum_safe
                + (1.0 - self.alpha) * weights[i] / w_sum;
            row.iter_mut().for_each(|v| *v *= coef);
        }

        // Gradient w.r.t. g_i:
        //   d r/d g_i     = (w_i·ce_i − r) / Σg          (quotient rule)
        //   d Ψ/d g_i     = −2·max(0, c0 − c) / N
        let dpen_dg = -2.0 * shortfall / n as f32;
        scratch.grad_g.clear();
        scratch.grad_g.extend(scratch.ce.iter().zip(weights).map(|(&l, &wi)| {
            self.alpha * ((wi * l - selective_risk) / g_sum_safe + self.lambda * dpen_dg)
        }));

        (
            SelectiveLossValue { total, selective_risk, coverage, penalty, plain_risk },
            &mut scratch.grad_logits,
            &mut scratch.grad_g,
        )
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    fn batch(n: usize, c: usize, seed: u64) -> (Tensor, Vec<f32>, Vec<usize>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::randn(&[n, c], 1.0, &mut rng);
        let g: Vec<f32> = (0..n).map(|i| 0.2 + 0.6 * (i as f32 / n as f32)).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % c).collect();
        let weights = vec![1.0f32; n];
        (logits, g, labels, weights)
    }

    /// Reference implementation of the scalar objective for gradient
    /// checking.
    fn scalar_loss(
        loss: &SelectiveLoss,
        logits: &Tensor,
        g: &[f32],
        labels: &[usize],
        weights: &[f32],
    ) -> f32 {
        loss.compute(logits, g, labels, weights).0.total
    }

    #[test]
    fn coverage_matches_mean_g() {
        let (logits, g, labels, weights) = batch(8, 4, 0);
        let loss = SelectiveLoss::new(0.7);
        let (value, _, _) = loss.compute(&logits, &g, &labels, &weights);
        let expect = g.iter().sum::<f32>() / 8.0;
        assert!((value.coverage - expect).abs() < 1e-6);
    }

    #[test]
    fn penalty_is_zero_when_coverage_met() {
        let (logits, _, labels, weights) = batch(8, 4, 1);
        let g = vec![0.95f32; 8];
        let loss = SelectiveLoss::new(0.5);
        let (value, _, _) = loss.compute(&logits, &g, &labels, &weights);
        assert_eq!(value.penalty, 0.0);
    }

    #[test]
    fn penalty_grows_quadratically_below_target() {
        let (logits, _, labels, weights) = batch(8, 4, 2);
        let loss = SelectiveLoss::new(0.8);
        let (v1, _, _) = loss.compute(&logits, &[0.6f32; 8], &labels, &weights);
        let (v2, _, _) = loss.compute(&logits, &[0.4f32; 8], &labels, &weights);
        assert!((v1.penalty - 0.04).abs() < 1e-5);
        assert!((v2.penalty - 0.16).abs() < 1e-5);
    }

    #[test]
    fn alpha_one_removes_plain_term_influence() {
        let (logits, g, labels, weights) = batch(6, 3, 3);
        let loss = SelectiveLoss::new(0.5).with_alpha(1.0);
        let (value, _, _) = loss.compute(&logits, &g, &labels, &weights);
        assert!(
            (value.total - (value.selective_risk + 0.5 * value.penalty)).abs() < 1e-6,
            "alpha=1 total should be purely selective"
        );
    }

    #[test]
    fn logits_gradient_matches_finite_differences() {
        let (logits, g, labels, weights) = batch(4, 3, 4);
        let loss = SelectiveLoss::new(0.6);
        let (_, grad_logits, _) = loss.compute(&logits, &g, &labels, &weights);
        let eps = 1e-3f32;
        for idx in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let numeric = (scalar_loss(&loss, &lp, &g, &labels, &weights)
                - scalar_loss(&loss, &lm, &g, &labels, &weights))
                / (2.0 * eps);
            let analytic = grad_logits.data()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "logits grad mismatch at {idx}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn g_gradient_matches_finite_differences() {
        let (logits, g, labels, weights) = batch(5, 3, 5);
        // Target above current coverage so the penalty branch is active.
        let loss = SelectiveLoss::new(0.9);
        let (_, _, grad_g) = loss.compute(&logits, &g, &labels, &weights);
        let eps = 1e-3f32;
        for idx in 0..g.len() {
            let mut gp = g.clone();
            gp[idx] += eps;
            let mut gm = g.clone();
            gm[idx] -= eps;
            let numeric = (scalar_loss(&loss, &logits, &gp, &labels, &weights)
                - scalar_loss(&loss, &logits, &gm, &labels, &weights))
                / (2.0 * eps);
            let analytic = grad_g[idx];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "g grad mismatch at {idx}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn g_gradient_matches_without_active_penalty() {
        let (logits, g, labels, weights) = batch(5, 3, 6);
        let loss = SelectiveLoss::new(0.1); // coverage already above target
        let (value, _, grad_g) = loss.compute(&logits, &g, &labels, &weights);
        assert_eq!(value.penalty, 0.0);
        let eps = 1e-3f32;
        for idx in 0..g.len() {
            let mut gp = g.clone();
            gp[idx] += eps;
            let mut gm = g.clone();
            gm[idx] -= eps;
            let numeric = (scalar_loss(&loss, &logits, &gp, &labels, &weights)
                - scalar_loss(&loss, &logits, &gm, &labels, &weights))
                / (2.0 * eps);
            assert!((numeric - grad_g[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn synthetic_weights_reduce_their_loss_share() {
        let (logits, g, labels, _) = batch(4, 3, 7);
        let loss = SelectiveLoss::new(0.5);
        let (all_one, _, _) = loss.compute(&logits, &g, &labels, &[1.0; 4]);
        let (down, _, _) = loss.compute(&logits, &g, &labels, &[1.0, 0.1, 1.0, 0.1]);
        // Different weighting must change the objective.
        assert!((all_one.total - down.total).abs() > 1e-6);
    }

    #[test]
    fn rejecting_hard_samples_lowers_selective_risk() {
        // Two samples: one classified perfectly, one terribly.
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0, 10.0], &[2, 2]);
        let labels = [0usize, 0];
        let weights = [1.0f32, 1.0];
        let loss = SelectiveLoss::new(0.5);
        let (keep_both, _, _) = loss.compute(&logits, &[1.0, 1.0], &labels, &weights);
        let (reject_bad, _, _) = loss.compute(&logits, &[1.0, 0.01], &labels, &weights);
        assert!(reject_bad.selective_risk < keep_both.selective_risk);
    }

    #[test]
    #[should_panic(expected = "target coverage")]
    fn zero_target_coverage_rejected() {
        let _ = SelectiveLoss::new(0.0);
    }
}
