//! Deep selective learning for wafer-map defect classification — the
//! primary contribution of Alawieh, Boning & Pan (DAC 2020).
//!
//! A [`SelectiveModel`] is the paper's two-head CNN (Fig. 2): a shared
//! convolutional trunk (Table I: Conv 64@5×5, Conv 32@3×3, Conv
//! 32@3×3, each with 2×2 max-pooling, then FC 256) feeding
//!
//! - a **prediction head** `f` producing class logits, and
//! - a **selection head** `g` — a single sigmoid neuron — whose output
//!   in `(0, 1)` decides whether the model commits to a label or
//!   abstains.
//!
//! Training minimizes the paper's eq. (9):
//!
//! ```text
//! L = α · [ r(f,g|D) + λ · max(0, c0 − c(g|D))² ] + (1 − α) · r(f|D)
//! ```
//!
//! where `r(f,g|D)` is the g-weighted selective risk (eq. (7)),
//! `c(g|D)` the empirical coverage (eq. (6)), `c0` the target
//! coverage, and `r(f|D)` the plain cross-entropy risk that keeps the
//! network exposed to every training instance.
//!
//! # Example
//!
//! ```
//! use selective::{SelectiveConfig, SelectiveModel, TrainConfig, Trainer};
//! use wafermap::gen::SyntheticWm811k;
//!
//! // A deliberately tiny run: 16x16 wafers, a handful of samples.
//! let (train, test) = SyntheticWm811k::new(16).scale(0.001).seed(1).build();
//! let config = SelectiveConfig::for_grid(16).with_conv_channels([8, 8, 8]).with_fc(32);
//! let mut model = SelectiveModel::new(&config, 42);
//! let report = Trainer::new(TrainConfig { epochs: 1, batch_size: 16, ..TrainConfig::default() })
//!     .run(&mut model, &train);
//! assert_eq!(report.epochs.len(), 1);
//! let metrics = model.evaluate(&test, 0.5);
//! assert!(metrics.total() as usize == test.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bundle;
mod config;
mod loss;
mod model;
mod predict;
mod trainer;

pub mod monitor;
pub mod sweep;

pub use bundle::{
    BundleError, CheckpointBundle, FallbackExhausted, FallbackLoad, TrainProgress,
    BUNDLE_FORMAT_VERSION,
};
pub use config::SelectiveConfig;
pub use loss::{SelectiveLoss, SelectiveLossValue, SelectiveScratch};
pub use model::SelectiveModel;
pub use monitor::{CoverageAlarm, CoverageMonitor};
pub use nn::serialize::LoadError;
pub use predict::{calibrate_threshold, SelectivePrediction};
pub use sweep::{threshold_sweep, uniform_thresholds};
pub use trainer::{EpochStats, TrainConfig, TrainReport, Trainer};
