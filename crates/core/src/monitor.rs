//! Deployment-time coverage monitoring — the operational form of the
//! paper's concept-shift application (Section IV-D (iii)): "under
//! such scenario the actual coverage of the model would drop
//! significantly; hence, raising a flag that the model needs to be
//! retrained".

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Rolling-window coverage monitor.
///
/// Feed it the model's per-wafer select/abstain decisions; once the
/// window is full, it raises [`CoverageAlarm`] whenever the rolling
/// coverage falls below `alarm_fraction · target_coverage`.
///
/// # Example
///
/// ```
/// use selective::monitor::CoverageMonitor;
///
/// let mut monitor = CoverageMonitor::new(0.5, 10, 0.5);
/// // A healthy stream: every other wafer selected (coverage 0.5).
/// for i in 0..10 {
///     assert!(monitor.observe(i % 2 == 0).is_none());
/// }
/// // Distribution shifts: the model abstains on everything.
/// let mut alarm = None;
/// for _ in 0..10 {
///     alarm = alarm.or(monitor.observe(false));
/// }
/// assert!(alarm.is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageMonitor {
    target_coverage: f64,
    alarm_fraction: f64,
    window: usize,
    decisions: VecDeque<bool>,
    selected_in_window: usize,
    observed: u64,
}

/// Raised when rolling coverage collapses below the alarm line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageAlarm {
    /// Rolling coverage at the moment of the alarm.
    pub rolling_coverage: f64,
    /// The alarm line (`alarm_fraction · target_coverage`).
    pub alarm_line: f64,
    /// Total wafers observed so far.
    pub observed: u64,
}

impl CoverageMonitor {
    /// New monitor for a model trained at `target_coverage`, with a
    /// rolling window of `window` wafers and an alarm at
    /// `alarm_fraction` of the target.
    ///
    /// # Panics
    ///
    /// Panics if `target_coverage` is not in `(0, 1]`, `window` is
    /// zero, or `alarm_fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn new(target_coverage: f64, window: usize, alarm_fraction: f64) -> Self {
        assert!(
            target_coverage > 0.0 && target_coverage <= 1.0,
            "target coverage must be in (0, 1]"
        );
        assert!(window > 0, "window must be non-zero");
        assert!(alarm_fraction > 0.0 && alarm_fraction <= 1.0, "alarm fraction must be in (0, 1]");
        CoverageMonitor {
            target_coverage,
            alarm_fraction,
            window,
            decisions: VecDeque::with_capacity(window),
            selected_in_window: 0,
            observed: 0,
        }
    }

    /// Record one wafer decision (`true` = the model selected /
    /// labeled it). Returns an alarm when the window is full and the
    /// rolling coverage is below the alarm line.
    pub fn observe(&mut self, selected: bool) -> Option<CoverageAlarm> {
        self.observed += 1;
        if self.decisions.len() == self.window {
            if let Some(old) = self.decisions.pop_front() {
                if old {
                    self.selected_in_window -= 1;
                }
            }
        }
        self.decisions.push_back(selected);
        if selected {
            self.selected_in_window += 1;
        }
        if self.decisions.len() < self.window {
            return None;
        }
        let rolling = self.rolling_coverage();
        let line = self.alarm_line();
        (rolling < line).then_some(CoverageAlarm {
            rolling_coverage: rolling,
            alarm_line: line,
            observed: self.observed,
        })
    }

    /// Coverage over the current window (0 until any data arrives).
    #[must_use]
    pub fn rolling_coverage(&self) -> f64 {
        if self.decisions.is_empty() {
            0.0
        } else {
            self.selected_in_window as f64 / self.decisions.len() as f64
        }
    }

    /// The coverage level below which alarms fire.
    #[must_use]
    pub fn alarm_line(&self) -> f64 {
        self.alarm_fraction * self.target_coverage
    }

    /// Total wafers observed.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_alarm_before_window_fills() {
        let mut m = CoverageMonitor::new(0.5, 100, 0.5);
        for _ in 0..99 {
            assert!(m.observe(false).is_none());
        }
    }

    #[test]
    fn healthy_stream_never_alarms() {
        let mut m = CoverageMonitor::new(0.5, 20, 0.5);
        for i in 0..200 {
            assert!(m.observe(i % 2 == 0).is_none(), "false alarm at {i}");
        }
        assert!((m.rolling_coverage() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn coverage_collapse_triggers_alarm() {
        let mut m = CoverageMonitor::new(0.5, 20, 0.5);
        for i in 0..20 {
            let _ = m.observe(i % 2 == 0);
        }
        // Shift: abstain on everything from now on.
        let mut fired = None;
        for _ in 0..20 {
            fired = fired.or(m.observe(false));
        }
        let alarm = fired.expect("alarm should fire");
        assert!(alarm.rolling_coverage < 0.25);
        assert_eq!(alarm.alarm_line, 0.25);
    }

    #[test]
    fn recovery_clears_alarms() {
        let mut m = CoverageMonitor::new(0.5, 10, 0.5);
        for _ in 0..20 {
            let _ = m.observe(false);
        }
        // Back to healthy coverage: window flushes and alarms stop.
        let mut last = None;
        for i in 0..20 {
            last = m.observe(i % 2 == 0);
        }
        assert!(last.is_none());
    }

    #[test]
    fn window_eviction_keeps_counts_consistent() {
        let mut m = CoverageMonitor::new(1.0, 4, 0.1);
        let pattern = [true, true, false, false, true, false, true, true];
        for &d in &pattern {
            let _ = m.observe(d);
        }
        // Window holds the last 4: [true, false, true, true] -> 0.75.
        assert!((m.rolling_coverage() - 0.75).abs() < 1e-9);
        assert_eq!(m.observed(), 8);
    }
}
