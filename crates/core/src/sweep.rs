//! Risk–coverage curve utilities.
//!
//! Fig. 5 of the paper retrains a model per target coverage `c0`; the
//! threshold sweep here is the complementary *inference-time* view: a
//! single trained selective model traces an entire risk–coverage
//! curve by varying the selection threshold τ.

use eval::RiskCoveragePoint;
use wafermap::Dataset;

use crate::SelectiveModel;

/// Evaluate `model` at every threshold in `thresholds`, returning one
/// risk–coverage point per threshold (the `target_coverage` field of
/// each point records the threshold used).
///
/// Scores are computed once, so the sweep costs a single forward pass
/// over the dataset plus cheap re-thresholding.
///
/// # Panics
///
/// Panics if the dataset grid does not match the model's.
#[must_use]
pub fn threshold_sweep(
    model: &mut SelectiveModel,
    dataset: &Dataset,
    thresholds: &[f32],
) -> Vec<RiskCoveragePoint> {
    use eval::{SelectiveMetrics, SelectiveOutcome};
    use nn::Tensor;

    let grid = model.config().grid;
    assert_eq!(dataset.grid(), grid, "dataset grid mismatch");
    let n_classes = model.config().n_classes;
    let pixels = grid * grid;

    // One forward pass: collect (true label, predicted label, score).
    let mut triples: Vec<(usize, usize, f32)> = Vec::with_capacity(dataset.len());
    for chunk in dataset.samples().chunks(64) {
        let mut data = Vec::with_capacity(chunk.len() * pixels);
        for s in chunk {
            data.extend(s.map.to_image());
        }
        let images = Tensor::from_vec(data, &[chunk.len(), 1, grid, grid]);
        let preds = model.predict(&images, 0.0);
        for (s, p) in chunk.iter().zip(preds) {
            triples.push((s.label.index(), p.label, p.selection_score));
        }
    }

    thresholds
        .iter()
        .map(|&tau| {
            let mut metrics = SelectiveMetrics::new(n_classes);
            for &(true_class, pred, score) in &triples {
                let outcome = if score >= tau {
                    SelectiveOutcome::Predicted(pred)
                } else {
                    SelectiveOutcome::Abstained
                };
                metrics.record(true_class, outcome);
            }
            RiskCoveragePoint::from_metrics(f64::from(tau), &metrics)
        })
        .collect()
}

/// Uniformly spaced thresholds over `(0, 1)` suitable for
/// [`threshold_sweep`].
///
/// # Panics
///
/// Panics if `count` is zero.
#[must_use]
pub fn uniform_thresholds(count: usize) -> Vec<f32> {
    assert!(count > 0, "need at least one threshold");
    (0..count).map(|i| (i as f32 + 0.5) / count as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SelectiveConfig, TrainConfig, Trainer};
    use wafermap::gen::SyntheticWm811k;

    #[test]
    fn sweep_coverage_is_monotone_in_threshold() {
        let (train, test) = SyntheticWm811k::new(16).scale(0.002).seed(1).build();
        let config = SelectiveConfig::for_grid(16).with_conv_channels([4, 4, 4]).with_fc(16);
        let mut model = crate::SelectiveModel::new(&config, 2);
        let _ = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 32,
            learning_rate: 3e-3,
            target_coverage: 0.5,
            ..TrainConfig::default()
        })
        .run(&mut model, &train);
        let points = threshold_sweep(&mut model, &test, &[0.0, 0.25, 0.5, 0.75, 0.999]);
        assert_eq!(points.len(), 5);
        for pair in points.windows(2) {
            assert!(
                pair[0].coverage >= pair[1].coverage - 1e-12,
                "coverage not monotone: {pair:?}"
            );
        }
        // τ = 0 covers everything.
        assert!((points[0].coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_thresholds_are_strictly_increasing_in_unit_interval() {
        let ts = uniform_thresholds(10);
        assert_eq!(ts.len(), 10);
        for pair in ts.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert!(ts[0] > 0.0 && ts[9] < 1.0);
    }
}
