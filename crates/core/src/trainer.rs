use std::time::Instant;

use nn::loss::{accuracy, softmax_cross_entropy_scratch, CeScratch};
use nn::optim::Adam;
use nn::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use telemetry::Registry;

use crate::bundle::{BundleError, CheckpointBundle, TrainProgress};
use crate::{SelectiveLoss, SelectiveModel, SelectiveScratch};
use wafermap::Dataset;

/// Training hyper-parameters.
///
/// The paper trains for 100 epochs with Adam and `λ = α = 0.5`;
/// `target_coverage = 1.0` switches to plain cross-entropy (exactly
/// what the paper does for its full-coverage model: "for the case when
/// `c0 = 1`, we train the model with cross-entropy loss function
/// only").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Target coverage `c0`; `1.0` trains with plain cross-entropy.
    pub target_coverage: f32,
    /// Coverage-penalty weight `λ` (eq. (8)).
    pub lambda: f32,
    /// Selective-vs-plain mixing weight `α` (eq. (9)).
    pub alpha: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            learning_rate: 1e-3,
            target_coverage: 1.0,
            lambda: 0.5,
            alpha: 0.5,
            seed: 0,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean training objective over the epoch.
    pub loss: f32,
    /// Mean empirical coverage `c(g)` over the epoch (1.0 when
    /// training with plain cross-entropy).
    pub coverage: f32,
    /// Training accuracy (argmax of `f`, ignoring selection).
    pub accuracy: f32,
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Statistics for each epoch, in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Final-epoch stats.
    ///
    /// # Panics
    ///
    /// Panics if the report is empty (zero epochs trained).
    #[must_use]
    pub fn last(&self) -> EpochStats {
        *self.epochs.last().expect("trained at least one epoch")
    }
}

/// Mini-batch trainer for [`SelectiveModel`].
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    telemetry: Option<Registry>,
}

/// Metric handles the trainer records into, resolved once per run.
///
/// Everything recorded is a value the training loop already computed
/// (loss terms, sample counts, wall-clock time) — recording changes no
/// RNG draw and no arithmetic, so trained weights are bit-identical
/// with telemetry on or off (`tests/telemetry_neutral.rs`).
struct TrainMetrics {
    epochs: telemetry::Counter,
    batches: telemetry::Counter,
    samples: telemetry::Counter,
    loss: telemetry::Gauge,
    selective_risk: telemetry::Gauge,
    coverage: telemetry::Gauge,
    penalty: telemetry::Gauge,
    plain_risk: telemetry::Gauge,
    accuracy: telemetry::Gauge,
    throughput: telemetry::Gauge,
    epoch_seconds: telemetry::Histogram,
    batch_seconds: telemetry::Histogram,
}

impl TrainMetrics {
    fn new(registry: &Registry) -> Self {
        TrainMetrics {
            epochs: registry.counter("train_epochs_total", "Epochs completed"),
            batches: registry.counter("train_batches_total", "Mini-batches stepped"),
            samples: registry.counter("train_samples_total", "Samples seen (with repeats)"),
            loss: registry.gauge("train_loss", "Mean training objective, last epoch"),
            selective_risk: registry
                .gauge("train_selective_risk", "Mean selective risk term, last epoch"),
            coverage: registry.gauge("train_coverage", "Mean empirical coverage, last epoch"),
            penalty: registry.gauge("train_penalty", "Mean coverage penalty term, last epoch"),
            plain_risk: registry
                .gauge("train_plain_risk", "Mean plain cross-entropy term, last epoch"),
            accuracy: registry.gauge("train_accuracy", "Training accuracy, last epoch"),
            throughput: registry
                .gauge("train_throughput_samples_per_sec", "Samples per second, last epoch"),
            epoch_seconds: registry.histogram(
                "train_epoch_seconds",
                "Wall-clock time per epoch",
                telemetry::DEFAULT_WINDOW,
            ),
            batch_seconds: registry.histogram(
                "train_batch_seconds",
                "Wall-clock time per mini-batch step",
                telemetry::DEFAULT_WINDOW,
            ),
        }
    }
}

impl Trainer {
    /// Trainer with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if epochs or batch size is zero, or `target_coverage`
    /// is outside `(0, 1]`.
    #[must_use]
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.epochs > 0, "epochs must be non-zero");
        assert!(config.batch_size > 0, "batch size must be non-zero");
        assert!(
            config.target_coverage > 0.0 && config.target_coverage <= 1.0,
            "target coverage must be in (0, 1]"
        );
        Trainer { config, telemetry: None }
    }

    /// Record per-epoch and per-batch metrics (timing, loss
    /// decomposition, coverage, throughput) into `registry` during
    /// every subsequent run. Instrumentation is read-only: trained
    /// weights are bit-identical with or without it.
    #[must_use]
    pub fn with_telemetry(mut self, registry: Registry) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// The training configuration.
    #[must_use]
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Train `model` on `dataset`, returning per-epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or its grid does not match the
    /// model's configuration.
    pub fn run(&self, model: &mut SelectiveModel, dataset: &Dataset) -> TrainReport {
        self.check_inputs(model, dataset);
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let epochs =
            self.epoch_span(model, dataset, &mut adam, &mut rng, &mut order, 0, self.config.epochs);
        TrainReport { epochs }
    }

    /// Train epochs `0..stop_epoch`, then snapshot the model, optimizer
    /// and progress into a [`CheckpointBundle`] from which
    /// [`Trainer::resume`] continues bit-identically to an
    /// uninterrupted [`Trainer::run`].
    ///
    /// Returns the partial report alongside the bundle.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Trainer::run`], or if
    /// `stop_epoch` exceeds the configured epoch count.
    pub fn run_to_checkpoint(
        &self,
        model: &mut SelectiveModel,
        dataset: &Dataset,
        stop_epoch: usize,
    ) -> (TrainReport, CheckpointBundle) {
        assert!(stop_epoch <= self.config.epochs, "stop_epoch exceeds configured epochs");
        self.check_inputs(model, dataset);
        let mut adam = Adam::new(self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let epochs =
            self.epoch_span(model, dataset, &mut adam, &mut rng, &mut order, 0, stop_epoch);
        let progress =
            TrainProgress { config: self.config, next_epoch: stop_epoch, epochs: epochs.clone() };
        let bundle = CheckpointBundle::capture(model, adam.state(), progress);
        (TrainReport { epochs }, bundle)
    }

    /// Resume training from a bundle written by
    /// [`Trainer::run_to_checkpoint`], continuing through the remaining
    /// epochs. With the same dataset and an equal [`TrainConfig`], the
    /// final weights and the returned [`TrainReport`] are
    /// **bit-identical** to an uninterrupted [`Trainer::run`]: the
    /// bundle restores every parameter (values, gradients, Adam
    /// moments), the Adam step counter, and the resume replays the
    /// completed epochs' shuffles to fast-forward the data-ordering
    /// RNG.
    ///
    /// `model` may be freshly constructed; its parameters are
    /// overwritten from the bundle.
    ///
    /// # Errors
    ///
    /// Returns a [`BundleError`] when the bundle lacks optimizer state
    /// or progress (inference-only export), was trained under a
    /// different config, targets a different architecture, or is
    /// internally corrupted.
    ///
    /// # Panics
    ///
    /// Panics on the same dataset conditions as [`Trainer::run`].
    pub fn resume(
        &self,
        model: &mut SelectiveModel,
        dataset: &Dataset,
        bundle: &CheckpointBundle,
    ) -> Result<TrainReport, BundleError> {
        self.check_inputs(model, dataset);
        let progress = bundle.progress().ok_or(BundleError::MissingProgress)?.clone();
        if progress.config != self.config {
            return Err(BundleError::ConfigMismatch {
                bundle: Box::new(progress.config),
                trainer: Box::new(self.config),
            });
        }
        if bundle.model_config() != model.config() {
            return Err(BundleError::ModelMismatch {
                bundle: Box::new(*bundle.model_config()),
                model: Box::new(*model.config()),
            });
        }
        let state = bundle.checkpoint().optimizer().ok_or(BundleError::MissingOptimizer)?;
        let mut adam = Adam::from_state(state).map_err(BundleError::Optimizer)?;
        model.load_state_dict(bundle.params()).map_err(BundleError::Restore)?;
        // Fast-forward the data-ordering RNG: replay the shuffles of
        // the completed epochs on the evolving order vector, exactly as
        // the straight run consumed them.
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        for _ in 0..progress.next_epoch {
            order.shuffle(&mut rng);
        }
        let mut epochs = progress.epochs;
        epochs.extend(self.epoch_span(
            model,
            dataset,
            &mut adam,
            &mut rng,
            &mut order,
            progress.next_epoch,
            self.config.epochs,
        ));
        Ok(TrainReport { epochs })
    }

    fn check_inputs(&self, model: &mut SelectiveModel, dataset: &Dataset) {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        assert_eq!(dataset.grid(), model.config().grid, "dataset grid mismatch");
    }

    /// Train epochs `start..end`, shuffling `order` in place with `rng`
    /// at the top of each epoch. All cross-epoch state lives in the
    /// caller so checkpoint/resume can interleave with spans.
    #[allow(clippy::too_many_arguments)]
    fn epoch_span(
        &self,
        model: &mut SelectiveModel,
        dataset: &Dataset,
        adam: &mut Adam,
        rng: &mut StdRng,
        order: &mut [usize],
        start: usize,
        end: usize,
    ) -> Vec<EpochStats> {
        let grid = dataset.grid();
        let pixels = grid * grid;
        let plain = self.config.target_coverage >= 1.0;
        let selective = SelectiveLoss::new(self.config.target_coverage)
            .with_lambda(self.config.lambda)
            .with_alpha(self.config.alpha);
        let samples = dataset.samples();
        let mut epochs = Vec::with_capacity(end.saturating_sub(start));
        let metrics = self.telemetry.as_ref().map(TrainMetrics::new);

        // Batch staging and loss scratch reused across batches and
        // epochs (the workspace memory model — see `nn::workspace`):
        // each buffer grows once to the full batch size, then is
        // refilled in place, so steady-state training allocates
        // nothing on the loss side of the step.
        let mut images = Tensor::default();
        let mut labels: Vec<usize> = Vec::new();
        let mut weights: Vec<f32> = Vec::new();
        let zero_g = vec![0.0f32; self.config.batch_size];
        let mut sel_scratch = SelectiveScratch::default();
        let mut aux_scratch = CeScratch::default();
        let mut ce_scratch = CeScratch::default();

        for epoch in start..end {
            let epoch_start = Instant::now();
            order.shuffle(rng);
            let mut loss_sum = 0.0f64;
            let mut cov_sum = 0.0f64;
            let mut acc_sum = 0.0f64;
            let mut risk_sum = 0.0f64;
            let mut pen_sum = 0.0f64;
            let mut plain_sum = 0.0f64;
            let mut seen = 0usize;
            for batch in order.chunks(self.config.batch_size) {
                let batch_start = Instant::now();
                images.resize(&[batch.len(), 1, grid, grid]);
                labels.clear();
                weights.clear();
                for (slot, &i) in images.data_mut().chunks_exact_mut(pixels).zip(batch) {
                    samples[i].map.write_image_into(slot);
                    labels.push(samples[i].label.index());
                    weights.push(samples[i].weight);
                }
                let (logits, g, aux) = model.forward_full(&images);
                // Each branch reports (objective, coverage, selective
                // risk, coverage penalty, plain CE) so the loss
                // decomposition can be surfaced without recomputation.
                let (loss, coverage, risk, penalty, plain_ce) = if plain {
                    let (l, grad) = softmax_cross_entropy_scratch(
                        &logits,
                        &labels,
                        Some(&weights),
                        &mut ce_scratch,
                    );
                    model.zero_grad();
                    model.backward(grad, &zero_g[..batch.len()]);
                    (l, 1.0, l, 0.0, l)
                } else if let Some(aux_logits) = &aux {
                    // SelectiveNet-style: pure selective objective on
                    // (f, g), plain cross-entropy on the auxiliary
                    // head, mixed by α.
                    let alpha = self.config.alpha;
                    let pure = SelectiveLoss::new(self.config.target_coverage)
                        .with_lambda(self.config.lambda)
                        .with_alpha(1.0);
                    let (value, grad_logits, grad_g) =
                        pure.compute_scratch(&logits, &g, &labels, &weights, &mut sel_scratch);
                    grad_logits.scale(alpha);
                    grad_g.iter_mut().for_each(|v| *v *= alpha);
                    let (ce, grad_aux) = softmax_cross_entropy_scratch(
                        aux_logits,
                        &labels,
                        Some(&weights),
                        &mut aux_scratch,
                    );
                    grad_aux.scale(1.0 - alpha);
                    model.zero_grad();
                    model.backward_full(grad_logits, grad_g, Some(grad_aux));
                    (
                        alpha * value.total + (1.0 - alpha) * ce,
                        value.coverage,
                        value.selective_risk,
                        value.penalty,
                        ce,
                    )
                } else {
                    let (value, grad_logits, grad_g) =
                        selective.compute_scratch(&logits, &g, &labels, &weights, &mut sel_scratch);
                    model.zero_grad();
                    model.backward(grad_logits, grad_g);
                    (
                        value.total,
                        value.coverage,
                        value.selective_risk,
                        value.penalty,
                        value.plain_risk,
                    )
                };
                model.step(adam);

                let b = batch.len() as f64;
                loss_sum += f64::from(loss) * b;
                cov_sum += f64::from(coverage) * b;
                acc_sum += f64::from(accuracy(&logits, &labels)) * b;
                risk_sum += f64::from(risk) * b;
                pen_sum += f64::from(penalty) * b;
                plain_sum += f64::from(plain_ce) * b;
                seen += batch.len();
                if let Some(m) = &metrics {
                    m.batches.inc();
                    m.samples.add(batch.len() as u64);
                    m.batch_seconds.observe(batch_start.elapsed().as_secs_f64());
                }
            }
            let n = seen as f64;
            let stats = EpochStats {
                epoch,
                loss: (loss_sum / n) as f32,
                coverage: (cov_sum / n) as f32,
                accuracy: (acc_sum / n) as f32,
            };
            if let Some(m) = &metrics {
                let elapsed = epoch_start.elapsed().as_secs_f64();
                m.epochs.inc();
                m.epoch_seconds.observe(elapsed);
                m.loss.set(f64::from(stats.loss));
                m.coverage.set(f64::from(stats.coverage));
                m.accuracy.set(f64::from(stats.accuracy));
                m.selective_risk.set(risk_sum / n);
                m.penalty.set(pen_sum / n);
                m.plain_risk.set(plain_sum / n);
                m.throughput.set(if elapsed > 0.0 { n / elapsed } else { 0.0 });
            }
            epochs.push(stats);
        }
        epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SelectiveConfig;
    use wafermap::gen::SyntheticWm811k;
    use wafermap::DefectClass;

    fn tiny_model(seed: u64) -> SelectiveModel {
        let config = SelectiveConfig::for_grid(16).with_conv_channels([4, 4, 4]).with_fc(16);
        SelectiveModel::new(&config, seed)
    }

    /// A small but separable two-class dataset: Near-Full (almost all
    /// fail) vs None (almost no failures).
    fn easy_dataset(per_class: usize, seed: u64) -> Dataset {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use wafermap::gen::{generate, GenConfig, Sample};
        let cfg = GenConfig::new(16);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(16);
        for _ in 0..per_class {
            ds.push(Sample::original(
                generate(DefectClass::NearFull, &cfg, &mut rng),
                DefectClass::NearFull,
            ));
            ds.push(Sample::original(
                generate(DefectClass::None, &cfg, &mut rng),
                DefectClass::None,
            ));
        }
        ds
    }

    #[test]
    fn plain_training_reduces_loss_and_learns_easy_pair() {
        let mut model = tiny_model(0);
        let train = easy_dataset(24, 1);
        let report = Trainer::new(TrainConfig {
            epochs: 30,
            batch_size: 16,
            learning_rate: 1e-2,
            ..TrainConfig::default()
        })
        .run(&mut model, &train);
        let first = report.epochs[0].loss;
        let last = report.last().loss;
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(report.last().accuracy > 0.9, "easy pair not learned: {}", report.last().accuracy);
        // Plain CE reports full coverage.
        assert_eq!(report.last().coverage, 1.0);
    }

    #[test]
    fn selective_training_tracks_coverage() {
        let mut model = tiny_model(2);
        let train = easy_dataset(24, 3);
        let report = Trainer::new(TrainConfig {
            epochs: 20,
            batch_size: 16,
            learning_rate: 5e-3,
            target_coverage: 0.5,
            ..TrainConfig::default()
        })
        .run(&mut model, &train);
        let cov = report.last().coverage;
        // Coverage must neither collapse to 0 nor be forced to 1; the
        // penalty pulls it toward/above c0.
        assert!(cov > 0.2 && cov <= 1.0, "coverage {cov} out of expected band");
        assert!(report.last().loss.is_finite());
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let train = easy_dataset(8, 4);
        let cfg = TrainConfig { epochs: 2, batch_size: 8, ..TrainConfig::default() };
        let mut a = tiny_model(5);
        let ra = Trainer::new(cfg).run(&mut a, &train);
        let mut b = tiny_model(5);
        let rb = Trainer::new(cfg).run(&mut b, &train);
        assert_eq!(ra, rb);
    }

    #[test]
    fn evaluate_after_training_covers_whole_test_set() {
        let mut model = tiny_model(6);
        let (train, test) = SyntheticWm811k::new(16).scale(0.0005).seed(7).build();
        let _ = Trainer::new(TrainConfig { epochs: 1, batch_size: 16, ..TrainConfig::default() })
            .run(&mut model, &train);
        let metrics = model.evaluate(&test, 0.5);
        assert_eq!(metrics.total() as usize, test.len());
    }

    #[test]
    fn aux_head_training_converges_on_easy_pair() {
        let config =
            SelectiveConfig::for_grid(16).with_conv_channels([4, 4, 4]).with_fc(16).with_aux_head();
        let mut model = SelectiveModel::new(&config, 9);
        let train = easy_dataset(24, 10);
        let report = Trainer::new(TrainConfig {
            epochs: 20,
            batch_size: 16,
            learning_rate: 5e-3,
            target_coverage: 0.5,
            ..TrainConfig::default()
        })
        .run(&mut model, &train);
        assert!(report.last().loss.is_finite());
        assert!(
            report.last().loss < report.epochs[0].loss,
            "aux-head training did not reduce loss"
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let mut model = tiny_model(8);
        let _ = Trainer::new(TrainConfig::default()).run(&mut model, &Dataset::new(16));
    }
}
