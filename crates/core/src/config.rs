use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of the two-head CNN.
///
/// Defaults reproduce the paper's Table I exactly: three convolutions
/// with 64/32/32 filters of size 5×5/3×3/3×3, each followed by 2×2
/// max-pooling, a 256-unit fully-connected layer, and `n_classes`
/// output neurons. Smaller settings are provided for tests and
/// CPU-budget experiments.
///
/// # Example
///
/// ```
/// use selective::SelectiveConfig;
///
/// let paper = SelectiveConfig::for_grid(32);
/// assert_eq!(paper.conv_channels, [64, 32, 32]);
/// assert_eq!(paper.fc, 256);
/// let tiny = paper.with_conv_channels([8, 8, 8]).with_fc(32);
/// assert_eq!(tiny.fc, 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectiveConfig {
    /// Input wafer grid side length (images are `1 x grid x grid`).
    pub grid: usize,
    /// Number of target classes `n_c`.
    pub n_classes: usize,
    /// Filter counts of the three convolution stages (Table I).
    pub conv_channels: [usize; 3],
    /// Kernel sizes of the three convolution stages (Table I).
    pub kernels: [usize; 3],
    /// Width of the fully-connected trunk layer.
    pub fc: usize,
    /// Attach a SelectiveNet-style auxiliary prediction head trained
    /// with plain cross-entropy. The paper folds the auxiliary task
    /// into the main head `f` (its eq. (9) reuses `r(f|D)`); enabling
    /// this reproduces the original SelectiveNet architecture instead
    /// and is exposed for ablation.
    pub aux_head: bool,
}

impl SelectiveConfig {
    /// The paper's Table I architecture for a given input grid and the
    /// full 9-class problem.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is not a positive multiple of 8 (three 2×2
    /// pooling stages shrink the grid by 8×).
    #[must_use]
    pub fn for_grid(grid: usize) -> Self {
        assert!(grid > 0 && grid.is_multiple_of(8), "grid must be a positive multiple of 8");
        SelectiveConfig {
            grid,
            n_classes: wafermap::DefectClass::COUNT,
            conv_channels: [64, 32, 32],
            kernels: [5, 3, 3],
            fc: 256,
            aux_head: false,
        }
    }

    /// Enable the SelectiveNet-style auxiliary head (see the field
    /// docs on [`SelectiveConfig::aux_head`]).
    #[must_use]
    pub fn with_aux_head(mut self) -> Self {
        self.aux_head = true;
        self
    }

    /// Override the number of classes (e.g. 8 for the Table IV
    /// leave-one-class-out experiment).
    ///
    /// # Panics
    ///
    /// Panics if `n_classes` is zero.
    #[must_use]
    pub fn with_classes(mut self, n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        self.n_classes = n_classes;
        self
    }

    /// Override the convolution filter counts.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    #[must_use]
    pub fn with_conv_channels(mut self, channels: [usize; 3]) -> Self {
        assert!(channels.iter().all(|&c| c > 0), "channel counts must be non-zero");
        self.conv_channels = channels;
        self
    }

    /// Override the fully-connected width.
    ///
    /// # Panics
    ///
    /// Panics if `fc` is zero.
    #[must_use]
    pub fn with_fc(mut self, fc: usize) -> Self {
        assert!(fc > 0, "fc width must be non-zero");
        self.fc = fc;
        self
    }

    /// Spatial side length after the three 2×2 pooling stages.
    #[must_use]
    pub fn pooled_side(&self) -> usize {
        self.grid / 8
    }

    /// Flattened feature count entering the FC layer.
    #[must_use]
    pub fn flat_features(&self) -> usize {
        self.conv_channels[2] * self.pooled_side() * self.pooled_side()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_i() {
        let c = SelectiveConfig::for_grid(64);
        assert_eq!(c.conv_channels, [64, 32, 32]);
        assert_eq!(c.kernels, [5, 3, 3]);
        assert_eq!(c.fc, 256);
        assert_eq!(c.n_classes, 9);
        assert_eq!(c.pooled_side(), 8);
        assert_eq!(c.flat_features(), 32 * 64);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn grid_must_be_poolable() {
        let _ = SelectiveConfig::for_grid(20);
    }

    #[test]
    fn builder_overrides() {
        let c =
            SelectiveConfig::for_grid(16).with_classes(8).with_conv_channels([4, 4, 4]).with_fc(16);
        assert_eq!(c.n_classes, 8);
        assert_eq!(c.flat_features(), 4 * 2 * 2);
    }
}
