//! Batched selective-inference serving — the deployment half of the
//! paper's Section IV-D: a trained selective model behind an engine
//! that routes each incoming wafer to a committed prediction or the
//! reject option, watches rolling coverage for concept shift, and
//! reports operational metrics.
//!
//! The serving path is `train → checkpoint → serve → monitor`:
//!
//! 1. Training exports a [`CheckpointBundle`] (architecture +
//!    parameters, versioned on disk).
//! 2. [`Engine::from_bundle`] rebuilds the model and
//!    [`Engine::calibrate`] picks the selection threshold τ from a
//!    held-out calibration set at a target coverage
//!    ([`selective::calibrate_threshold`] — exact-or-under).
//! 3. [`Engine::submit`] runs micro-batched prediction on the no-grad
//!    inference path (`selective::SelectiveModel::infer_predict`):
//!    each micro-batch fans out across the `nn::pool` worker pool in
//!    small batched blocks — no backward caches, thread-local scratch,
//!    results independent of the pool size — and yields one
//!    [`WaferDecision`] per wafer.
//! 4. Every decision feeds a [`CoverageMonitor`]; a sustained coverage
//!    collapse (the paper's concept-shift signal) surfaces as
//!    [`CoverageAlarm`]s on the decisions and in the report.
//!
//! # Graceful degradation
//!
//! The selective paradigm gives the engine a principled degraded mode:
//! when a wafer cannot or should not reach the model, the engine does
//! not stall, panic, or fabricate a label — it routes the wafer to the
//! reject option, exactly as the paper's selection head does for
//! low-confidence inputs, with the operational cause recorded as a
//! [`ShedReason`]:
//!
//! - **Invalid input** — [`Engine::submit_raw`] validates untyped
//!   pixel buffers (shape, NaN/∞, canonical WM-811K pixel levels) and
//!   sheds the poisoned wafers while the rest of the batch is served
//!   normally.
//! - **Deadline breach** — with [`ServeConfig::deadline`] set, a
//!   submission that overruns its budget sheds the not-yet-served
//!   remainder instead of stalling the caller. Time is read through
//!   the [`Clock`] trait, so tests drive deadline pressure
//!   deterministically with `faultsim::SimClock`.
//! - **Queue overflow** — with [`ServeConfig::max_queue_depth`] set,
//!   a submission deeper than the queue bound sheds the excess
//!   instead of letting latency grow without bound.
//!
//! Shed wafers are counted separately from model abstentions
//! everywhere: `Route::Shed` on the decision, `shed` /
//! `shed_per_reason` in [`eval::ServingSnapshot`], and the
//! `serve_shed_total{reason}` counters in telemetry. Coverage — the
//! concept-shift signal — is computed over model-served wafers only.
//!
//! # Example
//!
//! ```
//! use selective::{CheckpointBundle, SelectiveConfig, SelectiveModel};
//! use serve::{Engine, Route, ServeConfig};
//! use wafermap::gen::{generate, GenConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//! use wafermap::DefectClass;
//!
//! // An untrained tiny model stands in for a real training run.
//! let config = SelectiveConfig::for_grid(16).with_conv_channels([2, 2, 2]).with_fc(8);
//! let mut model = SelectiveModel::new(&config, 0);
//! let bundle = CheckpointBundle::export(&mut model);
//!
//! let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).unwrap();
//! let mut rng = StdRng::seed_from_u64(1);
//! let wafer = generate(DefectClass::Center, &GenConfig::new(16), &mut rng);
//! let decisions = engine.submit(&[wafer]).unwrap();
//! assert_eq!(decisions.len(), 1);
//! match decisions[0].route {
//!     Route::Predicted(_) | Route::Abstained(_) | Route::Shed(_) => {}
//! }
//! assert_eq!(engine.report().serving.wafers, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eval::{ServingSnapshot, ServingStats};
use selective::monitor::{CoverageAlarm, CoverageMonitor};
use selective::{calibrate_threshold, BundleError, CheckpointBundle, LoadError, SelectiveModel};
use serde::{Deserialize, Serialize};
use telemetry::{Counter, Gauge, Histogram, Registry, Snapshot};
use wafermap::{Dataset, DefectClass, Die, WaferMap};

/// Serving-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Wafers per micro-batch submitted to the model in one inference
    /// pass. Larger batches amortize per-call overhead and fan across
    /// the worker pool in batched blocks; 1 degenerates to per-wafer
    /// inference.
    pub micro_batch: usize,
    /// Initial selection threshold τ; [`Engine::calibrate`] replaces
    /// it with a coverage-calibrated value.
    pub threshold: f32,
    /// Coverage the deployed model is expected to sustain (the
    /// monitor's reference level).
    pub target_coverage: f64,
    /// Rolling-window size of the coverage monitor, in wafers.
    pub monitor_window: usize,
    /// Alarm when rolling coverage drops below
    /// `alarm_fraction · target_coverage`.
    pub alarm_fraction: f64,
    /// Latency / batch-size samples retained by the streaming stats
    /// and the latency histogram — the engine's memory bound: state is
    /// O(`stats_window` + `monitor_window`) no matter how many wafers
    /// stream through.
    pub stats_window: usize,
    /// Per-submission latency budget in seconds. When a submission
    /// overruns it, the not-yet-served remainder is shed to the reject
    /// option with [`ShedReason::DeadlineExceeded`] (checked at
    /// micro-batch boundaries — a batch already in flight completes).
    /// `None` disables deadline shedding.
    pub deadline: Option<f64>,
    /// Most wafers one submission may send to the model. Excess wafers
    /// are shed with [`ShedReason::QueueFull`] instead of growing the
    /// effective queue without bound. `None` disables the cap.
    pub max_queue_depth: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            micro_batch: 64,
            threshold: 0.5,
            target_coverage: 0.9,
            monitor_window: 64,
            alarm_fraction: 0.5,
            stats_window: telemetry::DEFAULT_WINDOW,
            deadline: None,
            max_queue_depth: None,
        }
    }
}

/// Monotonic time source for deadline enforcement.
///
/// Production engines use [`WallClock`]; tests install a
/// `faultsim::SimClock` (which implements this trait) via
/// [`Engine::with_clock`] so deadline pressure is deterministic and
/// independent of machine speed.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Elapsed time since an arbitrary fixed origin.
    fn now(&self) -> Duration;
}

/// Real monotonic time ([`Instant`]-backed). The default engine clock.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is the moment of construction.
    #[must_use]
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

impl Clock for faultsim::SimClock {
    fn now(&self) -> Duration {
        faultsim::SimClock::now(self)
    }
}

/// Why the serving layer shed a wafer to the reject option without
/// (fully) consulting the model. See the crate docs on
/// [graceful degradation](self#graceful-degradation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The raw input failed validation (shape, non-finite pixels, or
    /// non-canonical pixel levels) and never reached the model.
    InvalidInput,
    /// The submission overran its [`ServeConfig::deadline`]; this
    /// wafer was in the unserved remainder.
    DeadlineExceeded,
    /// The submission exceeded [`ServeConfig::max_queue_depth`]; this
    /// wafer was in the excess.
    QueueFull,
}

impl ShedReason {
    /// Every shed reason, in telemetry-label order.
    pub const ALL: [ShedReason; 3] =
        [ShedReason::InvalidInput, ShedReason::DeadlineExceeded, ShedReason::QueueFull];

    /// Stable label used for telemetry (`serve_shed_total{reason=…}`)
    /// and serving-stats breakdowns.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::InvalidInput => "invalid_input",
            ShedReason::DeadlineExceeded => "deadline_exceeded",
            ShedReason::QueueFull => "queue_full",
        }
    }

    fn index(self) -> usize {
        match self {
            ShedReason::InvalidInput => 0,
            ShedReason::DeadlineExceeded => 1,
            ShedReason::QueueFull => 2,
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where the engine routed one wafer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Route {
    /// The model committed to this label.
    Predicted(DefectClass),
    /// The model abstained; the payload is the label it *would* have
    /// predicted (useful for triage of the rejected stream).
    Abstained(DefectClass),
    /// The serving layer shed this wafer to the reject option without
    /// a model verdict; the payload says why. Shed wafers carry
    /// `confidence = 0` and `selection_score = 0` (never NaN, so
    /// decisions stay bit-comparable across runs) and do not feed the
    /// coverage monitor.
    Shed(ShedReason),
}

/// Decision for one submitted wafer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaferDecision {
    /// Commit-or-abstain routing.
    pub route: Route,
    /// Softmax probability of the (would-be) predicted class.
    pub confidence: f32,
    /// Selection-head score `g(x)`.
    pub selection_score: f32,
    /// Coverage alarm raised by this wafer's decision, if any.
    pub alarm: Option<CoverageAlarm>,
}

impl WaferDecision {
    /// Whether the model committed to a label.
    #[must_use]
    pub fn selected(&self) -> bool {
        matches!(self.route, Route::Predicted(_))
    }

    /// Whether the serving layer shed this wafer (and why).
    #[must_use]
    pub fn shed(&self) -> Option<ShedReason> {
        match self.route {
            Route::Shed(reason) => Some(reason),
            _ => None,
        }
    }
}

/// Tolerance around the canonical WM-811K pixel levels
/// (0 off-wafer, 0.5 pass, 1 fail) accepted by
/// [`Engine::submit_raw`]'s validator.
pub const PIXEL_LEVEL_TOLERANCE: f32 = 0.05;

/// An untyped wafer image as it arrives over the wire: a flat
/// row-major pixel buffer that has not yet been validated into a
/// [`WaferMap`]. This is the boundary where fault-injected inputs
/// (NaN pixels, truncated buffers, non-canonical levels) are caught
/// and shed instead of reaching the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawWafer {
    /// Dies per row.
    pub width: usize,
    /// Dies per column.
    pub height: usize,
    /// Row-major pixel intensities; canonical levels are 0 (off-wafer),
    /// 0.5 (pass) and 1 (fail), accepted within
    /// [`PIXEL_LEVEL_TOLERANCE`].
    pub pixels: Vec<f32>,
}

impl RawWafer {
    /// Encode a typed wafer map as a raw pixel buffer (the inverse of
    /// validation; handy for tests and for re-serving archived maps).
    #[must_use]
    pub fn from_map(map: &WaferMap) -> Self {
        let mut pixels = vec![0.0; map.width() * map.height()];
        map.write_image_into(&mut pixels);
        RawWafer { width: map.width(), height: map.height(), pixels }
    }
}

/// What [`Engine::submit_raw`]'s validator found wrong with one raw
/// wafer. Carried for diagnostics; the wafer itself is shed with
/// [`ShedReason::InvalidInput`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InputFault {
    /// The buffer's dimensions do not match the model's input grid.
    ShapeMismatch {
        /// Model input side length.
        expected: usize,
        /// The raw buffer's claimed dimensions.
        found: (usize, usize),
    },
    /// `pixels.len()` disagrees with `width × height`.
    LengthMismatch {
        /// `width × height`.
        expected: usize,
        /// Actual buffer length.
        found: usize,
    },
    /// A pixel is NaN or infinite.
    NonFinite {
        /// Index of the offending pixel.
        index: usize,
    },
    /// A finite pixel is not within [`PIXEL_LEVEL_TOLERANCE`] of any
    /// canonical level.
    IllegalLevel {
        /// Index of the offending pixel.
        index: usize,
        /// Its value.
        value: f32,
    },
}

impl fmt::Display for InputFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputFault::ShapeMismatch { expected, found } => write!(
                f,
                "raw wafer is {}x{} but the model expects {expected}x{expected}",
                found.0, found.1
            ),
            InputFault::LengthMismatch { expected, found } => {
                write!(f, "pixel buffer holds {found} values, dimensions imply {expected}")
            }
            InputFault::NonFinite { index } => write!(f, "pixel {index} is not finite"),
            InputFault::IllegalLevel { index, value } => {
                write!(f, "pixel {index} = {value} is not a canonical wafer level")
            }
        }
    }
}

/// Errors constructing or driving an [`Engine`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The checkpoint bundle could not be turned into a model.
    Bundle(BundleError),
    /// The bundled model predicts more classes than [`DefectClass`]
    /// can name, so decisions could not be routed.
    UnsupportedClasses {
        /// Classes in the bundled model.
        n_classes: usize,
    },
    /// A submitted wafer's grid does not match the model input.
    GridMismatch {
        /// Model input side length.
        expected: usize,
        /// Offending wafer's dimensions.
        found: (usize, usize),
    },
    /// [`Engine::calibrate`] was handed an empty calibration set —
    /// there are no selection scores to pick a threshold from.
    EmptyCalibration,
    /// The configuration is unusable (zero micro-batch or window,
    /// out-of-range coverage or alarm fraction).
    InvalidConfig(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bundle(e) => write!(f, "cannot load bundle: {e}"),
            ServeError::UnsupportedClasses { n_classes } => {
                write!(
                    f,
                    "bundled model has {n_classes} classes; serving routes require at most {}",
                    DefectClass::COUNT
                )
            }
            ServeError::GridMismatch { expected, found } => write!(
                f,
                "wafer is {}x{} but the model expects {expected}x{expected}",
                found.0, found.1
            ),
            ServeError::EmptyCalibration => {
                write!(f, "calibration set is empty; cannot pick a threshold")
            }
            ServeError::InvalidConfig(why) => write!(f, "invalid serve config: {why}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bundle(e) => Some(e),
            _ => None,
        }
    }
}

/// Report of a serving session: configuration, calibrated threshold,
/// monitor state and streaming metrics. Serializable — this is the
/// payload of [`Engine::report_json`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Selection threshold currently in force.
    pub threshold: f32,
    /// Wafers per micro-batch.
    pub micro_batch: usize,
    /// Coverage the monitor holds the model to.
    pub target_coverage: f64,
    /// Rolling coverage over the monitor window.
    pub rolling_coverage: f64,
    /// Coverage level below which alarms fire.
    pub alarm_line: f64,
    /// Coverage alarms raised so far.
    pub alarms: u64,
    /// Most recent alarm, if any ever fired.
    pub last_alarm: Option<CoverageAlarm>,
    /// Streaming throughput / latency / per-class decision metrics.
    pub serving: ServingSnapshot,
    /// Point-in-time view of the engine's telemetry registry (the
    /// same data [`Engine::prometheus`] renders for scrapes).
    pub telemetry: Snapshot,
}

/// Metric handles the engine records into on the hot path; resolved
/// once at construction so `submit` never does a registry lookup.
#[derive(Debug)]
struct EngineMetrics {
    wafers: Counter,
    predicted: Counter,
    abstained: Counter,
    batches: Counter,
    alarms: Counter,
    calibrations: Counter,
    threshold: Gauge,
    rolling_coverage: Gauge,
    batch_seconds: Histogram,
    batch_size: Histogram,
    wafer_compute_seconds: Histogram,
    /// One labelled `serve_shed_total{reason=…}` counter per
    /// [`ShedReason`], indexed by [`ShedReason::index`].
    shed: [Counter; 3],
}

impl EngineMetrics {
    fn new(registry: &Registry, window: usize) -> Self {
        EngineMetrics {
            wafers: registry.counter("serve_wafers_total", "Wafers routed by the engine"),
            predicted: registry
                .counter("serve_predicted_total", "Wafers the model committed a label to"),
            abstained: registry
                .counter("serve_abstained_total", "Wafers routed to the reject option"),
            batches: registry.counter("serve_batches_total", "Micro-batches run"),
            alarms: registry.counter("serve_alarms_total", "Coverage alarms raised"),
            calibrations: registry
                .counter("serve_calibrations_total", "Threshold calibrations performed"),
            threshold: registry.gauge("serve_threshold", "Selection threshold tau in force"),
            rolling_coverage: registry
                .gauge("serve_rolling_coverage", "Coverage over the monitor window"),
            batch_seconds: registry.histogram(
                "serve_batch_seconds",
                "Micro-batch inference latency in seconds",
                window,
            ),
            batch_size: registry.histogram("serve_batch_size", "Wafers per micro-batch", window),
            wafer_compute_seconds: registry.histogram(
                "serve_wafer_compute_seconds",
                "Per-wafer model compute time in seconds (excludes batching wait)",
                window,
            ),
            shed: ShedReason::ALL.map(|reason| {
                registry.counter_with(
                    "serve_shed_total",
                    &[("reason", reason.as_str())],
                    "Wafers shed to the reject option by the serving layer",
                )
            }),
        }
    }
}

/// Batched selective-inference engine. See the [crate docs](self) for
/// the serving architecture.
#[derive(Debug)]
pub struct Engine {
    model: SelectiveModel,
    micro_batch: usize,
    threshold: f32,
    target_coverage: f64,
    monitor: CoverageMonitor,
    stats: ServingStats,
    alarms: Vec<CoverageAlarm>,
    registry: Registry,
    metrics: EngineMetrics,
    /// Micro-batch staging tensor, grown once to
    /// `micro_batch × grid²` and refilled in place for every batch
    /// (the workspace memory model — see `nn::workspace`).
    staging: nn::Tensor,
    /// Reusable per-batch decision scratch for the stats recorder.
    batch_decisions: Vec<(usize, bool)>,
    /// Per-submission latency budget; `None` disables deadline sheds.
    deadline: Option<Duration>,
    /// Per-submission model-bound wafer cap; `None` disables it.
    max_queue_depth: Option<usize>,
    /// Time source for deadline enforcement (wall clock by default,
    /// swappable for deterministic tests via [`Engine::with_clock`]).
    clock: Arc<dyn Clock>,
}

impl Engine {
    /// Build an engine from a checkpoint bundle: rebuilds the bundled
    /// model (architecture + parameters) and starts a fresh coverage
    /// monitor.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Bundle`] for corrupted bundles,
    /// [`ServeError::UnsupportedClasses`] when the model's classes
    /// cannot be routed to [`DefectClass`] labels, and
    /// [`ServeError::InvalidConfig`] for unusable configurations.
    pub fn from_bundle(bundle: &CheckpointBundle, config: ServeConfig) -> Result<Self, ServeError> {
        if config.micro_batch == 0 {
            return Err(ServeError::InvalidConfig("micro_batch must be non-zero".into()));
        }
        if config.monitor_window == 0 {
            return Err(ServeError::InvalidConfig("monitor_window must be non-zero".into()));
        }
        if !(config.target_coverage > 0.0 && config.target_coverage <= 1.0) {
            return Err(ServeError::InvalidConfig("target_coverage must be in (0, 1]".into()));
        }
        if !(config.alarm_fraction > 0.0 && config.alarm_fraction <= 1.0) {
            return Err(ServeError::InvalidConfig("alarm_fraction must be in (0, 1]".into()));
        }
        if config.stats_window == 0 {
            return Err(ServeError::InvalidConfig("stats_window must be non-zero".into()));
        }
        if let Some(deadline) = config.deadline {
            if !(deadline.is_finite() && deadline > 0.0) {
                return Err(ServeError::InvalidConfig(
                    "deadline must be a finite positive number of seconds".into(),
                ));
            }
        }
        if config.max_queue_depth == Some(0) {
            return Err(ServeError::InvalidConfig(
                "max_queue_depth of zero would shed every wafer".into(),
            ));
        }
        let n_classes = bundle.model_config().n_classes;
        if n_classes > DefectClass::COUNT {
            return Err(ServeError::UnsupportedClasses { n_classes });
        }
        let model = bundle.build_model().map_err(ServeError::Bundle)?;
        let registry = Registry::new();
        let metrics = EngineMetrics::new(&registry, config.stats_window);
        metrics.threshold.set(f64::from(config.threshold));
        Ok(Engine {
            model,
            micro_batch: config.micro_batch,
            threshold: config.threshold,
            target_coverage: config.target_coverage,
            monitor: CoverageMonitor::new(
                config.target_coverage,
                config.monitor_window,
                config.alarm_fraction,
            ),
            stats: ServingStats::with_window(n_classes, config.stats_window),
            alarms: Vec::new(),
            registry,
            metrics,
            staging: nn::Tensor::default(),
            batch_decisions: Vec::new(),
            deadline: config.deadline.map(Duration::from_secs_f64),
            max_queue_depth: config.max_queue_depth,
            clock: Arc::new(WallClock::new()),
        })
    }

    /// Replace the engine's time source — used by tests to drive
    /// deadline shedding deterministically with `faultsim::SimClock`.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// The selection threshold currently in force.
    #[must_use]
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Side length of the model's input grid.
    #[must_use]
    pub fn grid(&self) -> usize {
        self.model.config().grid
    }

    /// Calibrate the selection threshold on a held-out calibration set
    /// so that a fraction `coverage` of it clears τ (exact-or-under;
    /// see [`selective::calibrate_threshold`]). Replaces the engine's
    /// threshold and returns the new value.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::GridMismatch`] when the calibration set's
    /// grid does not match the model input (the same validation
    /// [`Engine::submit`] applies), and
    /// [`ServeError::EmptyCalibration`] when the set has no samples —
    /// a threshold picked from zero scores would silently default
    /// rather than reflect the requested coverage.
    pub fn calibrate(&mut self, calibration: &Dataset, coverage: f64) -> Result<f32, ServeError> {
        if calibration.is_empty() {
            return Err(ServeError::EmptyCalibration);
        }
        let grid = self.grid();
        if calibration.grid() != grid {
            return Err(ServeError::GridMismatch {
                expected: grid,
                found: (calibration.grid(), calibration.grid()),
            });
        }
        let scores = self.model.infer_selection_scores(calibration);
        self.threshold = calibrate_threshold(&scores, coverage);
        self.metrics.calibrations.inc();
        self.metrics.threshold.set(f64::from(self.threshold));
        Ok(self.threshold)
    }

    /// Run selective inference over `wafers` in micro-batches,
    /// returning one decision per wafer in input order. Every
    /// model-served decision is fed to the coverage monitor; any alarm
    /// it raises is attached to the wafer that triggered it. With a
    /// [`ServeConfig::deadline`] or [`ServeConfig::max_queue_depth`]
    /// set, wafers the budget cannot cover come back as
    /// [`Route::Shed`] instead (see the crate docs on
    /// [graceful degradation](self#graceful-degradation)).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::GridMismatch`] if any wafer does not
    /// match the model's input grid (no partial work is performed).
    /// Typed [`WaferMap`]s are trusted inputs — a wrong grid here is a
    /// caller bug, not line noise, so the whole batch is rejected
    /// rather than shed. Untrusted buffers go through
    /// [`Engine::submit_raw`], which sheds instead.
    pub fn submit(&mut self, wafers: &[WaferMap]) -> Result<Vec<WaferDecision>, ServeError> {
        let grid = self.grid();
        for w in wafers {
            if w.width() != grid || w.height() != grid {
                return Err(ServeError::GridMismatch {
                    expected: grid,
                    found: (w.width(), w.height()),
                });
            }
        }
        let pending: Vec<(usize, &WaferMap)> = wafers.iter().enumerate().collect();
        Ok(self.route_pending(pending, wafers.len(), Vec::new()))
    }

    /// Validate one untyped pixel buffer against the model's input
    /// contract. On success the buffer is promoted to a typed
    /// [`WaferMap`]; on failure the first fault found is returned.
    ///
    /// # Errors
    ///
    /// Returns the first [`InputFault`] encountered: shape or length
    /// mismatch, a non-finite pixel, or a pixel outside
    /// [`PIXEL_LEVEL_TOLERANCE`] of the canonical levels.
    pub fn validate_raw(&self, raw: &RawWafer) -> Result<WaferMap, InputFault> {
        let grid = self.grid();
        if raw.width != grid || raw.height != grid {
            return Err(InputFault::ShapeMismatch {
                expected: grid,
                found: (raw.width, raw.height),
            });
        }
        let expected = raw.width * raw.height;
        if raw.pixels.len() != expected {
            return Err(InputFault::LengthMismatch { expected, found: raw.pixels.len() });
        }
        let mut dies = Vec::with_capacity(raw.pixels.len());
        for (index, &value) in raw.pixels.iter().enumerate() {
            if !value.is_finite() {
                return Err(InputFault::NonFinite { index });
            }
            let die = if (value - Die::OffWafer.intensity()).abs() <= PIXEL_LEVEL_TOLERANCE {
                Die::OffWafer
            } else if (value - Die::Pass.intensity()).abs() <= PIXEL_LEVEL_TOLERANCE {
                Die::Pass
            } else if (value - Die::Fail.intensity()).abs() <= PIXEL_LEVEL_TOLERANCE {
                Die::Fail
            } else {
                return Err(InputFault::IllegalLevel { index, value });
            };
            dies.push(die);
        }
        WaferMap::from_dies(raw.width, raw.height, dies)
            .map_err(|_| InputFault::LengthMismatch { expected, found: 0 })
    }

    /// Serve a batch of untyped pixel buffers as they would arrive
    /// over the wire. Each buffer is validated first; invalid wafers
    /// are shed with [`ShedReason::InvalidInput`] while the rest of
    /// the batch is served normally — one poisoned wafer never takes
    /// down its neighbours. Always returns one decision per input, in
    /// input order.
    #[must_use]
    pub fn submit_raw(&mut self, wafers: &[RawWafer]) -> Vec<WaferDecision> {
        let mut pre_shed: Vec<(usize, ShedReason)> = Vec::new();
        let mut valid: Vec<(usize, WaferMap)> = Vec::new();
        for (index, raw) in wafers.iter().enumerate() {
            match self.validate_raw(raw) {
                Ok(map) => valid.push((index, map)),
                Err(_) => pre_shed.push((index, ShedReason::InvalidInput)),
            }
        }
        let pending: Vec<(usize, &WaferMap)> =
            valid.iter().map(|(index, map)| (*index, map)).collect();
        self.route_pending(pending, wafers.len(), pre_shed)
    }

    fn shed_decision(reason: ShedReason) -> WaferDecision {
        WaferDecision {
            route: Route::Shed(reason),
            confidence: 0.0,
            selection_score: 0.0,
            alarm: None,
        }
    }

    fn record_shed(&mut self, reason: ShedReason) {
        self.stats.record_shed(reason.as_str());
        self.metrics.shed[reason.index()].inc();
    }

    /// Core routing loop shared by [`Engine::submit`] and
    /// [`Engine::submit_raw`]: `pending` holds `(input slot, wafer)`
    /// pairs bound for the model, `total` the size of the original
    /// submission, `pre_shed` slots already shed by validation. Applies
    /// queue-depth shedding up front, then serves micro-batches until
    /// done or the deadline passes, shedding the remainder.
    fn route_pending(
        &mut self,
        mut pending: Vec<(usize, &WaferMap)>,
        total: usize,
        pre_shed: Vec<(usize, ShedReason)>,
    ) -> Vec<WaferDecision> {
        let mut out: Vec<Option<WaferDecision>> = vec![None; total];
        for (slot, reason) in pre_shed {
            self.record_shed(reason);
            out[slot] = Some(Self::shed_decision(reason));
        }
        if let Some(depth) = self.max_queue_depth {
            if pending.len() > depth {
                for &(slot, _) in &pending[depth..] {
                    self.record_shed(ShedReason::QueueFull);
                    out[slot] = Some(Self::shed_decision(ShedReason::QueueFull));
                }
                pending.truncate(depth);
            }
        }
        let grid = self.grid();
        let pixels = grid * grid;
        let submit_start = self.deadline.map(|_| self.clock.now());
        let mut offset = 0;
        while offset < pending.len() {
            if let (Some(deadline), Some(start)) = (self.deadline, submit_start) {
                if self.clock.now().saturating_sub(start) > deadline {
                    for &(slot, _) in &pending[offset..] {
                        self.record_shed(ShedReason::DeadlineExceeded);
                        out[slot] = Some(Self::shed_decision(ShedReason::DeadlineExceeded));
                    }
                    break;
                }
            }
            let end = (offset + self.micro_batch).min(pending.len());
            let chunk = &pending[offset..end];
            self.staging.resize(&[chunk.len(), 1, grid, grid]);
            for (stage, &(_, w)) in self.staging.data_mut().chunks_exact_mut(pixels).zip(chunk) {
                w.write_image_into(stage);
            }
            let start = Instant::now();
            let (preds, compute_secs) =
                self.model.infer_predict_timed(&self.staging, self.threshold);
            let latency = start.elapsed().as_secs_f64();
            self.batch_decisions.clear();
            let mut predicted = 0u64;
            let mut batch_alarms = 0u64;
            for (p, &(slot, _)) in preds.iter().zip(chunk) {
                let class = DefectClass::from_index(p.label).expect("validated class range");
                let alarm = self.monitor.observe(p.selected);
                if let Some(a) = alarm {
                    self.alarms.push(a);
                    batch_alarms += 1;
                }
                if p.selected {
                    predicted += 1;
                }
                self.batch_decisions.push((p.label, p.selected));
                out[slot] = Some(WaferDecision {
                    route: if p.selected {
                        Route::Predicted(class)
                    } else {
                        Route::Abstained(class)
                    },
                    confidence: p.confidence,
                    selection_score: p.selection_score,
                    alarm,
                });
            }
            self.stats.record_batch_timed(latency, &self.batch_decisions, &compute_secs);
            let m = &self.metrics;
            m.batches.inc();
            m.wafers.add(preds.len() as u64);
            m.predicted.add(predicted);
            m.abstained.add(preds.len() as u64 - predicted);
            m.alarms.add(batch_alarms);
            m.batch_seconds.observe(latency);
            m.batch_size.observe(preds.len() as f64);
            for &c in &compute_secs {
                m.wafer_compute_seconds.observe(c);
            }
            m.rolling_coverage.set(self.monitor.rolling_coverage());
            offset = end;
        }
        out.into_iter()
            .map(|decision| decision.expect("every submitted wafer is routed exactly once"))
            .collect()
    }

    /// Coverage alarms raised so far, in order.
    #[must_use]
    pub fn alarms(&self) -> &[CoverageAlarm] {
        &self.alarms
    }

    /// Point-in-time report of the serving session.
    #[must_use]
    pub fn report(&self) -> ServeReport {
        ServeReport {
            threshold: self.threshold,
            micro_batch: self.micro_batch,
            target_coverage: self.target_coverage,
            rolling_coverage: self.monitor.rolling_coverage(),
            alarm_line: self.monitor.alarm_line(),
            alarms: self.alarms.len() as u64,
            last_alarm: self.alarms.last().copied(),
            serving: self.stats.snapshot(),
            telemetry: self.registry.snapshot(),
        }
    }

    /// The report as pretty-printed JSON — the payload a status
    /// endpoint would return.
    #[must_use]
    pub fn report_json(&self) -> String {
        serde_json::to_string_pretty(&self.report()).expect("report serializes")
    }

    /// The engine's telemetry registry. Handy for tests or for merging
    /// engine metrics into a wider process registry snapshot.
    #[must_use]
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    /// The engine's metrics in the Prometheus text exposition format —
    /// the payload a `/metrics` scrape endpoint would return.
    #[must_use]
    pub fn prometheus(&self) -> String {
        self.registry.prometheus()
    }
}

/// Bounded-retry policy for transient checkpoint-load failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total load attempts (first try included). Zero is treated as 1.
    pub attempts: u32,
    /// Backoff before the first retry.
    pub initial_backoff: Duration,
    /// Ceiling on the (doubling) backoff between retries.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep before retry number `retry` (0-based),
    /// doubling from [`RetryPolicy::initial_backoff`] and capped at
    /// [`RetryPolicy::max_backoff`].
    #[must_use]
    pub fn backoff(&self, retry: u32) -> Duration {
        let doubled =
            self.initial_backoff.checked_mul(1u32 << retry.min(20)).unwrap_or(self.max_backoff);
        doubled.min(self.max_backoff)
    }
}

/// Load a checkpoint bundle, retrying transient I/O failures with
/// bounded exponential backoff. Only [`LoadError::Io`] is retried —
/// corruption ([`LoadError::Truncated`], [`LoadError::ChecksumMismatch`],
/// …) is deterministic, so retrying would only delay the fallback to
/// an older bundle ([`CheckpointBundle::load_with_fallback`]).
///
/// `sleep` performs the backoff wait; production callers pass
/// `std::thread::sleep`, tests pass a recorder to assert the schedule
/// without slowing the suite down.
///
/// # Errors
///
/// The last [`LoadError`] once attempts are exhausted, or immediately
/// for non-transient errors.
pub fn load_bundle_with_retry<P: AsRef<Path>, S: FnMut(Duration)>(
    path: P,
    policy: RetryPolicy,
    mut sleep: S,
) -> Result<CheckpointBundle, LoadError> {
    let attempts = policy.attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        match CheckpointBundle::load(path.as_ref()) {
            Ok(bundle) => return Ok(bundle),
            Err(err @ LoadError::Io { .. }) => {
                if attempt + 1 < attempts {
                    sleep(policy.backoff(attempt));
                }
                last = Some(err);
            }
            Err(err) => return Err(err),
        }
    }
    Err(last.expect("at least one attempt was made"))
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selective::SelectiveConfig;
    use wafermap::gen::{generate, GenConfig};

    use super::*;

    fn tiny_bundle(seed: u64) -> CheckpointBundle {
        let config = SelectiveConfig::for_grid(16).with_conv_channels([2, 2, 2]).with_fc(8);
        let mut model = SelectiveModel::new(&config, seed);
        CheckpointBundle::export(&mut model)
    }

    fn wafers(n: usize, grid: usize, seed: u64) -> Vec<WaferMap> {
        let cfg = GenConfig::new(grid);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let class = DefectClass::from_index(i % DefectClass::COUNT).expect("valid");
                generate(class, &cfg, &mut rng)
            })
            .collect()
    }

    #[test]
    fn submit_routes_every_wafer_in_order() {
        let bundle = tiny_bundle(1);
        let mut engine =
            Engine::from_bundle(&bundle, ServeConfig { micro_batch: 4, ..ServeConfig::default() })
                .expect("valid bundle");
        let input = wafers(10, 16, 2);
        let decisions = engine.submit(&input).expect("matching grid");
        assert_eq!(decisions.len(), 10);
        let report = engine.report();
        assert_eq!(report.serving.wafers, 10);
        assert_eq!(report.serving.batches, 3); // 4 + 4 + 2
        assert_eq!(
            report.serving.predicted + report.serving.abstained,
            10,
            "every wafer is routed exactly once"
        );
    }

    #[test]
    fn grid_mismatch_is_rejected_without_partial_work() {
        let bundle = tiny_bundle(3);
        let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).expect("valid");
        let mut input = wafers(3, 16, 4);
        input.push(WaferMap::blank(24, 24));
        let err = engine.submit(&input).expect_err("wrong grid");
        assert!(matches!(err, ServeError::GridMismatch { expected: 16, found: (24, 24) }));
        assert_eq!(engine.report().serving.wafers, 0, "no partial batch was recorded");
    }

    #[test]
    fn calibration_sets_exact_or_under_coverage_on_the_calibration_set() {
        let bundle = tiny_bundle(5);
        let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).expect("valid");
        let mut calib = Dataset::new(16);
        let cfg = GenConfig::new(16);
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..40 {
            let class = DefectClass::from_index(i % DefectClass::COUNT).expect("valid");
            calib.push(wafermap::gen::Sample::original(generate(class, &cfg, &mut rng), class));
        }
        let tau = engine.calibrate(&calib, 0.5).expect("valid calibration set");
        assert_eq!(engine.threshold(), tau);
        let maps: Vec<WaferMap> = calib.samples().iter().map(|s| s.map.clone()).collect();
        let decisions = engine.submit(&maps).expect("matching grid");
        let kept = decisions.iter().filter(|d| d.selected()).count();
        assert!(kept <= 20, "calibration overshot: kept {kept} of 40 at coverage 0.5");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bundle = tiny_bundle(7);
        for bad in [
            ServeConfig { micro_batch: 0, ..ServeConfig::default() },
            ServeConfig { monitor_window: 0, ..ServeConfig::default() },
            ServeConfig { target_coverage: 0.0, ..ServeConfig::default() },
            ServeConfig { alarm_fraction: 1.5, ..ServeConfig::default() },
            ServeConfig { stats_window: 0, ..ServeConfig::default() },
            ServeConfig { deadline: Some(0.0), ..ServeConfig::default() },
            ServeConfig { deadline: Some(f64::NAN), ..ServeConfig::default() },
            ServeConfig { deadline: Some(-1.0), ..ServeConfig::default() },
            ServeConfig { max_queue_depth: Some(0), ..ServeConfig::default() },
        ] {
            assert!(matches!(Engine::from_bundle(&bundle, bad), Err(ServeError::InvalidConfig(_))));
        }
    }

    #[test]
    fn raw_submission_sheds_poisoned_wafers_and_serves_the_rest() {
        let bundle = tiny_bundle(21);
        let mut engine =
            Engine::from_bundle(&bundle, ServeConfig { micro_batch: 4, ..ServeConfig::default() })
                .expect("valid");
        let maps = wafers(5, 16, 22);
        let mut raw: Vec<RawWafer> = maps.iter().map(RawWafer::from_map).collect();
        raw[1].pixels[7] = f32::NAN;
        raw[3].pixels[0] = 0.23; // non-canonical level
        let decisions = engine.submit_raw(&raw);
        assert_eq!(decisions.len(), 5);
        assert_eq!(decisions[1].shed(), Some(ShedReason::InvalidInput));
        assert_eq!(decisions[3].shed(), Some(ShedReason::InvalidInput));
        for i in [0usize, 2, 4] {
            assert!(decisions[i].shed().is_none(), "wafer {i} should be model-served");
        }
        let report = engine.report();
        assert_eq!(report.serving.wafers, 3, "shed wafers never reach the model");
        assert_eq!(report.serving.shed, 2);
        assert_eq!(report.serving.submitted, 5);
    }

    #[test]
    fn valid_raw_submission_matches_typed_submission_bitwise() {
        let bundle = tiny_bundle(23);
        let config = ServeConfig { micro_batch: 4, ..ServeConfig::default() };
        let maps = wafers(6, 16, 24);
        let mut typed = Engine::from_bundle(&bundle, config).expect("valid");
        let mut raw_engine = Engine::from_bundle(&bundle, config).expect("valid");
        let expect = typed.submit(&maps).expect("matching grid");
        let raw: Vec<RawWafer> = maps.iter().map(RawWafer::from_map).collect();
        let got = raw_engine.submit_raw(&raw);
        assert_eq!(expect, got, "raw path must not perturb decisions");
    }

    #[test]
    fn queue_depth_cap_sheds_the_excess_in_order() {
        let bundle = tiny_bundle(25);
        let mut engine = Engine::from_bundle(
            &bundle,
            ServeConfig { micro_batch: 4, max_queue_depth: Some(3), ..ServeConfig::default() },
        )
        .expect("valid");
        let decisions = engine.submit(&wafers(5, 16, 26)).expect("matching grid");
        assert!(decisions[..3].iter().all(|d| d.shed().is_none()));
        assert!(decisions[3..].iter().all(|d| d.shed() == Some(ShedReason::QueueFull)));
        let report = engine.report();
        assert_eq!(report.serving.wafers, 3);
        assert_eq!(report.serving.shed, 2);
    }

    #[test]
    fn deadline_sheds_remainder_under_sim_clock() {
        let bundle = tiny_bundle(27);
        // The sim clock advances 30ms per read; deadline 50ms. The
        // pre-loop check reads once per micro-batch, so batch 1 starts
        // at t=30ms (within budget), batch 2 would start at t=60ms
        // (over budget) and its wafers are shed.
        let clock = Arc::new(faultsim::SimClock::with_step(Duration::from_millis(30)));
        let mut engine = Engine::from_bundle(
            &bundle,
            ServeConfig { micro_batch: 2, deadline: Some(0.05), ..ServeConfig::default() },
        )
        .expect("valid")
        .with_clock(clock);
        let decisions = engine.submit(&wafers(6, 16, 28)).expect("matching grid");
        assert!(decisions[..2].iter().all(|d| d.shed().is_none()));
        assert!(decisions[2..].iter().all(|d| d.shed() == Some(ShedReason::DeadlineExceeded)));
        let report = engine.report();
        assert_eq!(report.serving.wafers, 2);
        assert_eq!(report.serving.shed, 4);
    }

    #[test]
    fn shed_telemetry_is_labelled_per_reason() {
        let bundle = tiny_bundle(29);
        let mut engine = Engine::from_bundle(
            &bundle,
            ServeConfig { max_queue_depth: Some(1), ..ServeConfig::default() },
        )
        .expect("valid");
        let maps = wafers(3, 16, 30);
        let mut raw: Vec<RawWafer> = maps.iter().map(RawWafer::from_map).collect();
        raw[0].pixels[0] = f32::INFINITY;
        let _ = engine.submit_raw(&raw);
        let snapshot = engine.telemetry().snapshot();
        let shed = |reason: &str| {
            snapshot
                .counters
                .iter()
                .find(|c| {
                    c.name == "serve_shed_total"
                        && c.labels.iter().any(|(k, v)| k == "reason" && v == reason)
                })
                .map(|c| c.value)
                .unwrap_or_else(|| panic!("missing serve_shed_total{{reason={reason}}}"))
        };
        assert_eq!(shed("invalid_input"), 1);
        assert_eq!(shed("queue_full"), 1);
        assert_eq!(shed("deadline_exceeded"), 0);
    }

    #[test]
    fn validate_raw_reports_the_fault_kind() {
        let bundle = tiny_bundle(31);
        let engine = Engine::from_bundle(&bundle, ServeConfig::default()).expect("valid");
        let good = RawWafer::from_map(&wafers(1, 16, 32)[0]);
        assert!(engine.validate_raw(&good).is_ok());

        let mut shape = good.clone();
        shape.width = 24;
        shape.height = 24;
        assert!(matches!(
            engine.validate_raw(&shape),
            Err(InputFault::ShapeMismatch { expected: 16, found: (24, 24) })
        ));

        let mut short = good.clone();
        short.pixels.pop();
        assert!(matches!(
            engine.validate_raw(&short),
            Err(InputFault::LengthMismatch { expected: 256, found: 255 })
        ));

        let mut nan = good.clone();
        nan.pixels[9] = f32::NAN;
        assert!(matches!(engine.validate_raw(&nan), Err(InputFault::NonFinite { index: 9 })));

        let mut level = good;
        level.pixels[4] = 0.77;
        assert!(matches!(
            engine.validate_raw(&level),
            Err(InputFault::IllegalLevel { index: 4, .. })
        ));
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            attempts: 5,
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(350),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(100));
        assert_eq!(policy.backoff(1), Duration::from_millis(200));
        assert_eq!(policy.backoff(2), Duration::from_millis(350));
        assert_eq!(policy.backoff(30), Duration::from_millis(350));
    }

    #[test]
    fn load_retry_gives_up_after_bounded_attempts_on_io_errors() {
        let missing = std::env::temp_dir().join("wm-serve-retry-missing.bundle.json");
        let _ = std::fs::remove_file(&missing);
        let mut sleeps = Vec::new();
        let err = load_bundle_with_retry(
            &missing,
            RetryPolicy {
                attempts: 3,
                initial_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(15),
            },
            |d| sleeps.push(d),
        )
        .expect_err("file does not exist");
        assert!(matches!(err, LoadError::Io { .. }));
        assert_eq!(
            sleeps,
            vec![Duration::from_millis(10), Duration::from_millis(15)],
            "two backoffs between three attempts, doubled then capped"
        );
    }

    #[test]
    fn calibrate_rejects_grid_mismatch_without_changing_threshold() {
        let bundle = tiny_bundle(11);
        let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).expect("valid");
        let before = engine.threshold();
        // 24-grid calibration set against a 16-grid model.
        let mut calib = Dataset::new(24);
        let cfg = GenConfig::new(24);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..4 {
            calib.push(wafermap::gen::Sample::original(
                generate(DefectClass::Center, &cfg, &mut rng),
                DefectClass::Center,
            ));
        }
        let err = engine.calibrate(&calib, 0.9).expect_err("mismatched grid");
        assert!(matches!(err, ServeError::GridMismatch { expected: 16, found: (24, 24) }));
        assert_eq!(engine.threshold(), before, "failed calibration must not move tau");
    }

    #[test]
    fn calibrate_rejects_empty_set() {
        let bundle = tiny_bundle(13);
        let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).expect("valid");
        let err = engine.calibrate(&Dataset::new(16), 0.9).expect_err("empty set");
        assert!(matches!(err, ServeError::EmptyCalibration));
    }

    #[test]
    fn report_carries_telemetry_in_both_formats() {
        let bundle = tiny_bundle(15);
        let mut engine =
            Engine::from_bundle(&bundle, ServeConfig { micro_batch: 4, ..ServeConfig::default() })
                .expect("valid");
        let _ = engine.submit(&wafers(10, 16, 16)).expect("matching grid");
        let report = engine.report();
        assert!(!report.telemetry.is_empty());
        let find = |name: &str| {
            report
                .telemetry
                .counters
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .value
        };
        assert_eq!(find("serve_wafers_total"), 10);
        assert_eq!(find("serve_batches_total"), 3);
        assert_eq!(
            find("serve_predicted_total") + find("serve_abstained_total"),
            10,
            "telemetry counters must agree with the routed wafer count"
        );
        let text = engine.prometheus();
        let parsed = telemetry::parse_exposition(&text).expect("valid exposition");
        assert!(parsed.samples > 0);
        assert!(parsed.families.iter().any(|(n, _)| n == "serve_batch_seconds"));
    }

    #[test]
    fn report_json_parses_back() {
        let bundle = tiny_bundle(8);
        let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).expect("valid");
        let _ = engine.submit(&wafers(5, 16, 9)).expect("matching grid");
        let report: ServeReport =
            serde_json::from_str(&engine.report_json()).expect("valid JSON report");
        assert_eq!(report, engine.report());
    }
}
