//! Batched selective-inference serving — the deployment half of the
//! paper's Section IV-D: a trained selective model behind an engine
//! that routes each incoming wafer to a committed prediction or the
//! reject option, watches rolling coverage for concept shift, and
//! reports operational metrics.
//!
//! The serving path is `train → checkpoint → serve → monitor`:
//!
//! 1. Training exports a [`CheckpointBundle`] (architecture +
//!    parameters, versioned on disk).
//! 2. [`Engine::from_bundle`] rebuilds the model and
//!    [`Engine::calibrate`] picks the selection threshold τ from a
//!    held-out calibration set at a target coverage
//!    ([`selective::calibrate_threshold`] — exact-or-under).
//! 3. [`Engine::submit`] runs micro-batched prediction on the no-grad
//!    inference path (`selective::SelectiveModel::infer_predict`):
//!    each micro-batch fans out across the `nn::pool` worker pool in
//!    small batched blocks — no backward caches, thread-local scratch,
//!    results independent of the pool size — and yields one
//!    [`WaferDecision`] per wafer.
//! 4. Every decision feeds a [`CoverageMonitor`]; a sustained coverage
//!    collapse (the paper's concept-shift signal) surfaces as
//!    [`CoverageAlarm`]s on the decisions and in the report.
//!
//! # Example
//!
//! ```
//! use selective::{CheckpointBundle, SelectiveConfig, SelectiveModel};
//! use serve::{Engine, Route, ServeConfig};
//! use wafermap::gen::{generate, GenConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//! use wafermap::DefectClass;
//!
//! // An untrained tiny model stands in for a real training run.
//! let config = SelectiveConfig::for_grid(16).with_conv_channels([2, 2, 2]).with_fc(8);
//! let mut model = SelectiveModel::new(&config, 0);
//! let bundle = CheckpointBundle::export(&mut model);
//!
//! let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).unwrap();
//! let mut rng = StdRng::seed_from_u64(1);
//! let wafer = generate(DefectClass::Center, &GenConfig::new(16), &mut rng);
//! let decisions = engine.submit(&[wafer]).unwrap();
//! assert_eq!(decisions.len(), 1);
//! match decisions[0].route {
//!     Route::Predicted(_) | Route::Abstained(_) => {}
//! }
//! assert_eq!(engine.report().serving.wafers, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

use eval::{ServingSnapshot, ServingStats};
use selective::monitor::{CoverageAlarm, CoverageMonitor};
use selective::{calibrate_threshold, BundleError, CheckpointBundle, SelectiveModel};
use serde::{Deserialize, Serialize};
use telemetry::{Counter, Gauge, Histogram, Registry, Snapshot};
use wafermap::{Dataset, DefectClass, WaferMap};

/// Serving-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Wafers per micro-batch submitted to the model in one inference
    /// pass. Larger batches amortize per-call overhead and fan across
    /// the worker pool in batched blocks; 1 degenerates to per-wafer
    /// inference.
    pub micro_batch: usize,
    /// Initial selection threshold τ; [`Engine::calibrate`] replaces
    /// it with a coverage-calibrated value.
    pub threshold: f32,
    /// Coverage the deployed model is expected to sustain (the
    /// monitor's reference level).
    pub target_coverage: f64,
    /// Rolling-window size of the coverage monitor, in wafers.
    pub monitor_window: usize,
    /// Alarm when rolling coverage drops below
    /// `alarm_fraction · target_coverage`.
    pub alarm_fraction: f64,
    /// Latency / batch-size samples retained by the streaming stats
    /// and the latency histogram — the engine's memory bound: state is
    /// O(`stats_window` + `monitor_window`) no matter how many wafers
    /// stream through.
    pub stats_window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            micro_batch: 64,
            threshold: 0.5,
            target_coverage: 0.9,
            monitor_window: 64,
            alarm_fraction: 0.5,
            stats_window: telemetry::DEFAULT_WINDOW,
        }
    }
}

/// Where the engine routed one wafer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Route {
    /// The model committed to this label.
    Predicted(DefectClass),
    /// The model abstained; the payload is the label it *would* have
    /// predicted (useful for triage of the rejected stream).
    Abstained(DefectClass),
}

/// Decision for one submitted wafer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaferDecision {
    /// Commit-or-abstain routing.
    pub route: Route,
    /// Softmax probability of the (would-be) predicted class.
    pub confidence: f32,
    /// Selection-head score `g(x)`.
    pub selection_score: f32,
    /// Coverage alarm raised by this wafer's decision, if any.
    pub alarm: Option<CoverageAlarm>,
}

impl WaferDecision {
    /// Whether the model committed to a label.
    #[must_use]
    pub fn selected(&self) -> bool {
        matches!(self.route, Route::Predicted(_))
    }
}

/// Errors constructing or driving an [`Engine`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The checkpoint bundle could not be turned into a model.
    Bundle(BundleError),
    /// The bundled model predicts more classes than [`DefectClass`]
    /// can name, so decisions could not be routed.
    UnsupportedClasses {
        /// Classes in the bundled model.
        n_classes: usize,
    },
    /// A submitted wafer's grid does not match the model input.
    GridMismatch {
        /// Model input side length.
        expected: usize,
        /// Offending wafer's dimensions.
        found: (usize, usize),
    },
    /// [`Engine::calibrate`] was handed an empty calibration set —
    /// there are no selection scores to pick a threshold from.
    EmptyCalibration,
    /// The configuration is unusable (zero micro-batch or window,
    /// out-of-range coverage or alarm fraction).
    InvalidConfig(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bundle(e) => write!(f, "cannot load bundle: {e}"),
            ServeError::UnsupportedClasses { n_classes } => {
                write!(
                    f,
                    "bundled model has {n_classes} classes; serving routes require at most {}",
                    DefectClass::COUNT
                )
            }
            ServeError::GridMismatch { expected, found } => write!(
                f,
                "wafer is {}x{} but the model expects {expected}x{expected}",
                found.0, found.1
            ),
            ServeError::EmptyCalibration => {
                write!(f, "calibration set is empty; cannot pick a threshold")
            }
            ServeError::InvalidConfig(why) => write!(f, "invalid serve config: {why}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bundle(e) => Some(e),
            _ => None,
        }
    }
}

/// Report of a serving session: configuration, calibrated threshold,
/// monitor state and streaming metrics. Serializable — this is the
/// payload of [`Engine::report_json`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Selection threshold currently in force.
    pub threshold: f32,
    /// Wafers per micro-batch.
    pub micro_batch: usize,
    /// Coverage the monitor holds the model to.
    pub target_coverage: f64,
    /// Rolling coverage over the monitor window.
    pub rolling_coverage: f64,
    /// Coverage level below which alarms fire.
    pub alarm_line: f64,
    /// Coverage alarms raised so far.
    pub alarms: u64,
    /// Most recent alarm, if any ever fired.
    pub last_alarm: Option<CoverageAlarm>,
    /// Streaming throughput / latency / per-class decision metrics.
    pub serving: ServingSnapshot,
    /// Point-in-time view of the engine's telemetry registry (the
    /// same data [`Engine::prometheus`] renders for scrapes).
    pub telemetry: Snapshot,
}

/// Metric handles the engine records into on the hot path; resolved
/// once at construction so `submit` never does a registry lookup.
#[derive(Debug)]
struct EngineMetrics {
    wafers: Counter,
    predicted: Counter,
    abstained: Counter,
    batches: Counter,
    alarms: Counter,
    calibrations: Counter,
    threshold: Gauge,
    rolling_coverage: Gauge,
    batch_seconds: Histogram,
    batch_size: Histogram,
    wafer_compute_seconds: Histogram,
}

impl EngineMetrics {
    fn new(registry: &Registry, window: usize) -> Self {
        EngineMetrics {
            wafers: registry.counter("serve_wafers_total", "Wafers routed by the engine"),
            predicted: registry
                .counter("serve_predicted_total", "Wafers the model committed a label to"),
            abstained: registry
                .counter("serve_abstained_total", "Wafers routed to the reject option"),
            batches: registry.counter("serve_batches_total", "Micro-batches run"),
            alarms: registry.counter("serve_alarms_total", "Coverage alarms raised"),
            calibrations: registry
                .counter("serve_calibrations_total", "Threshold calibrations performed"),
            threshold: registry.gauge("serve_threshold", "Selection threshold tau in force"),
            rolling_coverage: registry
                .gauge("serve_rolling_coverage", "Coverage over the monitor window"),
            batch_seconds: registry.histogram(
                "serve_batch_seconds",
                "Micro-batch inference latency in seconds",
                window,
            ),
            batch_size: registry.histogram("serve_batch_size", "Wafers per micro-batch", window),
            wafer_compute_seconds: registry.histogram(
                "serve_wafer_compute_seconds",
                "Per-wafer model compute time in seconds (excludes batching wait)",
                window,
            ),
        }
    }
}

/// Batched selective-inference engine. See the [crate docs](self) for
/// the serving architecture.
#[derive(Debug)]
pub struct Engine {
    model: SelectiveModel,
    micro_batch: usize,
    threshold: f32,
    target_coverage: f64,
    monitor: CoverageMonitor,
    stats: ServingStats,
    alarms: Vec<CoverageAlarm>,
    registry: Registry,
    metrics: EngineMetrics,
    /// Micro-batch staging tensor, grown once to
    /// `micro_batch × grid²` and refilled in place for every batch
    /// (the workspace memory model — see `nn::workspace`).
    staging: nn::Tensor,
    /// Reusable per-batch decision scratch for the stats recorder.
    batch_decisions: Vec<(usize, bool)>,
}

impl Engine {
    /// Build an engine from a checkpoint bundle: rebuilds the bundled
    /// model (architecture + parameters) and starts a fresh coverage
    /// monitor.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Bundle`] for corrupted bundles,
    /// [`ServeError::UnsupportedClasses`] when the model's classes
    /// cannot be routed to [`DefectClass`] labels, and
    /// [`ServeError::InvalidConfig`] for unusable configurations.
    pub fn from_bundle(bundle: &CheckpointBundle, config: ServeConfig) -> Result<Self, ServeError> {
        if config.micro_batch == 0 {
            return Err(ServeError::InvalidConfig("micro_batch must be non-zero".into()));
        }
        if config.monitor_window == 0 {
            return Err(ServeError::InvalidConfig("monitor_window must be non-zero".into()));
        }
        if !(config.target_coverage > 0.0 && config.target_coverage <= 1.0) {
            return Err(ServeError::InvalidConfig("target_coverage must be in (0, 1]".into()));
        }
        if !(config.alarm_fraction > 0.0 && config.alarm_fraction <= 1.0) {
            return Err(ServeError::InvalidConfig("alarm_fraction must be in (0, 1]".into()));
        }
        if config.stats_window == 0 {
            return Err(ServeError::InvalidConfig("stats_window must be non-zero".into()));
        }
        let n_classes = bundle.model_config().n_classes;
        if n_classes > DefectClass::COUNT {
            return Err(ServeError::UnsupportedClasses { n_classes });
        }
        let model = bundle.build_model().map_err(ServeError::Bundle)?;
        let registry = Registry::new();
        let metrics = EngineMetrics::new(&registry, config.stats_window);
        metrics.threshold.set(f64::from(config.threshold));
        Ok(Engine {
            model,
            micro_batch: config.micro_batch,
            threshold: config.threshold,
            target_coverage: config.target_coverage,
            monitor: CoverageMonitor::new(
                config.target_coverage,
                config.monitor_window,
                config.alarm_fraction,
            ),
            stats: ServingStats::with_window(n_classes, config.stats_window),
            alarms: Vec::new(),
            registry,
            metrics,
            staging: nn::Tensor::default(),
            batch_decisions: Vec::new(),
        })
    }

    /// The selection threshold currently in force.
    #[must_use]
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Side length of the model's input grid.
    #[must_use]
    pub fn grid(&self) -> usize {
        self.model.config().grid
    }

    /// Calibrate the selection threshold on a held-out calibration set
    /// so that a fraction `coverage` of it clears τ (exact-or-under;
    /// see [`selective::calibrate_threshold`]). Replaces the engine's
    /// threshold and returns the new value.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::GridMismatch`] when the calibration set's
    /// grid does not match the model input (the same validation
    /// [`Engine::submit`] applies), and
    /// [`ServeError::EmptyCalibration`] when the set has no samples —
    /// a threshold picked from zero scores would silently default
    /// rather than reflect the requested coverage.
    pub fn calibrate(&mut self, calibration: &Dataset, coverage: f64) -> Result<f32, ServeError> {
        if calibration.is_empty() {
            return Err(ServeError::EmptyCalibration);
        }
        let grid = self.grid();
        if calibration.grid() != grid {
            return Err(ServeError::GridMismatch {
                expected: grid,
                found: (calibration.grid(), calibration.grid()),
            });
        }
        let scores = self.model.infer_selection_scores(calibration);
        self.threshold = calibrate_threshold(&scores, coverage);
        self.metrics.calibrations.inc();
        self.metrics.threshold.set(f64::from(self.threshold));
        Ok(self.threshold)
    }

    /// Run selective inference over `wafers` in micro-batches,
    /// returning one decision per wafer in input order. Every decision
    /// is fed to the coverage monitor; any alarm it raises is attached
    /// to the wafer that triggered it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::GridMismatch`] if any wafer does not
    /// match the model's input grid (no partial work is performed).
    pub fn submit(&mut self, wafers: &[WaferMap]) -> Result<Vec<WaferDecision>, ServeError> {
        let grid = self.grid();
        for w in wafers {
            if w.width() != grid || w.height() != grid {
                return Err(ServeError::GridMismatch {
                    expected: grid,
                    found: (w.width(), w.height()),
                });
            }
        }
        let pixels = grid * grid;
        let mut decisions = Vec::with_capacity(wafers.len());
        for chunk in wafers.chunks(self.micro_batch) {
            self.staging.resize(&[chunk.len(), 1, grid, grid]);
            for (slot, w) in self.staging.data_mut().chunks_exact_mut(pixels).zip(chunk) {
                w.write_image_into(slot);
            }
            let start = Instant::now();
            let (preds, compute_secs) =
                self.model.infer_predict_timed(&self.staging, self.threshold);
            let latency = start.elapsed().as_secs_f64();
            self.batch_decisions.clear();
            let mut predicted = 0u64;
            let mut batch_alarms = 0u64;
            for p in &preds {
                let class = DefectClass::from_index(p.label).expect("validated class range");
                let alarm = self.monitor.observe(p.selected);
                if let Some(a) = alarm {
                    self.alarms.push(a);
                    batch_alarms += 1;
                }
                if p.selected {
                    predicted += 1;
                }
                self.batch_decisions.push((p.label, p.selected));
                decisions.push(WaferDecision {
                    route: if p.selected {
                        Route::Predicted(class)
                    } else {
                        Route::Abstained(class)
                    },
                    confidence: p.confidence,
                    selection_score: p.selection_score,
                    alarm,
                });
            }
            self.stats.record_batch_timed(latency, &self.batch_decisions, &compute_secs);
            let m = &self.metrics;
            m.batches.inc();
            m.wafers.add(preds.len() as u64);
            m.predicted.add(predicted);
            m.abstained.add(preds.len() as u64 - predicted);
            m.alarms.add(batch_alarms);
            m.batch_seconds.observe(latency);
            m.batch_size.observe(preds.len() as f64);
            for &c in &compute_secs {
                m.wafer_compute_seconds.observe(c);
            }
            m.rolling_coverage.set(self.monitor.rolling_coverage());
        }
        Ok(decisions)
    }

    /// Coverage alarms raised so far, in order.
    #[must_use]
    pub fn alarms(&self) -> &[CoverageAlarm] {
        &self.alarms
    }

    /// Point-in-time report of the serving session.
    #[must_use]
    pub fn report(&self) -> ServeReport {
        ServeReport {
            threshold: self.threshold,
            micro_batch: self.micro_batch,
            target_coverage: self.target_coverage,
            rolling_coverage: self.monitor.rolling_coverage(),
            alarm_line: self.monitor.alarm_line(),
            alarms: self.alarms.len() as u64,
            last_alarm: self.alarms.last().copied(),
            serving: self.stats.snapshot(),
            telemetry: self.registry.snapshot(),
        }
    }

    /// The report as pretty-printed JSON — the payload a status
    /// endpoint would return.
    #[must_use]
    pub fn report_json(&self) -> String {
        serde_json::to_string_pretty(&self.report()).expect("report serializes")
    }

    /// The engine's telemetry registry. Handy for tests or for merging
    /// engine metrics into a wider process registry snapshot.
    #[must_use]
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    /// The engine's metrics in the Prometheus text exposition format —
    /// the payload a `/metrics` scrape endpoint would return.
    #[must_use]
    pub fn prometheus(&self) -> String {
        self.registry.prometheus()
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selective::SelectiveConfig;
    use wafermap::gen::{generate, GenConfig};

    use super::*;

    fn tiny_bundle(seed: u64) -> CheckpointBundle {
        let config = SelectiveConfig::for_grid(16).with_conv_channels([2, 2, 2]).with_fc(8);
        let mut model = SelectiveModel::new(&config, seed);
        CheckpointBundle::export(&mut model)
    }

    fn wafers(n: usize, grid: usize, seed: u64) -> Vec<WaferMap> {
        let cfg = GenConfig::new(grid);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let class = DefectClass::from_index(i % DefectClass::COUNT).expect("valid");
                generate(class, &cfg, &mut rng)
            })
            .collect()
    }

    #[test]
    fn submit_routes_every_wafer_in_order() {
        let bundle = tiny_bundle(1);
        let mut engine =
            Engine::from_bundle(&bundle, ServeConfig { micro_batch: 4, ..ServeConfig::default() })
                .expect("valid bundle");
        let input = wafers(10, 16, 2);
        let decisions = engine.submit(&input).expect("matching grid");
        assert_eq!(decisions.len(), 10);
        let report = engine.report();
        assert_eq!(report.serving.wafers, 10);
        assert_eq!(report.serving.batches, 3); // 4 + 4 + 2
        assert_eq!(
            report.serving.predicted + report.serving.abstained,
            10,
            "every wafer is routed exactly once"
        );
    }

    #[test]
    fn grid_mismatch_is_rejected_without_partial_work() {
        let bundle = tiny_bundle(3);
        let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).expect("valid");
        let mut input = wafers(3, 16, 4);
        input.push(WaferMap::blank(24, 24));
        let err = engine.submit(&input).expect_err("wrong grid");
        assert!(matches!(err, ServeError::GridMismatch { expected: 16, found: (24, 24) }));
        assert_eq!(engine.report().serving.wafers, 0, "no partial batch was recorded");
    }

    #[test]
    fn calibration_sets_exact_or_under_coverage_on_the_calibration_set() {
        let bundle = tiny_bundle(5);
        let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).expect("valid");
        let mut calib = Dataset::new(16);
        let cfg = GenConfig::new(16);
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..40 {
            let class = DefectClass::from_index(i % DefectClass::COUNT).expect("valid");
            calib.push(wafermap::gen::Sample::original(generate(class, &cfg, &mut rng), class));
        }
        let tau = engine.calibrate(&calib, 0.5).expect("valid calibration set");
        assert_eq!(engine.threshold(), tau);
        let maps: Vec<WaferMap> = calib.samples().iter().map(|s| s.map.clone()).collect();
        let decisions = engine.submit(&maps).expect("matching grid");
        let kept = decisions.iter().filter(|d| d.selected()).count();
        assert!(kept <= 20, "calibration overshot: kept {kept} of 40 at coverage 0.5");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bundle = tiny_bundle(7);
        for bad in [
            ServeConfig { micro_batch: 0, ..ServeConfig::default() },
            ServeConfig { monitor_window: 0, ..ServeConfig::default() },
            ServeConfig { target_coverage: 0.0, ..ServeConfig::default() },
            ServeConfig { alarm_fraction: 1.5, ..ServeConfig::default() },
            ServeConfig { stats_window: 0, ..ServeConfig::default() },
        ] {
            assert!(matches!(Engine::from_bundle(&bundle, bad), Err(ServeError::InvalidConfig(_))));
        }
    }

    #[test]
    fn calibrate_rejects_grid_mismatch_without_changing_threshold() {
        let bundle = tiny_bundle(11);
        let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).expect("valid");
        let before = engine.threshold();
        // 24-grid calibration set against a 16-grid model.
        let mut calib = Dataset::new(24);
        let cfg = GenConfig::new(24);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..4 {
            calib.push(wafermap::gen::Sample::original(
                generate(DefectClass::Center, &cfg, &mut rng),
                DefectClass::Center,
            ));
        }
        let err = engine.calibrate(&calib, 0.9).expect_err("mismatched grid");
        assert!(matches!(err, ServeError::GridMismatch { expected: 16, found: (24, 24) }));
        assert_eq!(engine.threshold(), before, "failed calibration must not move tau");
    }

    #[test]
    fn calibrate_rejects_empty_set() {
        let bundle = tiny_bundle(13);
        let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).expect("valid");
        let err = engine.calibrate(&Dataset::new(16), 0.9).expect_err("empty set");
        assert!(matches!(err, ServeError::EmptyCalibration));
    }

    #[test]
    fn report_carries_telemetry_in_both_formats() {
        let bundle = tiny_bundle(15);
        let mut engine =
            Engine::from_bundle(&bundle, ServeConfig { micro_batch: 4, ..ServeConfig::default() })
                .expect("valid");
        let _ = engine.submit(&wafers(10, 16, 16)).expect("matching grid");
        let report = engine.report();
        assert!(!report.telemetry.is_empty());
        let find = |name: &str| {
            report
                .telemetry
                .counters
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .value
        };
        assert_eq!(find("serve_wafers_total"), 10);
        assert_eq!(find("serve_batches_total"), 3);
        assert_eq!(
            find("serve_predicted_total") + find("serve_abstained_total"),
            10,
            "telemetry counters must agree with the routed wafer count"
        );
        let text = engine.prometheus();
        let parsed = telemetry::parse_exposition(&text).expect("valid exposition");
        assert!(parsed.samples > 0);
        assert!(parsed.families.iter().any(|(n, _)| n == "serve_batch_seconds"));
    }

    #[test]
    fn report_json_parses_back() {
        let bundle = tiny_bundle(8);
        let mut engine = Engine::from_bundle(&bundle, ServeConfig::default()).expect("valid");
        let _ = engine.submit(&wafers(5, 16, 9)).expect("matching grid");
        let report: ServeReport =
            serde_json::from_str(&engine.report_json()).expect("valid JSON report");
        assert_eq!(report, engine.report());
    }
}
