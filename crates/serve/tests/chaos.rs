//! Chaos end-to-end: train → checkpoint a generation chain → corrupt
//! the newest generations with `faultsim` → the serving layer must
//! come back via fallback loading and serve decisions bit-identical
//! to an uncorrupted run. Crash recovery is allowed to lose recency
//! (an older model serves), never integrity (a corrupt model never
//! serves) and never availability (no panic while any generation is
//! intact).

use std::path::PathBuf;
use std::time::Duration;

use faultsim::{flip_bit_at, truncate_at, FaultPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selective::{
    CheckpointBundle, LoadError, SelectiveConfig, SelectiveModel, TrainConfig, Trainer,
};
use serve::{load_bundle_with_retry, Engine, RetryPolicy, ServeConfig};
use wafermap::gen::{generate, GenConfig, Sample};
use wafermap::{Dataset, DefectClass, WaferMap};

const GRID: usize = 16;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve_chaos_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn dataset(per_class: usize, seed: u64) -> Dataset {
    let cfg = GenConfig::new(GRID);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(GRID);
    for _ in 0..per_class {
        for class in [DefectClass::None, DefectClass::Center, DefectClass::EdgeRing] {
            ds.push(Sample::original(generate(class, &cfg, &mut rng), class));
        }
    }
    ds
}

/// Train briefly, exporting a bundle after each third of the run —
/// a generation chain where newer really means better-trained.
fn generation_chain() -> Vec<CheckpointBundle> {
    let config = SelectiveConfig::for_grid(GRID).with_conv_channels([2, 2, 2]).with_fc(8);
    let mut model = SelectiveModel::new(&config, 7);
    let train = dataset(8, 1);
    let mut generations = Vec::new();
    for stage in 0..3 {
        let _ = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 12,
            learning_rate: 5e-3,
            target_coverage: 0.7,
            seed: 100 + stage,
            ..TrainConfig::default()
        })
        .run(&mut model, &train);
        generations.push(CheckpointBundle::export(&mut model));
    }
    generations
}

fn workload(n: usize, seed: u64) -> Vec<WaferMap> {
    let cfg = GenConfig::new(GRID);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let class = DefectClass::from_index(i % DefectClass::COUNT).expect("valid");
            generate(class, &cfg, &mut rng)
        })
        .collect()
}

#[test]
fn corrupted_generations_recover_and_serve_identically() {
    let dir = temp_dir("recover");
    let generations = generation_chain();
    let paths: Vec<PathBuf> =
        (0..generations.len()).map(|g| dir.join(format!("bundle_gen{g}.json"))).collect();
    for (bundle, path) in generations.iter().zip(&paths) {
        bundle.save(path).expect("save generation");
    }

    // A crash tore the newest bundle mid-write and bit rot got the
    // middle one; only the oldest generation survives intact.
    let newest_len = std::fs::metadata(&paths[2]).expect("meta").len();
    truncate_at(&paths[2], newest_len / 3).expect("inject truncation");
    flip_bit_at(&paths[1], 40, 3).expect("inject bit flip");

    let newest_first: Vec<&PathBuf> = paths.iter().rev().collect();
    let recovered = CheckpointBundle::load_with_fallback(newest_first[0], &newest_first[1..])
        .expect("one intact generation remains");
    assert_eq!(recovered.source_index, 2, "must step back to the oldest generation");
    assert!(!recovered.is_primary());
    assert_eq!(recovered.failures.len(), 2, "both corrupt generations are reported");
    assert!(
        matches!(recovered.failures[0].1, LoadError::Truncated { .. }),
        "newest failed by truncation: {:?}",
        recovered.failures[0].1
    );
    assert!(
        matches!(recovered.failures[1].1, LoadError::ChecksumMismatch { .. }),
        "middle failed by checksum: {:?}",
        recovered.failures[1].1
    );
    assert_eq!(recovered.bundle, generations[0], "recovered bytes are the oldest export");

    // The recovered engine serves exactly what an engine built from
    // the pristine in-memory generation would serve.
    let config = ServeConfig { micro_batch: 8, ..ServeConfig::default() };
    let stream = workload(24, 9);
    let mut pristine = Engine::from_bundle(&generations[0], config).expect("valid bundle");
    let mut after_crash = Engine::from_bundle(&recovered.bundle, config).expect("valid bundle");
    let expected = pristine.submit(&stream).expect("grid matches");
    let got = after_crash.submit(&stream).expect("grid matches");
    assert_eq!(expected, got, "recovery must not perturb a single decision");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_chain_is_a_typed_error_listing_every_failure() {
    let dir = temp_dir("exhausted");
    let generations = generation_chain();
    let a = dir.join("gen_a.json");
    let b = dir.join("gen_b.json");
    generations[0].save(&a).expect("save");
    generations[1].save(&b).expect("save");
    let mut plan = FaultPlan::new(13);
    plan.truncate_file(&a).expect("inject");
    plan.flip_file_bit(&b).expect("inject");
    let missing = dir.join("never_written.json");

    let err = CheckpointBundle::load_with_fallback(&b, &[&a, &missing])
        .expect_err("no intact generation");
    assert_eq!(err.failures.len(), 3, "every candidate's failure is reported");
    assert!(err.failures.iter().any(|(p, _)| p == &missing));
    assert!(err
        .failures
        .iter()
        .all(|(_, e)| !matches!(e, LoadError::Malformed(m) if m.contains("panic"))));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_load_failures_retry_with_bounded_backoff() {
    let dir = temp_dir("retry");
    let generations = generation_chain();
    let path = dir.join("bundle.json");

    // Missing file: a transient I/O failure — retried with the
    // documented backoff schedule, then surfaced typed.
    let mut sleeps = Vec::new();
    let policy = RetryPolicy {
        attempts: 4,
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(12),
    };
    let err =
        load_bundle_with_retry(&path, policy, |d| sleeps.push(d)).expect_err("nothing on disk yet");
    assert!(matches!(err, LoadError::Io { .. }));
    assert_eq!(
        sleeps,
        vec![Duration::from_millis(5), Duration::from_millis(10), Duration::from_millis(12)],
        "backoff doubles from the initial value and caps at the maximum"
    );

    // Corruption is not transient: no retries, immediate typed error.
    generations[0].save(&path).expect("save");
    let len = std::fs::metadata(&path).expect("meta").len();
    truncate_at(&path, len / 2).expect("inject");
    let mut sleeps = Vec::new();
    let err = load_bundle_with_retry(&path, policy, |d| sleeps.push(d))
        .expect_err("corrupt file must not load");
    assert!(matches!(err, LoadError::Truncated { .. }));
    assert!(sleeps.is_empty(), "deterministic corruption must not be retried");

    // An intact file loads on the first attempt, no backoff.
    generations[0].save(&path).expect("save");
    let mut sleeps = Vec::new();
    let bundle =
        load_bundle_with_retry(&path, policy, |d| sleeps.push(d)).expect("intact file loads");
    assert_eq!(bundle, generations[0]);
    assert!(sleeps.is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}
