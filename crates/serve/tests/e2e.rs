//! End-to-end serving path: train a tiny selective model, export its
//! checkpoint bundle through a file, load it in the serving engine,
//! calibrate the threshold, and stream workloads — an in-distribution
//! stream that should serve quietly and a concept-shifted stream that
//! must trip the coverage alarm (paper Section IV-A / IV-D), plus
//! bit-identical batched inference across worker-pool sizes.

use nn::pool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selective::{SelectiveConfig, SelectiveModel, TrainConfig, Trainer};
use serve::{Engine, ServeConfig};
use wafermap::gen::{generate, GenConfig, Sample};
use wafermap::shift::{shifted_dataset, ShiftConfig};
use wafermap::{Dataset, DefectClass, WaferMap};

const GRID: usize = 16;

/// In-distribution dataset over three well-separated classes.
fn nominal_dataset(per_class: usize, seed: u64) -> Dataset {
    let cfg = GenConfig::new(GRID);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(GRID);
    for _ in 0..per_class {
        for class in [DefectClass::NearFull, DefectClass::None, DefectClass::Center] {
            ds.push(Sample::original(generate(class, &cfg, &mut rng), class));
        }
    }
    ds
}

fn trained_bundle_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("serve_e2e_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!("{tag}.json"))
}

/// Train a small selective model and export its bundle through disk.
///
/// The training set mixes easy in-distribution wafers with a slice of
/// severely noisy/ambiguous ones: the selective objective pays risk on
/// every selected sample, so with coverage to spare the selection head
/// learns to score the noisy slice low — which is what later lets the
/// deployed monitor detect a shift toward such wafers.
fn train_and_export(tag: &str) -> selective::CheckpointBundle {
    let config = SelectiveConfig::for_grid(GRID).with_conv_channels([4, 4, 4]).with_fc(16);
    let mut model = SelectiveModel::new(&config, 42);
    let mut train = nominal_dataset(16, 1);
    train.extend_from(&shifted_dataset(GRID, 4, &ShiftConfig::severe(), 11));
    let _ = Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 16,
        learning_rate: 5e-3,
        target_coverage: 0.55,
        seed: 2,
        ..TrainConfig::default()
    })
    .run(&mut model, &train);
    let bundle = selective::CheckpointBundle::export(&mut model);
    let path = trained_bundle_path(tag);
    bundle.save(&path).expect("save bundle");
    let loaded = selective::CheckpointBundle::load(&path).expect("load bundle");
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded, bundle, "bundle must survive the file roundtrip exactly");
    loaded
}

#[test]
fn shifted_workload_trips_the_coverage_alarm() {
    let bundle = train_and_export("alarm");
    let mut engine = Engine::from_bundle(
        &bundle,
        ServeConfig {
            micro_batch: 16,
            target_coverage: 0.8,
            monitor_window: 48,
            alarm_fraction: 0.6,
            ..ServeConfig::default()
        },
    )
    .expect("valid bundle");

    // Calibrate τ on held-out in-distribution data at 90% coverage.
    let calibration = nominal_dataset(16, 3);
    let tau = engine.calibrate(&calibration, 0.9).expect("valid calibration set");
    assert!(tau.is_finite());

    // A healthy in-distribution stream serves without alarms.
    let nominal: Vec<WaferMap> =
        nominal_dataset(32, 4).samples().iter().map(|s| s.map.clone()).collect();
    let healthy = engine.submit(&nominal).expect("grid matches");
    assert!(
        healthy.iter().all(|d| d.alarm.is_none()),
        "in-distribution stream should not alarm (rolling coverage {})",
        engine.report().rolling_coverage
    );
    let healthy_coverage = engine.report().rolling_coverage;

    // Concept shift: heavy noise, weak patterns, mixed-pattern wafers.
    let shifted: Vec<WaferMap> = shifted_dataset(GRID, 24, &ShiftConfig::severe(), 5)
        .samples()
        .iter()
        .map(|s| s.map.clone())
        .collect();
    let decisions = engine.submit(&shifted).expect("grid matches");
    let report = engine.report();
    assert!(
        report.alarms > 0,
        "severe shift must trip the coverage alarm (healthy coverage {healthy_coverage}, \
         rolling coverage {}, alarm line {})",
        report.rolling_coverage,
        report.alarm_line
    );
    // The alarm is attached to the wafer that tripped it.
    assert!(decisions.iter().any(|d| d.alarm.is_some()));
    // And the JSON report reflects it.
    let json = engine.report_json();
    assert!(json.contains("\"alarms\""), "report JSON must carry the alarm count");
}

#[test]
fn batched_inference_is_bit_identical_across_thread_limits() {
    let bundle = train_and_export("threads");
    let workload: Vec<WaferMap> = {
        let mut maps: Vec<WaferMap> =
            nominal_dataset(8, 7).samples().iter().map(|s| s.map.clone()).collect();
        maps.extend(
            shifted_dataset(GRID, 2, &ShiftConfig::severe(), 8)
                .samples()
                .iter()
                .map(|s| s.map.clone()),
        );
        maps
    };

    let run = |limit: usize| {
        pool::set_thread_limit(limit);
        let mut engine =
            Engine::from_bundle(&bundle, ServeConfig { micro_batch: 8, ..ServeConfig::default() })
                .expect("valid bundle");
        engine.submit(&workload).expect("grid matches")
    };
    let serial = run(1);
    let pooled = run(4);
    pool::set_thread_limit(pool::default_thread_limit());

    assert_eq!(serial.len(), pooled.len());
    for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
        assert_eq!(a.route, b.route, "route diverged at wafer {i}");
        assert_eq!(a.confidence, b.confidence, "confidence diverged at wafer {i}");
        assert_eq!(a.selection_score, b.selection_score, "selection score diverged at wafer {i}");
    }
}
