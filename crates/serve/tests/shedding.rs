//! Graceful-degradation contract of the serving engine: poisoned
//! inputs, deadline pressure, and queue overflow shed wafers to the
//! reject option deterministically — while the rest of the batch is
//! served exactly as it would have been, and the books always balance.

use std::sync::Arc;
use std::time::Duration;

use faultsim::{FaultPlan, SimClock};
use nn::{pool, simd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selective::{CheckpointBundle, SelectiveConfig, SelectiveModel};
use serve::{Engine, RawWafer, Route, ServeConfig, ShedReason, WaferDecision};
use wafermap::gen::{generate, GenConfig};
use wafermap::{DefectClass, WaferMap};

const GRID: usize = 16;

fn bundle(seed: u64) -> CheckpointBundle {
    let config = SelectiveConfig::for_grid(GRID).with_conv_channels([2, 2, 2]).with_fc(8);
    let mut model = SelectiveModel::new(&config, seed);
    CheckpointBundle::export(&mut model)
}

fn wafers(n: usize, seed: u64) -> Vec<WaferMap> {
    let cfg = GenConfig::new(GRID);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let class = DefectClass::from_index(i % DefectClass::COUNT).expect("valid");
            generate(class, &cfg, &mut rng)
        })
        .collect()
}

#[test]
fn poisoned_wafers_shed_while_their_neighbours_serve_unperturbed() {
    let b = bundle(31);
    let config = ServeConfig { micro_batch: 4, ..ServeConfig::default() };
    let maps = wafers(12, 32);
    let mut raw: Vec<RawWafer> = maps.iter().map(RawWafer::from_map).collect();

    // Poison a third of the stream with plan-chosen pixel faults.
    let mut plan = FaultPlan::new(33);
    let poisoned: Vec<usize> = vec![0, 5, 6, 11];
    for &i in &poisoned {
        let _ = plan.poison_pixels(&mut raw[i].pixels);
    }

    let mut engine = Engine::from_bundle(&b, config).expect("valid");
    let decisions = engine.submit_raw(&raw);
    assert_eq!(decisions.len(), 12, "one decision per submitted wafer, in order");
    for &i in &poisoned {
        assert_eq!(decisions[i].route, Route::Shed(ShedReason::InvalidInput));
        assert_eq!(decisions[i].confidence, 0.0, "shed decisions carry zeros, not NaN");
        assert_eq!(decisions[i].selection_score, 0.0);
        assert!(decisions[i].alarm.is_none());
    }

    // The surviving wafers get exactly the decisions they would have
    // gotten had the poisoned ones never been submitted.
    let valid_maps: Vec<WaferMap> = maps
        .iter()
        .enumerate()
        .filter(|(i, _)| !poisoned.contains(i))
        .map(|(_, m)| m.clone())
        .collect();
    let mut clean_engine = Engine::from_bundle(&b, config).expect("valid");
    let clean = clean_engine.submit(&valid_maps).expect("grid matches");
    let served: Vec<WaferDecision> = decisions
        .iter()
        .enumerate()
        .filter(|(i, _)| !poisoned.contains(i))
        .map(|(_, d)| *d)
        .collect();
    assert_eq!(clean, served, "a poisoned neighbour must not perturb valid decisions");
}

#[test]
fn deadline_and_queue_shedding_is_deterministic_under_the_sim_clock() {
    let b = bundle(41);
    let run = || {
        let clock = Arc::new(SimClock::with_step(Duration::from_millis(10)));
        let mut engine = Engine::from_bundle(
            &b,
            ServeConfig {
                micro_batch: 4,
                // Two clock reads fit the budget (t=10, t=20ms), the
                // third (t=30ms) breaches: 8 wafers serve, the rest of
                // the 14 model-bound shed.
                deadline: Some(0.025),
                max_queue_depth: Some(14),
                ..ServeConfig::default()
            },
        )
        .expect("valid")
        .with_clock(clock);
        engine.submit(&wafers(20, 42)).expect("grid matches")
    };

    let first = run();
    let second = run();
    assert_eq!(first, second, "sim-clock shedding must be exactly repeatable");

    let shed_with =
        |reason: ShedReason| first.iter().filter(|d| d.route == Route::Shed(reason)).count();
    assert_eq!(shed_with(ShedReason::QueueFull), 6, "20 submitted, cap 14");
    assert_eq!(shed_with(ShedReason::DeadlineExceeded), 6, "14 queued, 8 served in budget");
    assert_eq!(first.iter().filter(|d| d.shed().is_none()).count(), 8);
    // Queue shedding trims the tail; deadline shedding trims what the
    // budget could not reach — both preserve input order.
    assert!(first[..8].iter().all(|d| d.shed().is_none()));
    assert!(first[8..14].iter().all(|d| d.route == Route::Shed(ShedReason::DeadlineExceeded)));
    assert!(first[14..].iter().all(|d| d.route == Route::Shed(ShedReason::QueueFull)));
}

#[test]
fn shed_decisions_are_invariant_across_pool_width_and_simd_dispatch() {
    let b = bundle(51);
    let maps = wafers(18, 52);
    let mut raw: Vec<RawWafer> = maps.iter().map(RawWafer::from_map).collect();
    let mut plan = FaultPlan::new(53);
    for i in [2usize, 9, 15] {
        let _ = plan.poison_pixels(&mut raw[i].pixels);
    }

    let run = |threads: usize, force_scalar: bool| {
        pool::set_thread_limit(threads);
        simd::set_force_scalar(force_scalar);
        let clock = Arc::new(SimClock::with_step(Duration::from_millis(10)));
        let mut engine = Engine::from_bundle(
            &b,
            ServeConfig {
                micro_batch: 4,
                deadline: Some(0.025),
                max_queue_depth: Some(12),
                ..ServeConfig::default()
            },
        )
        .expect("valid")
        .with_clock(clock);
        let decisions = engine.submit_raw(&raw);
        simd::set_force_scalar(false);
        decisions
    };

    let baseline_threads = pool::num_threads().max(4);
    let reference = run(baseline_threads, false);
    for (threads, force_scalar) in [(1, false), (4, false), (1, true), (4, true)] {
        let got = run(threads, force_scalar);
        assert_eq!(
            got, reference,
            "decisions diverged at threads={threads}, force_scalar={force_scalar}"
        );
    }
    pool::set_thread_limit(baseline_threads);
}

#[test]
fn serving_stats_count_shed_separately_from_model_abstentions() {
    let b = bundle(61);
    let maps = wafers(10, 62);
    let mut raw: Vec<RawWafer> = maps.iter().map(RawWafer::from_map).collect();
    raw[3].pixels[0] = f32::NAN;
    raw[7].pixels[1] = 0.77;

    let mut engine = Engine::from_bundle(
        &b,
        ServeConfig { micro_batch: 4, max_queue_depth: Some(6), ..ServeConfig::default() },
    )
    .expect("valid");
    let decisions = engine.submit_raw(&raw);
    let report = engine.report();
    let s = &report.serving;

    // 10 submitted = 6 model-served + 2 invalid + 2 queue-shed.
    assert_eq!(s.submitted, 10);
    assert_eq!(s.wafers, 6);
    assert_eq!(s.shed, 4);
    assert_eq!(
        s.predicted + s.abstained,
        s.wafers,
        "model abstentions are accounted within served wafers only"
    );
    let count = |reason: ShedReason| {
        s.shed_per_reason.iter().find(|c| c.reason == reason.as_str()).map_or(0, |c| c.count)
    };
    assert_eq!(count(ShedReason::InvalidInput), 2);
    assert_eq!(count(ShedReason::QueueFull), 2);
    assert_eq!(count(ShedReason::DeadlineExceeded), 0);

    // Telemetry agrees with the stats ledger.
    let snapshot = engine.telemetry().snapshot();
    let telemetry_shed: u64 =
        snapshot.counters.iter().filter(|c| c.name == "serve_shed_total").map(|c| c.value).sum();
    assert_eq!(telemetry_shed, s.shed);
    let wafers_total = snapshot
        .counters
        .iter()
        .find(|c| c.name == "serve_wafers_total")
        .expect("counter exists")
        .value;
    assert_eq!(wafers_total, s.wafers, "shed wafers never increment the model counter");

    // The decision vector matches the ledger.
    assert_eq!(decisions.iter().filter(|d| d.shed().is_some()).count(), 4);

    // And coverage maths stay shed-free: the monitor saw exactly the
    // model-served wafers.
    assert!(report.rolling_coverage >= 0.0 && report.rolling_coverage <= 1.0);
}
