//! Long-stream serving: the engine must hold O(window) state no
//! matter how many batches flow through it.
//!
//! Regression suite for the unbounded-stats bug where `ServingStats`
//! pushed every batch latency and batch size into growing `Vec`s —
//! a deployed engine leaked memory linearly in stream length.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selective::{CheckpointBundle, SelectiveConfig, SelectiveModel};
use serve::{Engine, ServeConfig};
use wafermap::gen::{generate, GenConfig};
use wafermap::{DefectClass, WaferMap};

const GRID: usize = 16;
const WINDOW: usize = 8;

/// A small pool of wafers to cycle through; serving behaviour is
/// what's under test, not the model, so no training is needed.
fn workload(count: usize) -> Vec<WaferMap> {
    let cfg = GenConfig::new(GRID);
    let mut rng = StdRng::seed_from_u64(9);
    let pool: Vec<WaferMap> = [DefectClass::Center, DefectClass::None, DefectClass::EdgeRing]
        .iter()
        .map(|&class| generate(class, &cfg, &mut rng))
        .collect();
    (0..count).map(|i| pool[i % pool.len()].clone()).collect()
}

#[test]
fn engine_state_stays_bounded_over_long_streams() {
    let config = SelectiveConfig::for_grid(GRID).with_conv_channels([2, 2, 2]).with_fc(8);
    let bundle = CheckpointBundle::export(&mut SelectiveModel::new(&config, 7));
    let mut engine = Engine::from_bundle(
        &bundle,
        ServeConfig { micro_batch: 1, stats_window: WINDOW, ..ServeConfig::default() },
    )
    .expect("valid bundle");

    // Stream 100x the retention window: 800 micro-batches of 1 wafer.
    let batches = 100 * WINDOW;
    for chunk in workload(batches).chunks(50) {
        engine.submit(chunk).expect("grid matches");
    }

    let report = engine.report();

    // Exact stream totals survive the bounded window.
    assert_eq!(report.serving.batches, batches as u64);
    assert_eq!(report.serving.wafers, batches as u64);
    assert_eq!(
        report.serving.predicted + report.serving.abstained,
        batches as u64,
        "every wafer is either predicted or abstained"
    );

    // Retained distribution state never exceeds the configured window.
    assert_eq!(report.serving.latency_window_capacity, WINDOW);
    assert!(
        report.serving.latency_window_len <= WINDOW,
        "latency window grew past its bound: {} > {WINDOW}",
        report.serving.latency_window_len
    );

    // The telemetry histograms ride the same bound while keeping
    // exact stream counts.
    for hist in &report.telemetry.histograms {
        assert!(
            hist.summary.window_len <= WINDOW,
            "{} window grew past its bound: {} > {WINDOW}",
            hist.name,
            hist.summary.window_len
        );
        assert_eq!(hist.summary.window_capacity, WINDOW, "{}", hist.name);
    }
    let batch_seconds = report
        .telemetry
        .histograms
        .iter()
        .find(|h| h.name == "serve_batch_seconds")
        .expect("engine registers a batch latency histogram");
    assert_eq!(batch_seconds.summary.count, batches as u64, "exact count despite windowing");
}
