//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the *subset* of the rand 0.8 API the workspace actually
//! uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++
//! seeded through SplitMix64 — fast, well-distributed, and fully
//! deterministic for a given seed, which is all the reproduction
//! needs. Streams are *not* bit-compatible with upstream `rand`;
//! every consumer in this workspace only relies on determinism, not
//! on specific draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`]
    /// distribution (uniform over the type's natural unit domain).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Map 64 random bits to a double in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map 64 random bits to a float in `[0, 1)`.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. (Upstream rand 0.8 uses ChaCha12 here; the streams
    /// differ but callers only rely on seeded determinism.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = StdRng::splitmix(&mut state);
            }
            // An all-zero state would be a fixed point; SplitMix64
            // cannot produce four zero outputs in a row, but guard
            // anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::{unit_f32, unit_f64, Rng};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution: `[0, 1)` for floats, the
    /// full domain for integers, fair coin for `bool`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f32(rng.next_u64())
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Types `gen_range` can sample uniformly. The single generic
/// [`SampleRange`] impl below ties the range's element type to the
/// output type, which is what lets float-literal ranges infer `f32`
/// (mirroring upstream's `SampleUniform`/`SampleRange` structure).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)` or `[start, end]`.
    fn sample_between<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Uniform sampling from range expressions (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range on empty range");
        T::sample_between(start, end, true, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(start: Self, end: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (end as i128 - start as i128) as u128 + u128::from(inclusive);
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(start: Self, end: Self, _inclusive: bool, rng: &mut R) -> Self {
                start + (end - start) * $unit(rng.next_u64())
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, unit_f32; f64, unit_f64);

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Same widening-multiply draw as `gen_range(0..=i)`,
                // spelled out because `R` may be unsized here.
                let j = ((u128::from(rng.next_u64()) * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((u128::from(rng.next_u64()) * self.len() as u128) >> 64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / f64::from(n) - 0.5).abs() < 0.01);
    }
}
