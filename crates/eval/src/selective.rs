use serde::{Deserialize, Serialize};

use crate::ConfusionMatrix;

/// Outcome of a selective classifier on one sample: a predicted class
/// or abstention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectiveOutcome {
    /// The model committed to a class label.
    Predicted(usize),
    /// The model abstained (rejected the sample).
    Abstained,
}

impl SelectiveOutcome {
    /// The predicted label, if the model did not abstain.
    #[must_use]
    pub fn label(self) -> Option<usize> {
        match self {
            SelectiveOutcome::Predicted(c) => Some(c),
            SelectiveOutcome::Abstained => None,
        }
    }
}

/// Aggregated metrics for a selective classifier: coverage and
/// accuracy on the covered (selected) subset, overall and per class.
///
/// This reproduces the columns of the paper's Table II: per-class
/// precision / recall / F1 **computed over selected samples only**,
/// per-class coverage counts, overall selective accuracy, and total
/// coverage.
///
/// # Example
///
/// ```
/// use eval::{SelectiveMetrics, SelectiveOutcome};
///
/// let mut m = SelectiveMetrics::new(2);
/// m.record(0, SelectiveOutcome::Predicted(0));
/// m.record(1, SelectiveOutcome::Abstained);
/// assert!((m.coverage() - 0.5).abs() < 1e-9);
/// assert!((m.selective_accuracy() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectiveMetrics {
    n_classes: usize,
    /// Confusion matrix over selected samples only.
    selected: ConfusionMatrix,
    /// Per-true-class totals (selected + abstained).
    totals: Vec<u64>,
    /// Per-true-class abstention counts.
    abstained: Vec<u64>,
}

impl SelectiveMetrics {
    /// New empty metrics for `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes` is zero.
    #[must_use]
    pub fn new(n_classes: usize) -> Self {
        SelectiveMetrics {
            n_classes,
            selected: ConfusionMatrix::new(n_classes),
            totals: vec![0; n_classes],
            abstained: vec![0; n_classes],
        }
    }

    /// Record the outcome for one sample with the given true class.
    ///
    /// # Panics
    ///
    /// Panics if `true_class` (or a predicted class) is out of range.
    pub fn record(&mut self, true_class: usize, outcome: SelectiveOutcome) {
        assert!(true_class < self.n_classes, "true class out of range");
        self.totals[true_class] += 1;
        match outcome {
            SelectiveOutcome::Predicted(p) => self.selected.record(true_class, p),
            SelectiveOutcome::Abstained => self.abstained[true_class] += 1,
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total samples seen (selected + abstained).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Samples the model committed to (empirical coverage numerator).
    #[must_use]
    pub fn selected_count(&self) -> u64 {
        self.selected.total()
    }

    /// Empirical coverage `φ(g) = selected / total` (paper eq. (6));
    /// 0 when no samples were recorded.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.selected_count() as f64 / total as f64
        }
    }

    /// Accuracy over selected samples (the paper's headline "99%
    /// under selective learning"); 0 when nothing was selected.
    #[must_use]
    pub fn selective_accuracy(&self) -> f64 {
        self.selected.accuracy()
    }

    /// Selective risk = 1 − selective accuracy (0/1-loss form of the
    /// paper's eq. (7)).
    #[must_use]
    pub fn selective_risk(&self) -> f64 {
        if self.selected_count() == 0 {
            0.0
        } else {
            1.0 - self.selective_accuracy()
        }
    }

    /// The confusion matrix over selected samples.
    #[must_use]
    pub fn selected_matrix(&self) -> &ConfusionMatrix {
        &self.selected
    }

    /// Number of selected samples of a true class (the "Cov" counts in
    /// Table II).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn class_selected(&self, class: usize) -> u64 {
        assert!(class < self.n_classes, "class out of range");
        self.totals[class] - self.abstained[class]
    }

    /// Per-class coverage fraction; 0 for classes with no samples.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    #[must_use]
    pub fn class_coverage(&self, class: usize) -> f64 {
        assert!(class < self.n_classes, "class out of range");
        if self.totals[class] == 0 {
            0.0
        } else {
            self.class_selected(class) as f64 / self.totals[class] as f64
        }
    }

    /// Recall of `class` over **selected** samples (the "Selective
    /// Recall" column of Table IV).
    #[must_use]
    pub fn selective_recall(&self, class: usize) -> f64 {
        self.selected.recall(class)
    }

    /// Precision of `class` over selected samples.
    #[must_use]
    pub fn selective_precision(&self, class: usize) -> f64 {
        self.selected.precision(class)
    }

    /// F1 of `class` over selected samples.
    #[must_use]
    pub fn selective_f1(&self, class: usize) -> f64 {
        self.selected.f1(class)
    }
}

/// One point on a risk–coverage curve (Fig. 5 plots selective accuracy
/// and coverage against the target coverage `c0`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskCoveragePoint {
    /// Target coverage `c0` the model was trained/calibrated for.
    pub target_coverage: f64,
    /// Achieved empirical coverage on the evaluation set.
    pub coverage: f64,
    /// Accuracy over selected samples.
    pub selective_accuracy: f64,
    /// Selective risk (1 − selective accuracy for 0/1 loss).
    pub selective_risk: f64,
}

impl RiskCoveragePoint {
    /// Build a curve point from metrics at a given target coverage.
    #[must_use]
    pub fn from_metrics(target_coverage: f64, metrics: &SelectiveMetrics) -> Self {
        RiskCoveragePoint {
            target_coverage,
            coverage: metrics.coverage(),
            selective_accuracy: metrics.selective_accuracy(),
            selective_risk: metrics.selective_risk(),
        }
    }
}

/// Area under the risk–coverage curve (AURC) by trapezoidal
/// integration over coverage — the standard scalar summary of a
/// selective classifier (lower is better; 0 means perfect selective
/// ordering at every coverage).
///
/// Points are sorted by coverage internally; the curve is integrated
/// between the smallest and largest observed coverages and normalized
/// by that span, so it is comparable across sweeps with different
/// ranges. Returns 0 for fewer than two distinct coverages.
///
/// # Example
///
/// ```
/// use eval::{aurc, RiskCoveragePoint};
///
/// let points = vec![
///     RiskCoveragePoint { target_coverage: 0.2, coverage: 0.2, selective_accuracy: 1.0, selective_risk: 0.0 },
///     RiskCoveragePoint { target_coverage: 1.0, coverage: 1.0, selective_accuracy: 0.9, selective_risk: 0.1 },
/// ];
/// let a = aurc(&points);
/// assert!((a - 0.05).abs() < 1e-9); // trapezoid of 0 -> 0.1
/// ```
#[must_use]
pub fn aurc(points: &[RiskCoveragePoint]) -> f64 {
    let mut sorted: Vec<&RiskCoveragePoint> = points.iter().collect();
    sorted.sort_by(|a, b| a.coverage.partial_cmp(&b.coverage).unwrap_or(std::cmp::Ordering::Equal));
    let mut area = 0.0f64;
    let mut span = 0.0f64;
    for pair in sorted.windows(2) {
        let dc = pair[1].coverage - pair[0].coverage;
        if dc <= 0.0 {
            continue;
        }
        area += dc * (pair[0].selective_risk + pair[1].selective_risk) / 2.0;
        span += dc;
    }
    if span <= 0.0 {
        0.0
    } else {
        area / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build() -> SelectiveMetrics {
        let mut m = SelectiveMetrics::new(3);
        // class 0: 4 samples, 3 selected (2 right, 1 wrong), 1 abstained
        m.record(0, SelectiveOutcome::Predicted(0));
        m.record(0, SelectiveOutcome::Predicted(0));
        m.record(0, SelectiveOutcome::Predicted(1));
        m.record(0, SelectiveOutcome::Abstained);
        // class 1: 2 samples, both abstained
        m.record(1, SelectiveOutcome::Abstained);
        m.record(1, SelectiveOutcome::Abstained);
        // class 2: 2 samples, both selected and right
        m.record(2, SelectiveOutcome::Predicted(2));
        m.record(2, SelectiveOutcome::Predicted(2));
        m
    }

    #[test]
    fn coverage_and_accuracy() {
        let m = build();
        assert_eq!(m.total(), 8);
        assert_eq!(m.selected_count(), 5);
        assert!((m.coverage() - 5.0 / 8.0).abs() < 1e-9);
        assert!((m.selective_accuracy() - 4.0 / 5.0).abs() < 1e-9);
        assert!((m.selective_risk() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn per_class_coverage() {
        let m = build();
        assert_eq!(m.class_selected(0), 3);
        assert!((m.class_coverage(0) - 0.75).abs() < 1e-9);
        assert_eq!(m.class_selected(1), 0);
        assert_eq!(m.class_coverage(1), 0.0);
        assert!((m.class_coverage(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn selective_scores_use_selected_only() {
        let m = build();
        assert!((m.selective_recall(0) - 2.0 / 3.0).abs() < 1e-9);
        // Class 1 never selected => recall over selected = 0.
        assert_eq!(m.selective_recall(1), 0.0);
        assert!((m.selective_precision(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_zero_not_nan() {
        let m = SelectiveMetrics::new(2);
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.selective_accuracy(), 0.0);
        assert_eq!(m.selective_risk(), 0.0);
    }

    #[test]
    fn risk_coverage_point_snapshot() {
        let m = build();
        let p = RiskCoveragePoint::from_metrics(0.5, &m);
        assert_eq!(p.target_coverage, 0.5);
        assert!((p.coverage - m.coverage()).abs() < 1e-12);
        assert!((p.selective_risk + p.selective_accuracy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn abstain_outcome_has_no_label() {
        assert_eq!(SelectiveOutcome::Abstained.label(), None);
        assert_eq!(SelectiveOutcome::Predicted(4).label(), Some(4));
    }

    fn point(cov: f64, risk: f64) -> RiskCoveragePoint {
        RiskCoveragePoint {
            target_coverage: cov,
            coverage: cov,
            selective_accuracy: 1.0 - risk,
            selective_risk: risk,
        }
    }

    #[test]
    fn aurc_of_flat_curve_is_its_risk() {
        let pts = vec![point(0.2, 0.1), point(0.6, 0.1), point(1.0, 0.1)];
        assert!((aurc(&pts) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn aurc_orders_better_selectors_lower() {
        // Selector A: risk grows slowly with coverage; B: grows fast.
        let a = vec![point(0.2, 0.0), point(0.6, 0.02), point(1.0, 0.1)];
        let b = vec![point(0.2, 0.0), point(0.6, 0.09), point(1.0, 0.1)];
        assert!(aurc(&a) < aurc(&b));
    }

    #[test]
    fn aurc_is_sort_order_independent() {
        let fwd = vec![point(0.2, 0.0), point(0.6, 0.05), point(1.0, 0.1)];
        let mut rev = fwd.clone();
        rev.reverse();
        assert!((aurc(&fwd) - aurc(&rev)).abs() < 1e-12);
    }

    #[test]
    fn aurc_degenerate_inputs_are_zero() {
        assert_eq!(aurc(&[]), 0.0);
        assert_eq!(aurc(&[point(0.5, 0.2)]), 0.0);
        assert_eq!(aurc(&[point(0.5, 0.2), point(0.5, 0.4)]), 0.0);
    }
}
