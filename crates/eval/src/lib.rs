//! Classification and selective-prediction metrics.
//!
//! Provides the quantities the paper reports:
//!
//! - [`ConfusionMatrix`] with per-class precision / recall / F1 and
//!   overall accuracy (Tables II–IV).
//! - [`SelectiveMetrics`]: coverage, selective accuracy / risk, and
//!   per-class coverage counts for abstaining classifiers
//!   (Table II, Fig. 5).
//! - [`RiskCoveragePoint`] series for risk–coverage trade-off curves.
//! - [`ServingStats`]: streaming throughput / latency / abstention
//!   metrics for a deployed selective classifier (Section IV-D).
//!
//! # Example
//!
//! ```
//! use eval::ConfusionMatrix;
//!
//! let mut cm = ConfusionMatrix::new(3);
//! cm.record(0, 0);
//! cm.record(1, 1);
//! cm.record(2, 1);
//! assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-6);
//! assert!((cm.recall(2) - 0.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod confusion;
mod selective;
mod serving;

pub use confusion::{ClassScores, ConfusionMatrix};
pub use selective::{aurc, RiskCoveragePoint, SelectiveMetrics, SelectiveOutcome};
pub use serving::{LatencySummary, ServingSnapshot, ServingStats, ShedCount};
