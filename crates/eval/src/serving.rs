//! Streaming metrics for a running selective-inference service:
//! throughput, per-batch latency percentiles, rolling decision
//! counts, and per-class predicted / abstained tallies.
//!
//! [`ServingStats`] is deliberately decoupled from any model type: the
//! serving layer records `(class, selected)` decision pairs plus
//! per-batch wall-clock latencies, and reads back a serializable
//! [`ServingSnapshot`] suitable for a JSON status endpoint.
//!
//! Latency and batch-size samples live in bounded
//! [`telemetry::Window`] ring buffers, so the accumulator holds
//! **O(window) memory no matter how long the service runs**. Stream
//! totals (wafer counts, busy time, coverage) stay exact; latency
//! *percentiles* describe the most recent window, which is what a
//! status endpoint should report anyway.

use serde::{Deserialize, Serialize};
use telemetry::{Window, DEFAULT_WINDOW};

/// Accumulator for serving-time metrics.
///
/// # Example
///
/// ```
/// use eval::ServingStats;
///
/// let mut stats = ServingStats::new(3);
/// // One micro-batch of 2 wafers took 4 ms: class 1 predicted,
/// // class 2 abstained.
/// stats.record_batch(0.004, &[(1, true), (2, false)]);
/// let snap = stats.snapshot();
/// assert_eq!(snap.wafers, 2);
/// assert_eq!(snap.predicted, 1);
/// assert_eq!(snap.abstained, 1);
/// assert!((snap.coverage - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServingStats {
    n_classes: usize,
    batch_latencies: Window,
    batch_sizes: Window,
    /// Per-wafer completion latency: the wall-clock of the micro-batch
    /// a wafer rode in, recorded once **per wafer** so percentiles
    /// weight wafers, not batches (a wafer in a 64-batch completes when
    /// its batch completes).
    wafer_latencies: Window,
    /// Per-wafer compute-only seconds (time on a worker, excluding the
    /// wait for pool scheduling and for the rest of the batch).
    compute_latencies: Window,
    wafers: u64,
    predicted_per_class: Vec<u64>,
    abstained_per_class: Vec<u64>,
    /// Wafers the serving layer shed (degraded-mode abstentions that
    /// never reached the model), tallied per reason label. Kept
    /// separate from the per-class model counts: a shed wafer has no
    /// model output, and folding it into `abstained` would corrupt
    /// the coverage signal the monitor alarms on.
    shed_per_reason: Vec<(String, u64)>,
}

impl ServingStats {
    /// Fresh accumulator for a model with `n_classes` classes, keeping
    /// the default [`DEFAULT_WINDOW`] most recent latency samples.
    #[must_use]
    pub fn new(n_classes: usize) -> Self {
        ServingStats::with_window(n_classes, DEFAULT_WINDOW)
    }

    /// Fresh accumulator retaining at most `window` recent latency and
    /// batch-size samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_window(n_classes: usize, window: usize) -> Self {
        ServingStats {
            n_classes,
            batch_latencies: Window::new(window),
            batch_sizes: Window::new(window),
            wafer_latencies: Window::new(window),
            compute_latencies: Window::new(window),
            wafers: 0,
            predicted_per_class: vec![0; n_classes],
            abstained_per_class: vec![0; n_classes],
            shed_per_reason: Vec::new(),
        }
    }

    /// Record one wafer the serving layer shed (invalid input,
    /// deadline breach, queue overflow, …) under a free-form reason
    /// label. Shed wafers are **not** counted as model wafers: they
    /// contribute to neither `wafers`, the per-class tallies, nor
    /// coverage — the snapshot reports them in their own column.
    pub fn record_shed(&mut self, reason: &str) {
        if let Some(entry) = self.shed_per_reason.iter_mut().find(|(r, _)| r == reason) {
            entry.1 += 1;
        } else {
            self.shed_per_reason.push((reason.to_string(), 1));
        }
    }

    /// Total wafers shed by the serving layer (exact, not windowed).
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed_per_reason.iter().map(|(_, n)| n).sum()
    }

    /// Record one completed micro-batch: its wall-clock latency in
    /// seconds and the `(class_index, selected)` decision for each
    /// wafer. For abstained wafers the class index is the model's
    /// would-be prediction (what it would have said had it committed).
    ///
    /// The batch latency is also recorded once *per wafer* as that
    /// wafer's completion latency — a wafer riding in a micro-batch is
    /// not done until the whole batch is — so the snapshot's latency
    /// percentiles weight wafers, not batches.
    ///
    /// # Panics
    ///
    /// Panics if any class index is out of range or the latency is
    /// negative / non-finite.
    pub fn record_batch(&mut self, latency_secs: f64, decisions: &[(usize, bool)]) {
        self.record_batch_timed(latency_secs, decisions, &[]);
    }

    /// [`ServingStats::record_batch`] plus per-wafer **compute-only**
    /// seconds (one entry per wafer, as produced by the model's timed
    /// inference path). The two distributions bracket serving latency:
    /// `compute_latency` is what the model costs per wafer,
    /// `latency` adds the wait for the rest of the micro-batch.
    ///
    /// Pass an empty `compute_secs` when per-wafer timings are not
    /// available (the compute window is simply not fed).
    ///
    /// # Panics
    ///
    /// Panics if any class index is out of range, the latency is
    /// negative / non-finite, or `compute_secs` is non-empty with a
    /// length different from `decisions`.
    pub fn record_batch_timed(
        &mut self,
        latency_secs: f64,
        decisions: &[(usize, bool)],
        compute_secs: &[f64],
    ) {
        assert!(
            latency_secs.is_finite() && latency_secs >= 0.0,
            "latency must be finite and non-negative"
        );
        assert!(
            compute_secs.is_empty() || compute_secs.len() == decisions.len(),
            "compute_secs length {} does not match {} decisions",
            compute_secs.len(),
            decisions.len()
        );
        self.batch_latencies.observe(latency_secs);
        self.batch_sizes.observe(decisions.len() as f64);
        self.wafers += decisions.len() as u64;
        for _ in decisions {
            self.wafer_latencies.observe(latency_secs);
        }
        for &c in compute_secs {
            assert!(c.is_finite() && c >= 0.0, "compute seconds must be finite and non-negative");
            self.compute_latencies.observe(c);
        }
        for &(class, selected) in decisions {
            assert!(class < self.n_classes, "class index {class} out of range");
            if selected {
                self.predicted_per_class[class] += 1;
            } else {
                self.abstained_per_class[class] += 1;
            }
        }
    }

    /// Number of micro-batches recorded over the whole stream (exact,
    /// not windowed).
    #[must_use]
    pub fn batches(&self) -> usize {
        self.batch_latencies.count() as usize
    }

    /// Total wafers across all recorded batches (exact, not windowed).
    #[must_use]
    pub fn wafers(&self) -> u64 {
        self.wafers
    }

    /// Latency samples currently retained (`<= window_capacity`).
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.batch_latencies.len()
    }

    /// Maximum retained latency samples — the memory bound.
    #[must_use]
    pub fn window_capacity(&self) -> usize {
        self.batch_latencies.capacity()
    }

    /// Point-in-time snapshot of every derived metric.
    ///
    /// Counts, coverage and throughput are exact over the whole
    /// stream; the latency distribution summarizes the retained
    /// window of recent batches.
    #[must_use]
    pub fn snapshot(&self) -> ServingSnapshot {
        let wafers = self.wafers();
        let predicted: u64 = self.predicted_per_class.iter().sum();
        let abstained: u64 = self.abstained_per_class.iter().sum();
        // Exact total busy time: the window's running sum covers the
        // whole stream even after old samples are evicted.
        let busy: f64 = self.batch_latencies.sum();
        let shed = self.shed();
        ServingSnapshot {
            batches: self.batches() as u64,
            wafers,
            predicted,
            abstained,
            shed,
            submitted: wafers + shed,
            shed_per_reason: self
                .shed_per_reason
                .iter()
                .map(|(reason, count)| ShedCount { reason: reason.clone(), count: *count })
                .collect(),
            coverage: if wafers == 0 { 0.0 } else { predicted as f64 / wafers as f64 },
            throughput_wafers_per_sec: if busy > 0.0 { wafers as f64 / busy } else { 0.0 },
            latency: LatencySummary::from_samples(self.wafer_latencies.samples()),
            batch_latency: LatencySummary::from_samples(self.batch_latencies.samples()),
            compute_latency: LatencySummary::from_samples(self.compute_latencies.samples()),
            latency_window_len: self.window_len(),
            latency_window_capacity: self.window_capacity(),
            predicted_per_class: self.predicted_per_class.clone(),
            abstained_per_class: self.abstained_per_class.clone(),
        }
    }
}

/// Distribution summary of per-batch latencies, in seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean batch latency.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed batch.
    pub max: f64,
}

impl LatencySummary {
    /// Summarize a set of latency samples; all-zero when empty.
    ///
    /// Percentiles use the nearest-rank method: the `p`-th percentile
    /// is the smallest sample with at least `p`% of the data at or
    /// below it.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary { mean: 0.0, p50: 0.0, p90: 0.0, p99: 0.0, max: 0.0 };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let rank = |p: f64| -> f64 {
            let idx = ((p / 100.0) * n as f64).ceil() as usize;
            sorted[idx.clamp(1, n) - 1]
        };
        LatencySummary {
            mean: sorted.iter().sum::<f64>() / n as f64,
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
            max: sorted[n - 1],
        }
    }
}

/// One shed-reason tally in a [`ServingSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedCount {
    /// Reason label as recorded by [`ServingStats::record_shed`].
    pub reason: String,
    /// Wafers shed for this reason.
    pub count: u64,
}

/// Serializable point-in-time view of a [`ServingStats`] accumulator —
/// the payload of the serving layer's JSON status report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSnapshot {
    /// Micro-batches processed.
    pub batches: u64,
    /// Wafers processed.
    pub wafers: u64,
    /// Wafers the model committed a label to.
    pub predicted: u64,
    /// Wafers the model abstained on (model-decided reject option).
    pub abstained: u64,
    /// Wafers the serving layer shed before the model ran —
    /// degraded-mode abstentions (invalid input, deadline breach,
    /// queue overflow). Always `predicted + abstained == wafers` and
    /// `wafers + shed == submitted`.
    pub shed: u64,
    /// Total wafers submitted, served or shed.
    pub submitted: u64,
    /// Shed tally per reason label, in first-seen order.
    pub shed_per_reason: Vec<ShedCount>,
    /// Empirical coverage so far (`predicted / wafers`); shed wafers
    /// are excluded — shedding is an operational failure signal, not
    /// a model-coverage signal.
    pub coverage: f64,
    /// Wafers per second of model compute time (sum of batch
    /// latencies, excluding idle gaps between batches).
    pub throughput_wafers_per_sec: f64,
    /// Per-**wafer** completion (queue + compute) latency distribution
    /// over the retained window: each wafer completes when its
    /// micro-batch does, so the batch wall-clock is counted once per
    /// wafer it carried.
    pub latency: LatencySummary,
    /// Per-**batch** wall-clock latency distribution (one sample per
    /// micro-batch, regardless of its size).
    pub batch_latency: LatencySummary,
    /// Per-wafer **compute-only** latency distribution (time on a
    /// worker, excluding pool-scheduling wait and the wait for the
    /// rest of the micro-batch); all-zero unless fed through
    /// [`ServingStats::record_batch_timed`].
    pub compute_latency: LatencySummary,
    /// Batch-latency samples the distribution was computed from.
    pub latency_window_len: usize,
    /// Maximum retained latency samples (the memory bound).
    pub latency_window_capacity: usize,
    /// Committed predictions per class index.
    pub predicted_per_class: Vec<u64>,
    /// Abstentions per (would-be) class index.
    pub abstained_per_class: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_snapshot_is_all_zero() {
        let snap = ServingStats::new(4).snapshot();
        assert_eq!(snap.batches, 0);
        assert_eq!(snap.wafers, 0);
        assert_eq!(snap.coverage, 0.0);
        assert_eq!(snap.throughput_wafers_per_sec, 0.0);
        assert_eq!(snap.latency.max, 0.0);
    }

    #[test]
    fn counts_and_coverage_accumulate() {
        let mut stats = ServingStats::new(3);
        stats.record_batch(0.010, &[(0, true), (1, true), (2, false)]);
        stats.record_batch(0.030, &[(1, false)]);
        let snap = stats.snapshot();
        assert_eq!(snap.batches, 2);
        assert_eq!(snap.wafers, 4);
        assert_eq!(snap.predicted, 2);
        assert_eq!(snap.abstained, 2);
        assert!((snap.coverage - 0.5).abs() < 1e-12);
        assert_eq!(snap.predicted_per_class, vec![1, 1, 0]);
        assert_eq!(snap.abstained_per_class, vec![0, 1, 1]);
        // 4 wafers over 40 ms of compute.
        assert!((snap.throughput_wafers_per_sec - 100.0).abs() < 1e-9);
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 / 1000.0).collect();
        let s = LatencySummary::from_samples(&samples);
        assert!((s.p50 - 0.050).abs() < 1e-12);
        assert!((s.p90 - 0.090).abs() < 1e-12);
        assert!((s.p99 - 0.099).abs() < 1e-12);
        assert!((s.max - 0.100).abs() < 1e-12);
        assert!((s.mean - 0.0505).abs() < 1e-12);
        // Single sample: every percentile is that sample.
        let one = LatencySummary::from_samples(&[0.25]);
        assert_eq!(one.p50, 0.25);
        assert_eq!(one.p99, 0.25);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut stats = ServingStats::new(2);
        stats.record_batch(0.002, &[(0, true), (1, false)]);
        let snap = stats.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: ServingSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_class_rejected() {
        let mut stats = ServingStats::new(2);
        stats.record_batch(0.001, &[(2, true)]);
    }

    #[test]
    fn memory_stays_bounded_while_totals_stay_exact() {
        let mut stats = ServingStats::with_window(2, 8);
        // 1000 batches of 3 wafers: 125x the window capacity.
        for i in 0..1000 {
            let latency = 0.001 * f64::from(i % 10 + 1);
            stats.record_batch(latency, &[(0, true), (1, true), (1, false)]);
        }
        assert_eq!(stats.window_len(), 8, "window must not grow past capacity");
        assert_eq!(stats.window_capacity(), 8);
        let snap = stats.snapshot();
        // Totals are exact over the whole stream.
        assert_eq!(snap.batches, 1000);
        assert_eq!(snap.wafers, 3000);
        assert_eq!(snap.predicted, 2000);
        assert_eq!(snap.abstained, 1000);
        assert!((snap.coverage - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(snap.latency_window_len, 8);
        assert_eq!(snap.latency_window_capacity, 8);
        // Throughput uses the exact busy-time sum, not the window:
        // 100 rounds of (1+..+10) ms = 5.5 s for 3000 wafers.
        assert!((snap.throughput_wafers_per_sec - 3000.0 / 5.5).abs() < 1e-6);
        // The batch summary describes the retained window of batches
        // (the last 8 batches: latencies 3..=10 ms)...
        assert!((snap.batch_latency.max - 0.010).abs() < 1e-12);
        assert!((snap.batch_latency.p50 - 0.006).abs() < 1e-12);
        // ...while the wafer summary holds the last 8 *wafer*
        // completions: 3 wafers at 10 ms, 3 at 9 ms, 2 at 8 ms.
        assert!((snap.latency.max - 0.010).abs() < 1e-12);
        assert!((snap.latency.p50 - 0.009).abs() < 1e-12);
    }

    #[test]
    fn per_wafer_latency_weights_wafers_not_batches() {
        let mut stats = ServingStats::new(2);
        // One 9-wafer batch at 10 ms and one single-wafer batch at
        // 100 ms. Per batch the median is 55 ms; per wafer, 9 of the
        // 10 wafers completed in 10 ms.
        stats.record_batch(0.010, &[(0, true); 9]);
        stats.record_batch(0.100, &[(1, false)]);
        let snap = stats.snapshot();
        assert!((snap.batch_latency.p50 - 0.010).abs() < 1e-12);
        assert!((snap.latency.p50 - 0.010).abs() < 1e-12);
        assert!((snap.latency.p99 - 0.100).abs() < 1e-12);
        assert_eq!(snap.compute_latency.max, 0.0, "no compute timings were fed");
    }

    #[test]
    fn compute_latency_tracks_per_wafer_timings() {
        let mut stats = ServingStats::new(2);
        stats.record_batch_timed(0.020, &[(0, true), (1, true)], &[0.004, 0.006]);
        let snap = stats.snapshot();
        assert!((snap.compute_latency.max - 0.006).abs() < 1e-12);
        assert!((snap.compute_latency.mean - 0.005).abs() < 1e-12);
        // Completion latency is the batch wall-clock for both wafers.
        assert!((snap.latency.p50 - 0.020).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "compute_secs length")]
    fn mismatched_compute_timings_rejected() {
        let mut stats = ServingStats::new(2);
        stats.record_batch_timed(0.01, &[(0, true), (1, true)], &[0.001]);
    }

    #[test]
    fn shed_wafers_are_counted_separately_from_model_abstentions() {
        let mut stats = ServingStats::new(2);
        stats.record_batch(0.010, &[(0, true), (1, false)]);
        stats.record_shed("invalid_input");
        stats.record_shed("invalid_input");
        stats.record_shed("deadline_exceeded");
        let snap = stats.snapshot();
        // Model counts are untouched by shedding.
        assert_eq!(snap.wafers, 2);
        assert_eq!(snap.predicted, 1);
        assert_eq!(snap.abstained, 1);
        assert!((snap.coverage - 0.5).abs() < 1e-12, "shed wafers must not dilute coverage");
        // Shedding has its own ledger.
        assert_eq!(snap.shed, 3);
        assert_eq!(snap.submitted, 5);
        assert_eq!(
            snap.shed_per_reason,
            vec![
                ShedCount { reason: "invalid_input".to_string(), count: 2 },
                ShedCount { reason: "deadline_exceeded".to_string(), count: 1 },
            ]
        );
        // And it round-trips through the JSON report.
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: ServingSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, snap);
    }
}
