use serde::{Deserialize, Serialize};

/// A square confusion matrix with rows = true class, columns =
/// predicted class (the layout of the paper's Table III).
///
/// # Example
///
/// ```
/// use eval::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert_eq!(cm.count(0, 1), 1);
/// assert!((cm.precision(1) - 0.5).abs() < 1e-6);
/// assert!((cm.recall(0) - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    /// Row-major `[true][pred]` counts.
    counts: Vec<u64>,
}

/// Precision / recall / F1 for one class, plus its support.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassScores {
    /// TP / (TP + FP); 0 when the class was never predicted.
    pub precision: f64,
    /// TP / (TP + FN); 0 when the class has no true samples.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub f1: f64,
    /// Number of true samples of the class.
    pub support: u64,
}

impl ConfusionMatrix {
    /// An empty `n_classes x n_classes` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes` is zero.
    #[must_use]
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        ConfusionMatrix { n_classes, counts: vec![0; n_classes * n_classes] }
    }

    /// Number of classes.
    #[must_use]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Record one `(true, predicted)` observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, true_class: usize, predicted: usize) {
        assert!(true_class < self.n_classes, "true class {true_class} out of range");
        assert!(predicted < self.n_classes, "predicted class {predicted} out of range");
        self.counts[true_class * self.n_classes + predicted] += 1;
    }

    /// Count of samples with the given true and predicted class.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn count(&self, true_class: usize, predicted: usize) -> u64 {
        assert!(true_class < self.n_classes && predicted < self.n_classes, "index out of range");
        self.counts[true_class * self.n_classes + predicted]
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of true samples of `class` (row sum).
    #[must_use]
    pub fn support(&self, class: usize) -> u64 {
        (0..self.n_classes).map(|p| self.count(class, p)).sum()
    }

    /// Number of predictions of `class` (column sum).
    #[must_use]
    pub fn predicted(&self, class: usize) -> u64 {
        (0..self.n_classes).map(|t| self.count(t, class)).sum()
    }

    /// Overall accuracy (trace / total); 0 when empty.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Accuracy restricted to the true classes for which `keep`
    /// returns true. The paper uses this with `keep = is_defect` to
    /// report the "correct detection rate for defect classes".
    #[must_use]
    pub fn accuracy_over<F: Fn(usize) -> bool>(&self, keep: F) -> f64 {
        let mut total = 0u64;
        let mut correct = 0u64;
        for t in 0..self.n_classes {
            if !keep(t) {
                continue;
            }
            total += self.support(t);
            correct += self.count(t, t);
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision of `class`; 0 when the class was never predicted.
    #[must_use]
    pub fn precision(&self, class: usize) -> f64 {
        let predicted = self.predicted(class);
        if predicted == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / predicted as f64
        }
    }

    /// Recall of `class`; 0 when the class has no true samples.
    #[must_use]
    pub fn recall(&self, class: usize) -> f64 {
        let support = self.support(class);
        if support == 0 {
            0.0
        } else {
            self.count(class, class) as f64 / support as f64
        }
    }

    /// F1 score of `class`; 0 when precision + recall is 0.
    #[must_use]
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Bundle precision / recall / F1 / support for one class.
    #[must_use]
    pub fn class_scores(&self, class: usize) -> ClassScores {
        ClassScores {
            precision: self.precision(class),
            recall: self.recall(class),
            f1: self.f1(class),
            support: self.support(class),
        }
    }

    /// Unweighted mean of per-class F1 scores (macro-F1) — more
    /// informative than accuracy under class imbalance, which is the
    /// core difficulty of the wafer dataset.
    #[must_use]
    pub fn macro_f1(&self) -> f64 {
        let sum: f64 = (0..self.n_classes).map(|c| self.f1(c)).sum();
        sum / self.n_classes as f64
    }

    /// Cohen's kappa: agreement corrected for chance. 1.0 is perfect
    /// agreement, 0.0 chance-level, negative worse than chance.
    /// Returns 0 for an empty matrix or degenerate marginals.
    #[must_use]
    pub fn cohens_kappa(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let po = self.accuracy();
        let pe: f64 = (0..self.n_classes)
            .map(|c| {
                (self.support(c) as f64 / total as f64) * (self.predicted(c) as f64 / total as f64)
            })
            .sum();
        if (1.0 - pe).abs() < 1e-12 {
            return 0.0;
        }
        (po - pe) / (1.0 - pe)
    }

    /// Render a per-class classification report (precision / recall /
    /// F1 / support), one row per class plus an accuracy footer.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != n_classes`.
    #[must_use]
    pub fn to_report(&self, labels: &[&str]) -> String {
        assert_eq!(labels.len(), self.n_classes, "label count mismatch");
        let mut out = String::new();
        out.push_str(&format!(
            "{:>12} {:>10} {:>10} {:>10} {:>10}\n",
            "class", "precision", "recall", "f1", "support"
        ));
        for (c, l) in labels.iter().enumerate() {
            let s = self.class_scores(c);
            out.push_str(&format!(
                "{:>12} {:>10.3} {:>10.3} {:>10.3} {:>10}\n",
                l, s.precision, s.recall, s.f1, s.support
            ));
        }
        out.push_str(&format!(
            "\naccuracy {:.3}   macro-F1 {:.3}   kappa {:.3}   ({} samples)\n",
            self.accuracy(),
            self.macro_f1(),
            self.cohens_kappa(),
            self.total()
        ));
        out
    }

    /// Merge another confusion matrix into this one.
    ///
    /// # Panics
    ///
    /// Panics if class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n_classes, other.n_classes, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Render the matrix as an aligned text table with the given row /
    /// column labels (truncated to 9 characters).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != n_classes`.
    #[must_use]
    pub fn to_table(&self, labels: &[&str]) -> String {
        assert_eq!(labels.len(), self.n_classes, "label count mismatch");
        let trunc = |s: &str| -> String { s.chars().take(9).collect() };
        let mut out = String::new();
        out.push_str(&format!("{:>10}", ""));
        for l in labels {
            out.push_str(&format!("{:>10}", trunc(l)));
        }
        out.push('\n');
        for (t, l) in labels.iter().enumerate() {
            out.push_str(&format!("{:>10}", trunc(l)));
            for p in 0..self.n_classes {
                out.push_str(&format!("{:>10}", self.count(t, p)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(3);
        // true 0: 8 correct, 2 -> class 1
        for _ in 0..8 {
            cm.record(0, 0);
        }
        for _ in 0..2 {
            cm.record(0, 1);
        }
        // true 1: 5 correct, 5 -> class 2
        for _ in 0..5 {
            cm.record(1, 1);
        }
        for _ in 0..5 {
            cm.record(1, 2);
        }
        // true 2: all 10 correct
        for _ in 0..10 {
            cm.record(2, 2);
        }
        cm
    }

    #[test]
    fn totals_and_accuracy() {
        let cm = sample_matrix();
        assert_eq!(cm.total(), 30);
        assert!((cm.accuracy() - 23.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn per_class_scores() {
        let cm = sample_matrix();
        // class 1: TP=5, FP=2, FN=5.
        assert!((cm.precision(1) - 5.0 / 7.0).abs() < 1e-9);
        assert!((cm.recall(1) - 0.5).abs() < 1e-9);
        let f1 = cm.f1(1);
        let expect = 2.0 * (5.0 / 7.0) * 0.5 / ((5.0 / 7.0) + 0.5);
        assert!((f1 - expect).abs() < 1e-9);
        assert_eq!(cm.class_scores(1).support, 10);
    }

    #[test]
    fn empty_class_edge_cases() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        // Class 2 never appears.
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
    }

    #[test]
    fn accuracy_over_subset() {
        let cm = sample_matrix();
        // Excluding class 2 (the "None"-like easy class).
        let acc = cm.accuracy_over(|c| c != 2);
        assert!((acc - 13.0 / 20.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample_matrix();
        let b = sample_matrix();
        a.merge(&b);
        assert_eq!(a.total(), 60);
        assert_eq!(a.count(1, 2), 10);
    }

    #[test]
    fn table_rendering_contains_counts() {
        let cm = sample_matrix();
        let table = cm.to_table(&["alpha", "beta", "gamma"]);
        assert!(table.contains("alpha"));
        assert!(table.contains('8'));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_validates_indices() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    fn macro_f1_averages_all_classes() {
        let cm = sample_matrix();
        let expect = (cm.f1(0) + cm.f1(1) + cm.f1(2)) / 3.0;
        assert!((cm.macro_f1() - expect).abs() < 1e-12);
    }

    #[test]
    fn kappa_perfect_agreement_is_one() {
        let mut cm = ConfusionMatrix::new(3);
        for c in 0..3 {
            for _ in 0..5 {
                cm.record(c, c);
            }
        }
        assert!((cm.cohens_kappa() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kappa_chance_level_is_zero() {
        // Predictor always says class 0, with uniform true classes:
        // po = 1/2, pe = 1/2 -> kappa = 0.
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..10 {
            cm.record(0, 0);
            cm.record(1, 0);
        }
        assert!(cm.cohens_kappa().abs() < 1e-9);
    }

    #[test]
    fn kappa_empty_is_zero() {
        assert_eq!(ConfusionMatrix::new(4).cohens_kappa(), 0.0);
    }

    #[test]
    fn report_contains_summary_line() {
        let cm = sample_matrix();
        let report = cm.to_report(&["a", "b", "c"]);
        assert!(report.contains("macro-F1"));
        assert!(report.contains("kappa"));
        assert!(report.lines().count() >= 5);
    }
}
