//! Property-based corruption tests for the v2 serialization
//! container: whatever a crash or bit rot does to a checkpoint file,
//! loading it returns a *typed* [`LoadError`] — never a panic, never
//! a silently wrong value.

use std::path::PathBuf;

use faultsim::{flip_bit_at, truncate_at};
use nn::layers::{Linear, Relu};
use nn::serialize::{
    read_container, Checkpoint, LoadError, StateDict, CONTAINER_HEADER_LEN, CONTAINER_MAGIC,
};
use nn::Sequential;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_path(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("nn_serialize_robust");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!("{tag}_{}_{case}.json", std::process::id()))
}

fn sample_state(seed: u64, width: usize) -> StateDict {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = Sequential::new().with(Linear::new(width, width + 1, &mut rng)).with(Relu::new());
    StateDict::capture(&mut net)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Save → load is the identity, for any parameter contents.
    #[test]
    fn roundtrip_is_identity(seed in any::<u64>(), width in 1usize..7) {
        let state = sample_state(seed, width);
        let path = temp_path("roundtrip", seed);
        state.save(&path).expect("save");
        let loaded = StateDict::load(&path).expect("pristine file loads");
        prop_assert_eq!(&state, &loaded);
        let _ = std::fs::remove_file(&path);
    }

    /// Truncation anywhere — mid-magic, mid-header, mid-payload —
    /// yields a typed error, classified by how much of the container
    /// survived. It never panics and never yields a value.
    #[test]
    fn any_truncation_is_a_typed_error(seed in any::<u64>(), cut_frac in 0.0f64..1.0) {
        let state = sample_state(seed, 4);
        let path = temp_path("trunc", seed);
        state.save(&path).expect("save");
        let len = std::fs::metadata(&path).expect("meta").len();
        let cut = ((cut_frac * len as f64) as u64).min(len - 1);
        truncate_at(&path, cut).expect("inject");
        let err = StateDict::load(&path).expect_err("corrupted file must not load");
        let magic = CONTAINER_MAGIC.len() as u64;
        match (cut, &err) {
            // Cut inside the magic: the remaining prefix is still
            // recognized as a torn v2 header, not mistaken for v1.
            (c, LoadError::Truncated { .. }) if c < magic => {}
            (c, _) if c < magic => panic!("cut {c} in magic gave {err:?}"),
            // Cut past the magic: always Truncated, with an honest
            // byte accounting.
            (c, LoadError::Truncated { expected, found }) => {
                prop_assert_eq!(*found, c);
                prop_assert!(*expected > *found, "expected {} > found {}", expected, found);
            }
            (c, other) => panic!("cut {c} gave {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A single flipped bit anywhere in the file is always caught:
    /// the error class depends on which header region the bit hit,
    /// and a payload flip is caught by the checksum.
    #[test]
    fn any_bit_flip_is_a_typed_error(
        seed in any::<u64>(),
        offset_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let state = sample_state(seed, 4);
        let path = temp_path("flip", seed);
        state.save(&path).expect("save");
        let len = std::fs::metadata(&path).expect("meta").len();
        let offset = ((offset_frac * len as f64) as u64).min(len - 1);
        flip_bit_at(&path, offset, bit).expect("inject");
        let err = StateDict::load(&path).expect_err("corrupted file must not load");
        let header = CONTAINER_HEADER_LEN as u64;
        match offset {
            // Magic damaged: the file no longer claims to be v2 and
            // the bytes are not valid v1 JSON either.
            o if o < 8 => prop_assert!(
                matches!(err, LoadError::Malformed(_)),
                "magic flip at {} gave {:?}", o, err
            ),
            o if o < 12 => prop_assert!(
                matches!(err, LoadError::UnsupportedVersion { .. }),
                "version flip at {} gave {:?}", o, err
            ),
            // Length field: the declared and actual sizes disagree in
            // one direction or the other.
            o if o < 20 => prop_assert!(
                matches!(err, LoadError::Truncated { .. } | LoadError::Malformed(_)),
                "length flip at {} gave {:?}", o, err
            ),
            o if o < header => prop_assert!(
                matches!(err, LoadError::ChecksumMismatch { .. }),
                "crc flip at {} gave {:?}", o, err
            ),
            o => prop_assert!(
                matches!(err, LoadError::ChecksumMismatch { .. }),
                "payload flip at {} gave {:?}", o, err
            ),
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Legacy files (bare JSON, the pre-container on-disk format)
    /// still load, for both artifact kinds.
    #[test]
    fn v1_bare_json_still_loads(seed in any::<u64>()) {
        let state = sample_state(seed, 3);
        let path = temp_path("v1_state", seed);
        std::fs::write(&path, serde_json::to_string(&state).expect("json")).expect("write");
        let container = read_container(&path).expect("v1 passthrough");
        prop_assert_eq!(container.version, 1);
        let loaded = StateDict::load(&path).expect("v1 state dict loads");
        prop_assert_eq!(&state, &loaded);
        let _ = std::fs::remove_file(&path);

        let ckpt = Checkpoint::new(state);
        let path = temp_path("v1_ckpt", seed);
        std::fs::write(&path, serde_json::to_string(&ckpt).expect("json")).expect("write");
        let loaded = Checkpoint::load(&path).expect("v1 checkpoint loads");
        prop_assert_eq!(&ckpt, &loaded);
        let _ = std::fs::remove_file(&path);
    }
}
