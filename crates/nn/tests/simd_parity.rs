//! Bit-identity of the SIMD GEMM kernels against the scalar path.
//!
//! The SIMD kernels (`crates/nn/src/simd.rs`) vectorize across output
//! columns, so every output element still folds its contraction in
//! strictly increasing `p` order with one fused multiply-add per step
//! — exactly the [`nn::gemm::reference`] contract. These tests demand
//! **bitwise** equality, with SIMD active and with the scalar path
//! forced, over random shapes (odd tails, `k` 0 and 1) and the exact
//! paper shapes from `BENCH_compute.json`.

use std::sync::{Mutex, MutexGuard, PoisonError};

use nn::{gemm, simd};
use proptest::prelude::*;

/// The SIMD dispatch switch is process-global; tests that flip it hold
/// this lock so cargo's parallel runner cannot interleave them.
static SIMD_CONFIG: Mutex<()> = Mutex::new(());

fn simd_lock() -> MutexGuard<'static, ()> {
    SIMD_CONFIG.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Put the dispatch switch back the way the process environment wants
/// it (`WM_FORCE_SCALAR` wins over hardware detection).
fn restore_dispatch() {
    let forced = std::env::var_os("WM_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0");
    simd::set_force_scalar(forced);
}

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

type Kernel = fn(usize, usize, usize, &[f32], &[f32], &mut [f32]);

/// Run `fast` with SIMD active and with the scalar path forced; both
/// results must be bitwise equal to the serial reference. Operand
/// lengths `m·k` and `k·n` cover the transposed layouts too
/// (`m·k == k·m`, `k·n == n·k`), and `C` starts non-zero so the
/// accumulate contract is under test as well.
fn check_both_paths(fast: Kernel, reference: Kernel, m: usize, k: usize, n: usize, seed: u64) {
    let _guard = simd_lock();
    let a = rand_vec(m * k, seed);
    let b = rand_vec(k * n, seed ^ 0x9e3779b97f4a7c15);
    let c0 = rand_vec(m * n, seed ^ 0x85ebca6b);
    let mut expect = c0.clone();
    reference(m, k, n, &a, &b, &mut expect);
    for force_scalar in [false, true] {
        simd::set_force_scalar(force_scalar);
        let mut c = c0.clone();
        fast(m, k, n, &a, &b, &mut c);
        assert_eq!(
            c,
            expect,
            "shape ({m},{k},{n}), force_scalar={force_scalar}, simd_active={}",
            simd::active()
        );
    }
    restore_dispatch();
}

fn check_all_kernels(m: usize, k: usize, n: usize, seed: u64) {
    check_both_paths(gemm::sgemm, gemm::reference::sgemm, m, k, n, seed);
    check_both_paths(gemm::sgemm_nt, gemm::reference::sgemm_nt, m, k, n, seed ^ 0xa5a5);
    check_both_paths(gemm::sgemm_tn, gemm::reference::sgemm_tn, m, k, n, seed ^ 0x5a5a);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sgemm_simd_is_bit_identical(
        seed in any::<u64>(), m in 1usize..40, k in 0usize..96, n in 1usize..80,
    ) {
        check_both_paths(gemm::sgemm, gemm::reference::sgemm, m, k, n, seed);
    }

    #[test]
    fn sgemm_nt_simd_is_bit_identical(
        seed in any::<u64>(), m in 1usize..40, k in 0usize..96, n in 1usize..80,
    ) {
        check_both_paths(gemm::sgemm_nt, gemm::reference::sgemm_nt, m, k, n, seed);
    }

    #[test]
    fn sgemm_tn_simd_is_bit_identical(
        seed in any::<u64>(), m in 1usize..40, k in 0usize..96, n in 1usize..80,
    ) {
        check_both_paths(gemm::sgemm_tn, gemm::reference::sgemm_tn, m, k, n, seed);
    }

    #[test]
    fn narrow_nt_simd_is_bit_identical(
        seed in any::<u64>(), m in 1usize..3, k in 1usize..600, n in 1usize..300,
    ) {
        // m <= 2 routes to the narrow transpose kernel once the shape
        // clears the small-problem cutoff; below it the reference runs
        // on both sides, which must (trivially) agree too.
        check_both_paths(gemm::sgemm_nt, gemm::reference::sgemm_nt, m, k, n, seed);
    }
}

/// The exact Table I shapes `perf_report` measures (`BENCH_compute.json`),
/// for all three kernels: conv forwards (`nn`), the fc forward and conv
/// weight-gradient (`nt`), and the conv input-gradients (`tn`).
#[test]
fn paper_shapes_are_bit_identical() {
    for &(m, k, n) in &[
        (64, 25, 1024),
        (32, 576, 256),
        (32, 288, 64),
        (32, 512, 256),
        (32, 256, 576),
        (25, 64, 1024),
        (576, 32, 256),
    ] {
        check_all_kernels(m, k, n, 101);
    }
    // The serving-sized fc products that route to the narrow kernel.
    check_both_paths(gemm::sgemm_nt, gemm::reference::sgemm_nt, 1, 512, 256, 103);
    check_both_paths(gemm::sgemm_nt, gemm::reference::sgemm_nt, 2, 512, 256, 104);
}

/// Edge tails of every vector loop: `k` 0 and 1, widths that are not
/// multiples of 8 or 16 (partial microkernel tiles, thin-sweep scalar
/// lanes, narrow-kernel column tails), row-block remainders, and
/// contractions longer than one `KC` strip.
#[test]
fn edge_tails_are_bit_identical() {
    for &(m, k, n) in &[
        (1, 1, 1),
        (2, 0, 8),
        (3, 0, 5),
        (70, 1, 70),
        (33, 7, 31),
        (65, 130, 19),
        (37, 1030, 33),
        (37, 33, 129),
        (5, 64, 64),
        (17, 64, 100),
        (16, 65, 24),
        (31, 63, 41),
        (4, 16, 16),
        (1, 512, 9),
        (2, 100, 30),
        (2, 513, 263),
        (1, 1031, 100),
    ] {
        check_all_kernels(m, k, n, 211);
    }
}

/// `set_force_scalar(true)` (the `WM_FORCE_SCALAR=1` escape hatch)
/// must actually switch dispatch off, and switching back must restore
/// the hardware decision.
#[test]
fn force_scalar_switch_disables_simd() {
    let _guard = simd_lock();
    simd::set_force_scalar(true);
    assert!(!simd::active(), "forced scalar must disable the SIMD kernels");
    simd::set_force_scalar(false);
    #[cfg(target_arch = "x86_64")]
    assert_eq!(
        simd::active(),
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma"),
        "re-enabling must follow hardware detection"
    );
    #[cfg(not(target_arch = "x86_64"))]
    assert!(!simd::active(), "non-x86_64 has no SIMD kernels");
    restore_dispatch();
}
