//! Property-based tests on the numerical substrate.

use nn::layers::{Conv2d, Linear, MaxPool2d, Relu};
use nn::loss::{mse, softmax, softmax_cross_entropy};
use nn::{Layer, Sequential, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(shape, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GEMM distributes over addition: (A + B)·C = A·C + B·C.
    #[test]
    fn gemm_is_linear(seed in any::<u64>(), m in 1usize..6, k in 1usize..6, n in 1usize..6) {
        let a = rand_tensor(&[m, k], seed);
        let b = rand_tensor(&[m, k], seed ^ 1);
        let c = rand_tensor(&[k, n], seed ^ 2);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Matrix multiplication is associative: (A·B)·C = A·(B·C).
    #[test]
    fn gemm_is_associative(seed in any::<u64>(), n in 1usize..6) {
        let a = rand_tensor(&[n, n], seed);
        let b = rand_tensor(&[n, n], seed ^ 3);
        let c = rand_tensor(&[n, n], seed ^ 4);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    /// Softmax output is a probability row-distribution and is
    /// invariant to per-row shifts.
    #[test]
    fn softmax_is_shift_invariant_distribution(
        seed in any::<u64>(),
        n in 1usize..5,
        c in 2usize..6,
        shift in -50.0f32..50.0,
    ) {
        let logits = rand_tensor(&[n, c], seed);
        let p = softmax(&logits);
        for row in p.data().chunks_exact(c) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let shifted = softmax(&logits.map(|v| v + shift));
        for (a, b) in p.data().iter().zip(shifted.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Cross-entropy is minimized at the true label: boosting the true
    /// logit never increases the loss.
    #[test]
    fn boosting_true_logit_reduces_ce(seed in any::<u64>(), c in 2usize..6) {
        let logits = rand_tensor(&[1, c], seed);
        let label = (seed as usize) % c;
        let (base, _) = softmax_cross_entropy(&logits, &[label], None);
        let mut boosted = logits.clone();
        boosted.data_mut()[label] += 1.0;
        let (better, _) = softmax_cross_entropy(&boosted, &[label], None);
        prop_assert!(better <= base + 1e-6);
    }

    /// A Linear layer is exactly linear: f(ax) = a·f(x) − (a−1)·bias.
    #[test]
    fn linear_layer_is_affine(seed in any::<u64>(), scale in -2.0f32..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fc = Linear::new(3, 2, &mut rng);
        let x = rand_tensor(&[1, 3], seed ^ 7);
        let fx = fc.forward(&x);
        let fax = fc.forward(&x.map(|v| v * scale));
        let f0 = fc.forward(&Tensor::zeros(&[1, 3]));
        // f(ax) = a·(f(x) − f(0)) + f(0)
        for i in 0..2 {
            let expect = scale * (fx.data()[i] - f0.data()[i]) + f0.data()[i];
            prop_assert!((fax.data()[i] - expect).abs() < 1e-3);
        }
    }

    /// MaxPool output is bounded by the input range and its backward
    /// pass conserves the gradient mass.
    #[test]
    fn maxpool_bounds_and_gradient_mass(seed in any::<u64>()) {
        let x = rand_tensor(&[1, 2, 6, 6], seed);
        let mut pool = MaxPool2d::new(2);
        let y = pool.forward(&x);
        let x_max = x.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let y_max = y.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(y_max <= x_max + 1e-6);
        let grad = rand_tensor(y.shape(), seed ^ 9).map(f32::abs);
        let gi = pool.backward(&grad);
        prop_assert!((gi.sum() - grad.sum()).abs() < 1e-3);
    }

    /// End-to-end backward gradients match finite differences on a
    /// small random conv network.
    #[test]
    fn conv_net_gradcheck(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new()
            .with(Conv2d::same(1, 2, 3, &mut rng))
            .with(Relu::new())
            .with(MaxPool2d::new(2));
        let x = Tensor::randn(&[1, 1, 6, 6], 1.0, &mut rng);
        let y = net.forward(&x);
        let target = Tensor::randn(y.shape(), 1.0, &mut rng);
        let (_, grad) = mse(&y, &target);
        net.zero_grad();
        let gx = net.backward(&grad);
        // Small epsilon: the network is piecewise-linear (ReLU + max
        // pooling), and a large step can straddle a kink where the
        // two-sided difference averages two regimes.
        let eps = 1e-3f32;
        // Spot-check three input coordinates.
        for idx in [0usize, 17, 35] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let (lp, _) = mse(&net.forward(&xp), &target);
            let (lm, _) = mse(&net.forward(&xm), &target);
            let numeric = (lp - lm) / (2.0 * eps);
            prop_assert!(
                (numeric - gx.data()[idx]).abs() < 3e-2,
                "grad mismatch at {}: {} vs {}", idx, numeric, gx.data()[idx]
            );
        }
    }
}
