//! Bit-identity of the parallel compute core across thread limits.
//!
//! The worker pool's contract (DESIGN.md, "Threading model &
//! determinism") is that results never depend on the thread count: the
//! chunk grid is a function of the problem shape alone and every
//! cross-chunk reduction runs in a fixed order. These tests pin that
//! contract for the three GEMM kernels and the batch-parallel `Conv2d`
//! passes against single-thread serial references.

use std::sync::{Mutex, MutexGuard, PoisonError};

use nn::layers::Conv2d;
use nn::pool;
use nn::{Layer, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread limits to sweep: `1` forces the serial inline path, `2` and
/// `7` exercise pool dispatch with fewer and (typically) more threads
/// than chunks.
const LIMITS: [usize; 3] = [1, 2, 7];

/// The pool limit is process-global state; tests that reconfigure it
/// must hold this lock so cargo's parallel test runner cannot
/// interleave them.
static POOL_CONFIG: Mutex<()> = Mutex::new(());

fn pool_lock() -> MutexGuard<'static, ()> {
    POOL_CONFIG.lock().unwrap_or_else(PoisonError::into_inner)
}

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

type Kernel = fn(usize, usize, usize, &[f32], &[f32], &mut [f32]);

/// Run `fast` at every thread limit and demand bitwise equality with
/// the single-thread naive `slow` kernel. Operand lengths `m·k` and
/// `k·n` cover the transposed layouts too (`m·k == k·m`).
fn check_kernel(fast: Kernel, slow: Kernel, m: usize, k: usize, n: usize, seed: u64) {
    let _guard = pool_lock();
    let a = rand_vec(m * k, seed);
    let b = rand_vec(k * n, seed ^ 0x9e3779b97f4a7c15);
    let c0 = rand_vec(m * n, seed ^ 0x85ebca6b);
    let mut expect = c0.clone();
    slow(m, k, n, &a, &b, &mut expect);
    for limit in LIMITS {
        pool::set_thread_limit(limit);
        let mut c = c0.clone();
        fast(m, k, n, &a, &b, &mut c);
        assert_eq!(c, expect, "shape ({m},{k},{n}) at thread limit {limit}");
    }
    pool::set_thread_limit(pool::default_thread_limit());
}

/// Forward and backward a fresh identically-seeded `Conv2d` at each
/// thread limit; outputs, input gradients, and parameter gradients
/// must all be bitwise equal to the single-thread run.
fn check_conv(seed: u64, batch: usize, c_in: usize, c_out: usize, hw: usize) {
    let _guard = pool_lock();
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Tensor::randn(&[batch, c_in, hw, hw], 1.0, &mut rng);
    let run = |limit: usize, grad: Option<&Tensor>| {
        pool::set_thread_limit(limit);
        let mut conv = Conv2d::same(c_in, c_out, 3, &mut StdRng::seed_from_u64(seed ^ 1));
        let y = conv.forward(&x);
        let grad = match grad {
            Some(g) => g.clone(),
            None => Tensor::randn(y.shape(), 1.0, &mut StdRng::seed_from_u64(seed ^ 2)),
        };
        let gx = conv.backward(&grad);
        let mut param_grads = Vec::new();
        conv.visit_params(&mut |p| param_grads.push(p.grad.data().to_vec()));
        (y, grad, gx, param_grads)
    };
    let (y1, grad, gx1, pg1) = run(1, None);
    for limit in [2usize, 7] {
        let (y, _, gx, pg) = run(limit, Some(&grad));
        assert_eq!(y.data(), y1.data(), "forward at thread limit {limit}");
        assert_eq!(gx.data(), gx1.data(), "grad_input at thread limit {limit}");
        assert_eq!(pg, pg1, "parameter grads at thread limit {limit}");
    }
    pool::set_thread_limit(pool::default_thread_limit());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sgemm_matches_reference_at_any_thread_limit(
        seed in any::<u64>(), m in 1usize..48, k in 1usize..80, n in 1usize..48,
    ) {
        check_kernel(nn::gemm::sgemm, nn::gemm::reference::sgemm, m, k, n, seed);
    }

    #[test]
    fn sgemm_nt_matches_reference_at_any_thread_limit(
        seed in any::<u64>(), m in 1usize..48, k in 1usize..80, n in 1usize..48,
    ) {
        check_kernel(nn::gemm::sgemm_nt, nn::gemm::reference::sgemm_nt, m, k, n, seed);
    }

    #[test]
    fn sgemm_tn_matches_reference_at_any_thread_limit(
        seed in any::<u64>(), m in 1usize..48, k in 1usize..80, n in 1usize..48,
    ) {
        check_kernel(nn::gemm::sgemm_tn, nn::gemm::reference::sgemm_tn, m, k, n, seed);
    }

    #[test]
    fn conv2d_batch_parallelism_is_invisible(
        seed in any::<u64>(),
        batch in 1usize..6,
        c_in in 1usize..3,
        c_out in 1usize..4,
        hw in 3usize..8,
    ) {
        check_conv(seed, batch, c_in, c_out, hw);
    }
}

/// Odd shapes large enough to cross `PARALLEL_THRESHOLD`, covering the
/// thin-k row sweep, the MR×NR tile grid, and a contraction longer
/// than one KC strip — paths the bounded random dims above rarely
/// reach.
#[test]
fn large_shapes_cross_the_parallel_threshold() {
    for &(m, k, n) in &[(67, 33, 129), (67, 129, 65), (33, 1030, 17)] {
        check_kernel(nn::gemm::sgemm, nn::gemm::reference::sgemm, m, k, n, 21);
        check_kernel(nn::gemm::sgemm_nt, nn::gemm::reference::sgemm_nt, m, k, n, 22);
        check_kernel(nn::gemm::sgemm_tn, nn::gemm::reference::sgemm_tn, m, k, n, 23);
    }
}
