//! The inference-only forward pass (`Layer::infer`) must be
//! bit-identical to the training forward pass for every layer on the
//! serving path — serving reuses training weights, so any numeric
//! drift between the two paths would silently change deployed
//! predictions and invalidate the calibrated threshold.

use nn::layers::{Conv2d, Dropout, Flatten, Linear, MaxPool2d, Relu, Sigmoid, Tanh};
use nn::{Layer, Sequential, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A paper-shaped trunk: three conv/relu/pool stages, then FC.
fn trunk(rng: &mut StdRng) -> Sequential {
    Sequential::new()
        .with(Conv2d::same(1, 4, 3, rng))
        .with(Relu::new())
        .with(MaxPool2d::new(2))
        .with(Conv2d::same(4, 8, 3, rng))
        .with(Relu::new())
        .with(MaxPool2d::new(2))
        .with(Flatten::new())
        .with(Linear::new(8 * 4 * 4, 16, rng))
        .with(Tanh::new())
        .with(Linear::new(16, 1, rng))
        .with(Sigmoid::new())
}

#[test]
fn infer_matches_forward_bitwise_through_a_full_chain() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = trunk(&mut rng);
    let x = Tensor::randn(&[5, 1, 16, 16], 1.0, &mut rng);
    let trained_path = net.forward(&x);
    let serving_path = net.infer(&x);
    assert_eq!(trained_path.shape(), serving_path.shape());
    assert_eq!(trained_path.data(), serving_path.data(), "infer must be bit-identical to forward");
}

#[test]
fn infer_per_sample_matches_batched_forward_bitwise() {
    // The serving engine runs samples individually (sample-major);
    // per-sample results must still match the batched training pass.
    let mut rng = StdRng::seed_from_u64(8);
    let mut net = trunk(&mut rng);
    let x = Tensor::randn(&[4, 1, 16, 16], 1.0, &mut rng);
    let batched = net.forward(&x);
    let sample_len = 16 * 16;
    for i in 0..4 {
        let sample = Tensor::from_vec(
            x.data()[i * sample_len..(i + 1) * sample_len].to_vec(),
            &[1, 1, 16, 16],
        );
        let y = net.infer(&sample);
        assert_eq!(y.data(), &batched.data()[i..i + 1], "sample {i} diverged");
    }
}

#[test]
fn infer_leaves_backward_state_untouched() {
    // An interleaved inference call must not clobber the caches the
    // next backward pass depends on.
    let mut rng = StdRng::seed_from_u64(9);
    let mut net = Sequential::new().with(Linear::new(4, 3, &mut rng)).with(Relu::new());
    let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
    let y = net.forward(&x);
    let probe = Tensor::randn(&[6, 4], 1.0, &mut rng);
    let _ = net.infer(&probe);
    let grad = net.backward(&Tensor::full(&[2, 3], 1.0));
    assert_eq!(grad.shape(), x.shape());
    assert_eq!(y.shape(), &[2, 3]);
}

#[test]
fn dropout_infer_is_identity_even_in_training_mode() {
    let drop = Dropout::new(0.5, 1);
    let x = Tensor::full(&[8], 2.0);
    assert_eq!(drop.infer(&x), x);
}
