//! Explicit SIMD micro-kernels for the GEMM core.
//!
//! On `x86_64` with AVX2 + FMA (detected once at runtime) the blocked
//! GEMM's innermost loops run as 8-lane vector code; everywhere else —
//! other architectures, older x86, or `WM_FORCE_SCALAR=1` — the safe
//! wrappers here return `false` and the portable scalar kernels in
//! [`crate::gemm`] run instead.
//!
//! # Bit-identity
//!
//! The numerical contract ([`crate::gemm::reference`]) is: per output
//! element, contributions fold onto the resident `C` value in strictly
//! increasing `p` order via `f32::mul_add` (fused, single rounding).
//! Every kernel here vectorizes across **output columns** — eight
//! independent accumulation chains per vector — so each lane still
//! walks its own element's contraction in increasing `p` order. The
//! vector step is `_mm256_fmadd_ps`, which is lane-wise exactly the
//! scalar `f32::mul_add` (one IEEE-754 rounding per step), so the
//! vector kernels are bit-identical to the scalar ones: same summands,
//! same order, same rounding. A dot-product-style vectorization along
//! `p` (horizontal reduction) would *not* have this property, which is
//! why the narrow `nt` kernel transposes 8×8 blocks of `B` into
//! column-major registers instead of reducing along rows.
//!
//! Tail handling never changes element order either: partial widths
//! fall back to scalar `f32::mul_add` chains over the same `p` range,
//! and the `k % 8` remainder of the narrow `nt` kernel finishes each
//! lane serially after the vector prefix.

// Deny-by-default in the crate root; raw-pointer vector loads/stores
// with hoisted bounds proofs are this module's documented exception.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Dispatch state: detection has not run yet.
const UNINIT: u8 = 0;
/// Dispatch state: run the portable scalar kernels.
const SCALAR: u8 = 1;
/// Dispatch state: run the AVX2 kernels.
const SIMD: u8 = 2;

/// Latched dispatch decision (`UNINIT` until the first kernel call).
static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// Whether the vector kernels are active for this process.
///
/// First call probes the CPU (AVX2 + FMA via
/// `is_x86_feature_detected!`) and the `WM_FORCE_SCALAR` environment
/// variable (any value other than empty or `0` forces the scalar
/// path); the decision is latched so the hot-path check is one relaxed
/// atomic load.
#[inline]
pub fn active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        UNINIT => {
            let on = !force_scalar_env() && hardware_supported();
            STATE.store(if on { SIMD } else { SCALAR }, Ordering::Relaxed);
            on
        }
        state => state == SIMD,
    }
}

/// Force the scalar kernels on (`true`) or re-enable hardware
/// detection (`false`), overriding both the latched decision and the
/// `WM_FORCE_SCALAR` environment variable. Intended for tests and
/// benchmarks that compare the two paths in one process.
pub fn set_force_scalar(on: bool) {
    let state = if !on && hardware_supported() { SIMD } else { SCALAR };
    STATE.store(state, Ordering::Relaxed);
}

/// `WM_FORCE_SCALAR` is set to something truthy.
fn force_scalar_env() -> bool {
    std::env::var_os("WM_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0")
}

/// The CPU this process runs on can execute the vector kernels.
#[cfg(target_arch = "x86_64")]
fn hardware_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// The CPU this process runs on can execute the vector kernels.
#[cfg(not(target_arch = "x86_64"))]
fn hardware_supported() -> bool {
    false
}

/// Vector [`crate::gemm`] microkernel step: returns `true` if the AVX2
/// tile kernel ran, `false` if the caller must run the scalar one.
#[inline]
pub(crate) fn microkernel(
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` is true only after AVX2+FMA detection.
        unsafe { avx2::microkernel(kc, ap, bp, c, ldc, mr, nr) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (kc, ap, bp, c, ldc, mr, nr);
    false
}

/// Rows per vector thin-`k` sweep group. Six rows × two vectors keeps
/// twelve accumulators live (under the 16 `ymm` registers) while every
/// `B` load feeds six fused multiply-adds, so the sweep is FMA-bound
/// rather than load-bound.
#[cfg(target_arch = "x86_64")]
const THIN_ROWS: usize = 6;

/// Vector thin-`k` kernel for one `C` row block: gathers all `mb` `A`
/// rows once via `gather(row_in_block, dest)`, then walks **column
/// strips in the outer loop** and row groups of [`THIN_ROWS`] inside.
/// One 16-wide `B` strip (`k` cache lines) is re-used by every row
/// group while L1-hot, so `B` streams in from L2 once per row block
/// instead of once per group. Returns `true` if the AVX2 kernel ran,
/// `false` if the caller must run the scalar row-pair sweep. Both the
/// row grouping (6 vs 2) and the strip visit order differ from the
/// scalar path, but each output element's accumulation chain is
/// independent and unchanged, so results stay bit-identical.
#[inline]
pub(crate) fn thin_block(
    k: usize,
    n: usize,
    mb: usize,
    b: &[f32],
    c_block: &mut [f32],
    gather: impl Fn(usize, &mut [f32; crate::gemm::THIN_K]),
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() && mb <= crate::gemm::MC {
        let mut a_rows = [[0.0f32; crate::gemm::THIN_K]; crate::gemm::MC];
        for (r, a_row) in a_rows.iter_mut().enumerate().take(mb) {
            gather(r, a_row);
        }
        // SAFETY: `active()` is true only after AVX2+FMA detection.
        unsafe { avx2::thin_strips(k, n, mb, &a_rows, b, c_block) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (k, n, mb, b, c_block, &gather);
    false
}

/// Vector narrow `A·Bᵀ` kernel (`m <= 2`): returns `true` if the AVX2
/// kernel ran.
#[inline]
pub(crate) fn nt_narrow(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` is true only after AVX2+FMA detection.
        unsafe {
            if m == 2 {
                avx2::nt_narrow::<2>(k, n, a, b, c);
            } else {
                avx2::nt_narrow::<1>(k, n, a, b, c);
            }
        }
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (m, k, n, a, b, c);
    false
}

/// Vector packing of a transposed (`[n,k]`) `B` operand into column
/// panels: returns `true` if the AVX2 kernel ran. Pure data movement —
/// trivially bit-identical, but the scalar scatter is the single
/// hottest non-FLOP loop of the `nt` path.
#[inline]
pub(crate) fn pack_b_transposed(bp: &mut [f32], b: &[f32], k: usize, n: usize) -> bool {
    #[cfg(target_arch = "x86_64")]
    if active() {
        // SAFETY: `active()` is true only after AVX2+FMA detection.
        unsafe { avx2::pack_b_transposed(bp, b, k, n) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (bp, b, k, n);
    false
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_permute2f128_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_shuffle_ps, _mm256_storeu_ps, _mm256_unpackhi_ps,
        _mm256_unpacklo_ps,
    };

    use super::THIN_ROWS;
    use crate::gemm::{MR, NR, NTW, THIN_K};

    /// AVX2 `MR`×`NR` register tile, bit-identical to
    /// [`crate::gemm`]'s scalar microkernel: `C` is staged into a
    /// zero-padded `MR`×`NR` tile so every vector op runs full-width
    /// (pad lanes accumulate the packers' zero-filled slots and are
    /// never stored), and each of the `MR`×2 accumulators folds the
    /// `kc` strip in increasing `p` order with one fused step per `p`.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 + FMA are available. Slice bounds are
    /// checked here: `ap`/`bp` are re-sliced to their packed lengths
    /// and `c` rows are staged through the tile with safe copies.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn microkernel(
        kc: usize,
        ap: &[f32],
        bp: &[f32],
        c: &mut [f32],
        ldc: usize,
        mr: usize,
        nr: usize,
    ) {
        let ap = &ap[..kc * MR];
        let bp = &bp[..kc * NR];
        if mr == MR && nr == NR {
            // Full tile (the overwhelmingly common case): accumulate
            // straight from/to `C`, no staging copies.
            let _ = &c[..(MR - 1) * ldc + NR]; // hoisted bounds proof
            let mut acc = [[_mm256_setzero_ps(); 2]; MR];
            for (r, acc_r) in acc.iter_mut().enumerate() {
                acc_r[0] = _mm256_loadu_ps(c.as_ptr().add(r * ldc));
                acc_r[1] = _mm256_loadu_ps(c.as_ptr().add(r * ldc + 8));
            }
            for p in 0..kc {
                // In bounds: p < kc, so p*NR + 15 < kc*NR = bp.len()
                // and p*MR + MR - 1 < kc*MR = ap.len().
                let b0 = _mm256_loadu_ps(bp.as_ptr().add(p * NR));
                let b1 = _mm256_loadu_ps(bp.as_ptr().add(p * NR + 8));
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let a = _mm256_set1_ps(*ap.get_unchecked(p * MR + r));
                    acc_r[0] = _mm256_fmadd_ps(a, b0, acc_r[0]);
                    acc_r[1] = _mm256_fmadd_ps(a, b1, acc_r[1]);
                }
            }
            for (r, acc_r) in acc.iter().enumerate() {
                _mm256_storeu_ps(c.as_mut_ptr().add(r * ldc), acc_r[0]);
                _mm256_storeu_ps(c.as_mut_ptr().add(r * ldc + 8), acc_r[1]);
            }
            return;
        }
        // Edge tile: stage `C` through a zero-padded MR×NR tile so the
        // vector loop still runs full-width (pad lanes accumulate the
        // packers' zero-filled slots and are never stored).
        let mut tile = [[0.0f32; NR]; MR];
        for r in 0..mr {
            tile[r][..nr].copy_from_slice(&c[r * ldc..r * ldc + nr]);
        }
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for r in 0..MR {
            acc[r][0] = _mm256_loadu_ps(tile[r].as_ptr());
            acc[r][1] = _mm256_loadu_ps(tile[r].as_ptr().add(8));
        }
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(bp.as_ptr().add(p * NR));
            let b1 = _mm256_loadu_ps(bp.as_ptr().add(p * NR + 8));
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let a = _mm256_set1_ps(*ap.get_unchecked(p * MR + r));
                acc_r[0] = _mm256_fmadd_ps(a, b0, acc_r[0]);
                acc_r[1] = _mm256_fmadd_ps(a, b1, acc_r[1]);
            }
        }
        for r in 0..mr {
            _mm256_storeu_ps(tile[r].as_mut_ptr(), acc[r][0]);
            _mm256_storeu_ps(tile[r].as_mut_ptr().add(8), acc[r][1]);
            c[r * ldc..r * ldc + nr].copy_from_slice(&tile[r][..nr]);
        }
    }

    /// AVX2 thin-`k` sweep over one `C` row block, bit-identical to
    /// the scalar `thin_sweep`: 16-wide column strips in the outer
    /// loop, row groups of up to [`THIN_ROWS`] inside (so each strip's
    /// `k` cache lines of `B` are re-used L1-hot by every group); the
    /// `n % 16` tail runs an 8-wide chunk and then scalar lanes, every
    /// element still folding its contraction in increasing `p` order.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 + FMA are available, `b.len() >= k*n`,
    /// `c_block.len() >= mb*n` (both re-sliced below), and
    /// `a_rows.len() >= mb`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn thin_strips(
        k: usize,
        n: usize,
        mb: usize,
        a_rows: &[[f32; THIN_K]],
        b: &[f32],
        c_block: &mut [f32],
    ) {
        let b = &b[..k * n];
        let c_block = &mut c_block[..mb * n];
        assert!(a_rows.len() >= mb);
        let mut j0 = 0;
        while j0 + 16 <= n {
            let mut r = 0;
            while r < mb {
                let rows = (mb - r).min(THIN_ROWS);
                let a_group = &a_rows[r..];
                let c_rows = &mut c_block[r * n..];
                match rows {
                    6 => strip16::<6>(k, n, j0, a_group, b, c_rows),
                    5 => strip16::<5>(k, n, j0, a_group, b, c_rows),
                    4 => strip16::<4>(k, n, j0, a_group, b, c_rows),
                    3 => strip16::<3>(k, n, j0, a_group, b, c_rows),
                    2 => strip16::<2>(k, n, j0, a_group, b, c_rows),
                    _ => strip16::<1>(k, n, j0, a_group, b, c_rows),
                }
                r += rows;
            }
            j0 += 16;
        }
        if j0 + 8 <= n {
            let mut r = 0;
            while r < mb {
                let rows = (mb - r).min(THIN_ROWS);
                let a_group = &a_rows[r..];
                let c_rows = &mut c_block[r * n..];
                match rows {
                    6 => strip8::<6>(k, n, j0, a_group, b, c_rows),
                    5 => strip8::<5>(k, n, j0, a_group, b, c_rows),
                    4 => strip8::<4>(k, n, j0, a_group, b, c_rows),
                    3 => strip8::<3>(k, n, j0, a_group, b, c_rows),
                    2 => strip8::<2>(k, n, j0, a_group, b, c_rows),
                    _ => strip8::<1>(k, n, j0, a_group, b, c_rows),
                }
                r += rows;
            }
            j0 += 8;
        }
        for j in j0..n {
            for r in 0..mb {
                let mut slot = c_block[r * n + j];
                let a_row = &a_rows[r];
                for p in 0..k {
                    slot = a_row[p].mul_add(b[p * n + j], slot);
                }
                c_block[r * n + j] = slot;
            }
        }
    }

    /// One 16-wide strip of [`thin_strips`]: `ROWS` `C` rows × two
    /// vectors accumulate the whole contraction, every `B` load
    /// feeding `ROWS` fused multiply-adds.
    ///
    /// # Safety
    ///
    /// AVX2 + FMA available; `j0 + 16 <= n`, `b.len() >= k*n`,
    /// `c_rows.len() >= ROWS*n`, `a_rows.len() >= ROWS`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn strip16<const ROWS: usize>(
        k: usize,
        n: usize,
        j0: usize,
        a_rows: &[[f32; THIN_K]],
        b: &[f32],
        c_rows: &mut [f32],
    ) {
        const { assert!(ROWS >= 1 && ROWS <= THIN_ROWS) };
        // Hoisted bounds proofs for the raw loads/stores below: the
        // deepest C access is (ROWS-1)*n + j0 + 16 <= ROWS*n, the
        // deepest B access (k-1)*n + j0 + 16 <= k*n.
        let _ = &c_rows[..(ROWS - 1) * n + j0 + 16];
        let _ = &b[..k * n];
        let _ = &a_rows[..ROWS];
        let mut acc = [[_mm256_setzero_ps(); 2]; ROWS];
        for (r, acc_r) in acc.iter_mut().enumerate() {
            acc_r[0] = _mm256_loadu_ps(c_rows.as_ptr().add(r * n + j0));
            acc_r[1] = _mm256_loadu_ps(c_rows.as_ptr().add(r * n + j0 + 8));
        }
        for p in 0..k {
            let base = b.as_ptr().add(p * n + j0);
            let b0 = _mm256_loadu_ps(base);
            let b1 = _mm256_loadu_ps(base.add(8));
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let a = _mm256_set1_ps(*a_rows.get_unchecked(r).get_unchecked(p));
                acc_r[0] = _mm256_fmadd_ps(a, b0, acc_r[0]);
                acc_r[1] = _mm256_fmadd_ps(a, b1, acc_r[1]);
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            _mm256_storeu_ps(c_rows.as_mut_ptr().add(r * n + j0), acc_r[0]);
            _mm256_storeu_ps(c_rows.as_mut_ptr().add(r * n + j0 + 8), acc_r[1]);
        }
    }

    /// One 8-wide strip of [`thin_strips`] (the `n % 16 >= 8` tail).
    ///
    /// # Safety
    ///
    /// AVX2 + FMA available; `j0 + 8 <= n`, `b.len() >= k*n`,
    /// `c_rows.len() >= ROWS*n`, `a_rows.len() >= ROWS`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn strip8<const ROWS: usize>(
        k: usize,
        n: usize,
        j0: usize,
        a_rows: &[[f32; THIN_K]],
        b: &[f32],
        c_rows: &mut [f32],
    ) {
        const { assert!(ROWS >= 1 && ROWS <= THIN_ROWS) };
        let _ = &c_rows[..(ROWS - 1) * n + j0 + 8];
        let _ = &b[..k * n];
        let _ = &a_rows[..ROWS];
        let mut acc = [_mm256_setzero_ps(); ROWS];
        for (r, slot) in acc.iter_mut().enumerate() {
            *slot = _mm256_loadu_ps(c_rows.as_ptr().add(r * n + j0));
        }
        for p in 0..k {
            let bv = _mm256_loadu_ps(b.as_ptr().add(p * n + j0));
            for (r, slot) in acc.iter_mut().enumerate() {
                let a = _mm256_set1_ps(*a_rows.get_unchecked(r).get_unchecked(p));
                *slot = _mm256_fmadd_ps(a, bv, *slot);
            }
        }
        for (r, &slot) in acc.iter().enumerate() {
            _mm256_storeu_ps(c_rows.as_mut_ptr().add(r * n + j0), slot);
        }
    }

    /// AVX2 narrow `A·Bᵀ` kernel (`ROWS = m` is 1 or 2), bit-identical
    /// to the scalar `nt_narrow`: `NTW = 8` outputs per row run as one
    /// vector of independent accumulation chains. `B`'s rows are
    /// contiguous along `p`, so 8×8 blocks are transposed in registers
    /// to put each `p` across the 8 output lanes; the `k % 8`
    /// remainder and the `n % 8` column tail finish as scalar
    /// `mul_add` chains over the same index ranges.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 + FMA are available, `a.len() >=
    /// ROWS*k`, `b.len() >= n*k`, `c.len() >= ROWS*n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn nt_narrow<const ROWS: usize>(
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        const { assert!(ROWS == 1 || ROWS == 2) };
        let a = &a[..ROWS * k];
        let b = &b[..n * k];
        let c = &mut c[..ROWS * n];
        let mut j0 = 0;
        while j0 + NTW <= n {
            let mut acc = [_mm256_setzero_ps(); ROWS];
            for (r, slot) in acc.iter_mut().enumerate() {
                // In bounds: r*n + j0 + 8 <= ROWS*n.
                *slot = _mm256_loadu_ps(c.as_ptr().add(r * n + j0));
            }
            let mut p0 = 0;
            while p0 + 8 <= k {
                // In bounds: (j0 + jj)*k + p0 + 8 <= (j0 + 8)*k <= n*k.
                let bb = b.as_ptr().add(j0 * k + p0);
                let t = transpose8([
                    _mm256_loadu_ps(bb),
                    _mm256_loadu_ps(bb.add(k)),
                    _mm256_loadu_ps(bb.add(2 * k)),
                    _mm256_loadu_ps(bb.add(3 * k)),
                    _mm256_loadu_ps(bb.add(4 * k)),
                    _mm256_loadu_ps(bb.add(5 * k)),
                    _mm256_loadu_ps(bb.add(6 * k)),
                    _mm256_loadu_ps(bb.add(7 * k)),
                ]);
                for (pp, &col) in t.iter().enumerate() {
                    for (r, slot) in acc.iter_mut().enumerate() {
                        let x = _mm256_set1_ps(*a.get_unchecked(r * k + p0 + pp));
                        *slot = _mm256_fmadd_ps(x, col, *slot);
                    }
                }
                p0 += 8;
            }
            if p0 < k {
                // k tail: finish each lane's chain serially, same
                // increasing-p order the vector prefix left off at.
                for (r, slot) in acc.iter_mut().enumerate() {
                    let mut lanes = [0.0f32; NTW];
                    _mm256_storeu_ps(lanes.as_mut_ptr(), *slot);
                    for (jj, lane) in lanes.iter_mut().enumerate() {
                        let row = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
                        for p in p0..k {
                            *lane = a[r * k + p].mul_add(row[p], *lane);
                        }
                    }
                    *slot = _mm256_loadu_ps(lanes.as_ptr());
                }
            }
            for (r, &slot) in acc.iter().enumerate() {
                _mm256_storeu_ps(c.as_mut_ptr().add(r * n + j0), slot);
            }
            j0 += NTW;
        }
        for jj in j0..n {
            let row = &b[jj * k..(jj + 1) * k];
            for r in 0..ROWS {
                let mut slot = c[r * n + jj];
                for p in 0..k {
                    slot = a[r * k + p].mul_add(row[p], slot);
                }
                c[r * n + jj] = slot;
            }
        }
    }

    /// AVX2 packing of a `[n,k]` (transposed) `B` into `[panel][p][jr]`
    /// column panels: full panels move 8×8 blocks through in-register
    /// transposes instead of the scalar element scatter; `k % 8` and
    /// the partial last panel take the scalar path (with zero-filled
    /// pad lanes, exactly like the scalar packer).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available, `b.len() >= n*k`, and
    /// `bp.len() >= n.div_ceil(NR)*k*NR`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn pack_b_transposed(bp: &mut [f32], b: &[f32], k: usize, n: usize) {
        let n_panels = n.div_ceil(NR);
        let b = &b[..n * k];
        let bp = &mut bp[..n_panels * k * NR];
        for jp in 0..n_panels {
            let j0 = jp * NR;
            let w = NR.min(n - j0);
            if w == NR {
                let mut p0 = 0;
                while p0 + 8 <= k {
                    for half in 0..2 {
                        // In bounds: the deepest load ends at
                        // (j0 + half*8 + 7)*k + p0 + 8 <= (j0+16)*k <=
                        // n*k; the deepest store at
                        // (jp*k + p0 + 7)*NR + half*8 + 8 <=
                        // (jp+1)*k*NR <= bp.len().
                        let src = b.as_ptr().add((j0 + half * 8) * k + p0);
                        let t = transpose8([
                            _mm256_loadu_ps(src),
                            _mm256_loadu_ps(src.add(k)),
                            _mm256_loadu_ps(src.add(2 * k)),
                            _mm256_loadu_ps(src.add(3 * k)),
                            _mm256_loadu_ps(src.add(4 * k)),
                            _mm256_loadu_ps(src.add(5 * k)),
                            _mm256_loadu_ps(src.add(6 * k)),
                            _mm256_loadu_ps(src.add(7 * k)),
                        ]);
                        for (pp, &row) in t.iter().enumerate() {
                            let dst = bp.as_mut_ptr().add((jp * k + p0 + pp) * NR + half * 8);
                            _mm256_storeu_ps(dst, row);
                        }
                    }
                    p0 += 8;
                }
                for jr in 0..NR {
                    let col = &b[(j0 + jr) * k..(j0 + jr + 1) * k];
                    for p in p0..k {
                        bp[(jp * k + p) * NR + jr] = col[p];
                    }
                }
            } else {
                for p in 0..k {
                    let dst = (jp * k + p) * NR;
                    bp[dst + w..dst + NR].fill(0.0);
                }
                for jr in 0..w {
                    let col = &b[(j0 + jr) * k..(j0 + jr + 1) * k];
                    for (p, &v) in col.iter().enumerate() {
                        bp[(jp * k + p) * NR + jr] = v;
                    }
                }
            }
        }
    }

    /// 8×8 in-register transpose: `out[i][j] = rows[j][i]`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn transpose8(rows: [__m256; 8]) -> [__m256; 8] {
        let [r0, r1, r2, r3, r4, r5, r6, r7] = rows;
        let t0 = _mm256_unpacklo_ps(r0, r1);
        let t1 = _mm256_unpackhi_ps(r0, r1);
        let t2 = _mm256_unpacklo_ps(r2, r3);
        let t3 = _mm256_unpackhi_ps(r2, r3);
        let t4 = _mm256_unpacklo_ps(r4, r5);
        let t5 = _mm256_unpackhi_ps(r4, r5);
        let t6 = _mm256_unpacklo_ps(r6, r7);
        let t7 = _mm256_unpackhi_ps(r6, r7);
        let s0 = _mm256_shuffle_ps::<0x44>(t0, t2);
        let s1 = _mm256_shuffle_ps::<0xEE>(t0, t2);
        let s2 = _mm256_shuffle_ps::<0x44>(t1, t3);
        let s3 = _mm256_shuffle_ps::<0xEE>(t1, t3);
        let s4 = _mm256_shuffle_ps::<0x44>(t4, t6);
        let s5 = _mm256_shuffle_ps::<0xEE>(t4, t6);
        let s6 = _mm256_shuffle_ps::<0x44>(t5, t7);
        let s7 = _mm256_shuffle_ps::<0xEE>(t5, t7);
        [
            _mm256_permute2f128_ps::<0x20>(s0, s4),
            _mm256_permute2f128_ps::<0x20>(s1, s5),
            _mm256_permute2f128_ps::<0x20>(s2, s6),
            _mm256_permute2f128_ps::<0x20>(s3, s7),
            _mm256_permute2f128_ps::<0x31>(s0, s4),
            _mm256_permute2f128_ps::<0x31>(s1, s5),
            _mm256_permute2f128_ps::<0x31>(s2, s6),
            _mm256_permute2f128_ps::<0x31>(s3, s7),
        ]
    }
}
