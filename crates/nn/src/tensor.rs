use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense, contiguous, row-major `f32` tensor.
///
/// Shapes are dynamic (`Vec<usize>`); all layers in this crate work
/// with 2-D (`[batch, features]`) or 4-D (`[batch, channels, h, w]`)
/// tensors. Data is always contiguous, which keeps the im2col/GEMM
/// kernels simple and fast.
///
/// # Example
///
/// ```
/// use nn::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.at2(1, 0), 3.0);
/// let u = t.map(|v| v * 2.0);
/// assert_eq!(u.data()[3], 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// The default tensor is empty (no shape, no data). It exists so
/// scratch structs can `#[derive(Default)]` a parked tensor that is
/// later grown in place via [`Tensor::refill_from`] /
/// [`Tensor::resize`]; most tensor methods are meaningless on it.
impl Default for Tensor {
    fn default() -> Self {
        Tensor { shape: Vec::new(), data: Vec::new() }
    }
}

impl Tensor {
    /// Tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    #[must_use]
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = checked_numel(shape);
        Tensor { shape: shape.to_vec(), data: vec![value; numel] }
    }

    /// Tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    #[must_use]
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel = checked_numel(shape);
        assert_eq!(data.len(), numel, "data length {} != shape product {}", data.len(), numel);
        Tensor { shape: shape.to_vec(), data }
    }

    /// Tensor of i.i.d. zero-mean Gaussians with standard deviation
    /// `std` (Box–Muller).
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    #[must_use]
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let numel = checked_numel(shape);
        let mut data = Vec::with_capacity(numel);
        while data.len() < numel {
            let u1: f32 = rng.gen::<f32>().max(f32::MIN_POSITIVE);
            let u2: f32 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < numel {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape: shape.to_vec(), data }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying data (row-major).
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its data buffer.
    #[must_use]
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret the data with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    #[must_use]
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        let numel = checked_numel(shape);
        assert_eq!(
            numel,
            self.data.len(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Tensor { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// In-place reshape (no data movement).
    ///
    /// # Panics
    ///
    /// Panics if the new shape's element count differs.
    pub fn reshape(&mut self, shape: &[usize]) {
        let numel = checked_numel(shape);
        assert_eq!(
            numel,
            self.data.len(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
    }

    /// Element at `(row, col)` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or indices are out of range.
    #[must_use]
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 requires a 2-D tensor");
        let (r, c) = (self.shape[0], self.shape[1]);
        assert!(row < r && col < c, "index ({row},{col}) out of bounds for {r}x{c}");
        self.data[row * c + col]
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Make `self` an exact copy of `other`, reusing the existing data
    /// buffer when its capacity suffices. This is the hot-path
    /// alternative to `clone()`: layer caches and staging tensors call
    /// it every batch, and once warmed to the largest shape seen it
    /// performs no allocation.
    pub fn refill_from(&mut self, other: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&other.shape);
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Change the shape in place, reusing the data buffer when its
    /// capacity suffices. Existing elements are **not** reset — the
    /// caller is expected to overwrite every slot (staging tensors
    /// refilled each batch); elements exposed by growth start at 0.0.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn resize(&mut self, shape: &[usize]) {
        let numel = checked_numel(shape);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(numel, 0.0);
    }

    /// New tensor with `f` applied elementwise.
    #[must_use]
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Elementwise sum of two tensors of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// In-place `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiply every element by `scale` in place.
    pub fn scale(&mut self, scale: f32) {
        self.data.iter_mut().for_each(|v| *v *= scale);
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an impossible empty tensor).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest absolute element (L∞ norm).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Whether every element is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// 2-D matrix multiply: `self [m,k] x other [k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or inner dimensions differ.
    #[must_use]
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        crate::gemm::sgemm(m, k, n, &self.data, &other.data, out.data_mut());
        out
    }
}

fn checked_numel(shape: &[usize]) -> usize {
    assert!(!shape.is_empty(), "tensor shape must have at least one dimension");
    assert!(shape.iter().all(|&d| d > 0), "tensor dimensions must be non-zero: {shape:?}");
    shape.iter().product()
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at2(0, 2), 3.0);
        assert_eq!(t.at2(1, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let r = t.reshaped(&[6, 4]);
        assert_eq!(r.shape(), &[6, 4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        let t = Tensor::zeros(&[2, 3]);
        let _ = t.reshaped(&[4, 2]);
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::randn(&[3, 3], 1.0, &mut rng);
        let eye = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        let c = a.matmul(&eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[100, 100], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.numel() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn refill_from_copies_and_reuses_buffer() {
        let src = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let mut dst = Tensor::zeros(&[4, 4]);
        let ptr = dst.data().as_ptr();
        dst.refill_from(&src);
        assert_eq!(dst.shape(), &[2, 2]);
        assert_eq!(dst.data(), src.data());
        assert_eq!(dst.data().as_ptr(), ptr, "smaller refill must reuse the buffer");
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Tensor::full(&[4], 1.0);
        let b = Tensor::full(&[4], 2.0);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[2.0; 4]);
        a.scale(3.0);
        assert_eq!(a.data(), &[6.0; 4]);
    }

    #[test]
    fn map_and_reductions() {
        let t = Tensor::from_vec(vec![-1.0, 2.0, -3.0], &[3]);
        assert_eq!(t.map(f32::abs).sum(), 6.0);
        assert_eq!(t.max_abs(), 3.0);
        assert!((t.mean() - (-2.0 / 3.0)).abs() < 1e-6);
        assert!(t.is_finite());
        assert!(!t.map(|v| v / 0.0).is_finite());
    }
}
