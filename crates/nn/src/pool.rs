//! Persistent worker pool: the batch-parallel compute core.
//!
//! Every parallel region in the workspace — GEMM row blocks, per-sample
//! convolution work, per-class augmentation, batch feature extraction —
//! funnels through [`parallel_for`] here instead of spawning OS threads
//! per call. The pool is created lazily on first use, sized by the
//! `WM_NUM_THREADS` environment variable (default: the machine's
//! available parallelism), and its workers live for the rest of the
//! process.
//!
//! # Determinism contract
//!
//! Callers must partition work into a **chunk grid that depends only on
//! the problem shape**, never on the thread count, and must perform any
//! cross-chunk reduction in a fixed order after the parallel region.
//! Under that contract the pool only changes *which thread* computes
//! each chunk, so results are bit-identical for every `WM_NUM_THREADS`,
//! including 1. [`Shards`] enforces the "disjoint output per chunk"
//! half of the contract at runtime.
//!
//! # Nesting
//!
//! A chunk body that itself calls [`parallel_for`] runs that inner
//! region serially inline (chunks in index order). This keeps nested
//! parallelism deadlock-free and means inner code needs no special
//! casing.
//!
//! # Safety
//!
//! This is the one module in the crate allowed to use `unsafe`
//! (the crate root is `#![deny(unsafe_code)]`, not `forbid`, exactly
//! for this file). Two invariants carry all of it:
//!
//! - A submitted job's closure pointer is only dereferenced between
//!   submission and the moment its last chunk completes, and
//!   [`parallel_for`] does not return before that moment — so the
//!   borrow it erases is always live when used.
//! - [`Shards::claim`] hands out each disjoint sub-slice at most once
//!   (checked at runtime), so no two `&mut` views alias.

#![allow(unsafe_code)]

use std::cell::Cell;
use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Which compute implementation the crate's kernels dispatch to.
///
/// `Legacy` reproduces the pre-pool behavior — naive GEMM loops with
/// spawn-per-call threading and serial batch loops — and exists so the
/// `perf_report` binary can measure an honest before/after in one
/// process. `Pooled` (the default) is the blocked-GEMM + worker-pool
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeMode {
    /// Pre-optimization code paths (benchmark baseline).
    Legacy,
    /// Blocked kernels + persistent pool (default).
    Pooled,
}

static COMPUTE_MODE: AtomicU8 = AtomicU8::new(1);

/// Select the global compute implementation. Intended for benchmarks;
/// normal code never calls this.
pub fn set_compute_mode(mode: ComputeMode) {
    COMPUTE_MODE.store(matches!(mode, ComputeMode::Pooled) as u8, Ordering::Relaxed);
}

/// The current global compute implementation.
#[must_use]
pub fn compute_mode() -> ComputeMode {
    if COMPUTE_MODE.load(Ordering::Relaxed) == 0 {
        ComputeMode::Legacy
    } else {
        ComputeMode::Pooled
    }
}

/// Erased pointer to a `Fn(usize)` chunk body whose borrow outlives the
/// job (guaranteed by `parallel_for` blocking until completion).
struct FuncPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared across threads by design) and
// the pointer is only dereferenced while the submitting call keeps the
// underlying closure alive (see module docs).
unsafe impl Send for FuncPtr {}
unsafe impl Sync for FuncPtr {}

/// One submitted parallel region.
struct Job {
    func: FuncPtr,
    chunks: usize,
    /// Next chunk index to claim (work stealing: threads race on this,
    /// which never affects results — only who computes what).
    next: AtomicUsize,
    /// Chunks fully executed.
    finished: AtomicUsize,
    /// Threads working this job (the submitter counts as one).
    participants: AtomicUsize,
    max_participants: usize,
    /// Set when any chunk body panicked.
    panicked: AtomicBool,
}

impl Job {
    fn complete(&self) -> bool {
        self.finished.load(Ordering::Acquire) >= self.chunks
    }
}

struct PoolState {
    job: Option<Arc<Job>>,
    /// Max threads per region, including the submitting thread.
    limit: usize,
    /// Workers spawned so far (grown on demand up to `limit - 1`).
    workers: usize,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a job to appear.
    work: Condvar,
    /// Submitters wait here for completion (and for the slot to free).
    done: Condvar,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        state: Mutex::new(PoolState { job: None, limit: default_limit(), workers: 0 }),
        work: Condvar::new(),
        done: Condvar::new(),
    })
}

/// Initial thread limit: `WM_NUM_THREADS` if set and valid, else the
/// machine's available parallelism, clamped to `[1, 64]`.
#[must_use]
pub fn default_thread_limit() -> usize {
    default_limit()
}

fn default_limit() -> usize {
    let configured = std::env::var("WM_NUM_THREADS").ok().and_then(|v| v.trim().parse().ok());
    let fallback = || std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    configured.unwrap_or_else(fallback).clamp(1, 64)
}

/// Current thread limit (including the submitting thread).
#[must_use]
pub fn num_threads() -> usize {
    shared().state.lock().expect("pool lock").limit
}

/// Override the thread limit at runtime. Missing workers are spawned
/// lazily on the next [`parallel_for`]. Intended for tests and
/// benchmarks that need to vary parallelism within one process (the
/// `WM_NUM_THREADS` environment variable is read only once).
pub fn set_thread_limit(threads: usize) {
    let mut state = shared().state.lock().expect("pool lock");
    state.limit = threads.clamp(1, 64);
}

thread_local! {
    /// True on pool workers always, and on a submitting thread while it
    /// participates in its own job. Makes nested regions run serially.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Pool counters, registered once in the process-wide
/// [`telemetry::global`] registry (the pool is itself a process-wide
/// singleton with no owning object to hang a registry off).
struct PoolMetrics {
    /// Regions fanned out across the pool.
    jobs: telemetry::Counter,
    /// Regions run serially inline (single chunk, limit 1, legacy
    /// mode, or nested inside a pool chunk).
    serial_regions: telemetry::Counter,
    /// Chunks executed, by anyone.
    chunks: telemetry::Counter,
    /// Chunks executed by pool worker threads (the rest ran on the
    /// submitting thread) — `worker_chunks / chunks` is the pool's
    /// effective utilization.
    worker_chunks: telemetry::Counter,
    /// Submissions that found another job in flight and had to queue.
    queue_waits: telemetry::Counter,
    /// Current thread limit (including the submitting thread).
    thread_limit: telemetry::Gauge,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = telemetry::global();
        PoolMetrics {
            jobs: registry.counter("pool_jobs_total", "Parallel regions fanned out to the pool"),
            serial_regions: registry
                .counter("pool_serial_regions_total", "Parallel regions run serially inline"),
            chunks: registry.counter("pool_chunks_total", "Chunks executed"),
            worker_chunks: registry
                .counter("pool_worker_chunks_total", "Chunks executed on pool worker threads"),
            queue_waits: registry
                .counter("pool_queue_waits_total", "Submissions that queued behind another job"),
            thread_limit: registry
                .gauge("pool_thread_limit", "Thread limit including the submitting thread"),
        }
    })
}

fn spawn_worker(index: usize) {
    std::thread::Builder::new()
        .name(format!("wm-pool-{index}"))
        .spawn(|| {
            IN_POOL.with(|f| f.set(true));
            let shared = shared();
            loop {
                let job = {
                    let mut state = shared.state.lock().expect("pool lock");
                    loop {
                        if let Some(job) = &state.job {
                            let open = job.participants.load(Ordering::Relaxed)
                                < job.max_participants
                                && job.next.load(Ordering::Relaxed) < job.chunks;
                            if open {
                                job.participants.fetch_add(1, Ordering::Relaxed);
                                break job.clone();
                            }
                        }
                        state = shared.work.wait(state).expect("pool lock");
                    }
                };
                run_chunks(&job, true);
            }
        })
        .expect("spawn pool worker");
}

/// Claim-and-run loop shared by workers and the submitting thread.
/// Chunk counters are accumulated locally and published once per call
/// so the claim loop stays free of shared-cacheline traffic.
fn run_chunks(job: &Job, is_worker: bool) {
    // SAFETY: `parallel_for` keeps the closure alive until
    // `job.finished == job.chunks`, and we only reach this dereference
    // for chunk indices `< chunks`, i.e. strictly before completion.
    let func = unsafe { &*job.func.0 };
    let mut ran = 0u64;
    loop {
        let chunk = job.next.fetch_add(1, Ordering::Relaxed);
        if chunk >= job.chunks {
            break;
        }
        ran += 1;
        if catch_unwind(AssertUnwindSafe(|| func(chunk))).is_err() {
            job.panicked.store(true, Ordering::Release);
        }
        if job.finished.fetch_add(1, Ordering::AcqRel) + 1 == job.chunks {
            let shared = shared();
            let mut state = shared.state.lock().expect("pool lock");
            if state.job.as_ref().is_some_and(|j| std::ptr::eq(Arc::as_ptr(j), job)) {
                state.job = None;
            }
            drop(state);
            shared.done.notify_all();
        }
    }
    if ran > 0 {
        let m = metrics();
        m.chunks.add(ran);
        if is_worker {
            m.worker_chunks.add(ran);
        }
    }
}

/// Run `body(chunk)` for every `chunk in 0..chunks`, fanning out across
/// the worker pool when profitable.
///
/// Runs serially inline (chunks in index order) when any of these hold:
/// fewer than two chunks, the thread limit is 1, the global mode is
/// [`ComputeMode::Legacy`], or the caller is already inside a pool
/// chunk (nested region).
///
/// # Panics
///
/// Panics if any chunk body panicked (after all chunks have finished,
/// so sibling chunks never observe a half-torn region).
pub fn parallel_for<F>(chunks: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    if chunks == 0 {
        return;
    }
    let nested = IN_POOL.with(Cell::get);
    if chunks == 1 || nested || compute_mode() == ComputeMode::Legacy || num_threads() <= 1 {
        metrics().serial_regions.inc();
        for chunk in 0..chunks {
            body(chunk);
        }
        return;
    }

    let erased: &(dyn Fn(usize) + Sync) = &body;
    // SAFETY: this erases the borrow's lifetime; the pointer is only
    // dereferenced before the job completes, and this function does not
    // return (so `body` stays alive) until the job completes.
    let func = FuncPtr(unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
    });

    let shared = shared();
    let job = {
        let mut state = shared.state.lock().expect("pool lock");
        // One job at a time; queue behind any region another thread is
        // running (its completion notifies `done`).
        if state.job.is_some() {
            metrics().queue_waits.inc();
        }
        while state.job.is_some() {
            state = shared.done.wait(state).expect("pool lock");
        }
        let wanted = state.limit.saturating_sub(1).min(chunks - 1);
        while state.workers < wanted {
            spawn_worker(state.workers);
            state.workers += 1;
        }
        let job = Arc::new(Job {
            func,
            chunks,
            next: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            participants: AtomicUsize::new(1),
            max_participants: state.limit,
            panicked: AtomicBool::new(false),
        });
        state.job = Some(job.clone());
        let m = metrics();
        m.jobs.inc();
        m.thread_limit.set(state.limit as f64);
        shared.work.notify_all();
        job
    };

    IN_POOL.with(|f| f.set(true));
    run_chunks(&job, false);
    IN_POOL.with(|f| f.set(false));

    let mut state = shared.state.lock().expect("pool lock");
    while !job.complete() {
        state = shared.done.wait(state).expect("pool lock");
    }
    drop(state);
    assert!(!job.panicked.load(Ordering::Acquire), "a parallel chunk panicked");
}

/// Run `f(i)` for `i in 0..n` and collect the results in index order.
///
/// The output order (and therefore any downstream reduction) is
/// independent of the thread count.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let shards = Shards::new(&mut slots, 1);
        parallel_for(n, |i| {
            shards.claim(i)[0] = Some(f(i));
        });
    }
    slots.into_iter().map(|slot| slot.expect("every chunk fills its slot")).collect()
}

/// Disjoint mutable views over a slice, claimable by chunk index from
/// concurrent chunk bodies.
///
/// Splits a slice into `ceil(len / chunk_len)` consecutive shards of
/// `chunk_len` elements (the last may be shorter). Each shard can be
/// [`claim`](Shards::claim)ed **at most once** — a second claim of the
/// same index panics — which is what makes handing `&mut` views out of
/// a shared `&self` sound.
pub struct Shards<'a, T> {
    base: *mut T,
    len: usize,
    chunk_len: usize,
    claimed: Vec<AtomicBool>,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a `Shards` only hands out non-overlapping sub-slices, each at
// most once, so sharing it across threads is no more than sharing
// disjoint `&mut [T]`s.
unsafe impl<T: Send> Send for Shards<'_, T> {}
unsafe impl<T: Send> Sync for Shards<'_, T> {}

impl<'a, T> Shards<'a, T> {
    /// Split `slice` into shards of `chunk_len` elements.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    #[must_use]
    pub fn new(slice: &'a mut [T], chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "shard length must be non-zero");
        let count = slice.len().div_ceil(chunk_len);
        Shards {
            base: slice.as_mut_ptr(),
            len: slice.len(),
            chunk_len,
            claimed: (0..count).map(|_| AtomicBool::new(false)).collect(),
            _marker: PhantomData,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn count(&self) -> usize {
        self.claimed.len()
    }

    /// Take exclusive ownership of shard `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the shard was already
    /// claimed.
    #[must_use]
    #[allow(clippy::mut_from_ref)] // exclusivity enforced by the claim flag
    pub fn claim(&self, index: usize) -> &mut [T] {
        let already = self.claimed[index].swap(true, Ordering::AcqRel);
        assert!(!already, "shard {index} claimed twice");
        let start = index * self.chunk_len;
        let end = (start + self.chunk_len).min(self.len);
        // SAFETY: `claimed[index]` guarantees this range is handed out
        // exactly once, ranges for distinct indices are disjoint, and
        // the parent slice is mutably borrowed for `'a`.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(start), end - start) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_fill_identically() {
        let n = 1000usize;
        let compute = |limit: usize| {
            set_thread_limit(limit);
            let mut out = vec![0u64; n];
            {
                let shards = Shards::new(&mut out, 7);
                parallel_for(n.div_ceil(7), |c| {
                    for (off, v) in shards.claim(c).iter_mut().enumerate() {
                        let i = c * 7 + off;
                        *v = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    }
                });
            }
            out
        };
        let one = compute(1);
        let four = compute(4);
        set_thread_limit(default_limit());
        assert_eq!(one, four);
    }

    #[test]
    fn parallel_map_preserves_order() {
        set_thread_limit(3);
        let out = parallel_map(50, |i| i * i);
        set_thread_limit(default_limit());
        assert_eq!(out, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_regions_run_serially() {
        set_thread_limit(4);
        let outer = parallel_map(4, |i| {
            // Inner region must run inline without deadlocking.
            let inner = parallel_map(3, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        set_thread_limit(default_limit());
        assert_eq!(outer, vec![3, 33, 63, 93]);
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn double_claim_is_rejected() {
        let mut data = vec![0u8; 10];
        let shards = Shards::new(&mut data, 4);
        let _a = shards.claim(1);
        let _b = shards.claim(1);
    }

    #[test]
    fn legacy_mode_bypasses_the_pool() {
        set_compute_mode(ComputeMode::Legacy);
        let got = parallel_map(5, |i| i + 1);
        set_compute_mode(ComputeMode::Pooled);
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn pool_counters_record_jobs_and_chunks() {
        // Counters are process-global and shared with concurrently
        // running tests, so assert on deltas of monotone counters.
        let read = |name: &str| {
            telemetry::global()
                .snapshot()
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        set_thread_limit(4);
        let jobs0 = read("pool_jobs_total");
        let chunks0 = read("pool_chunks_total");
        parallel_for(16, |_| {});
        set_thread_limit(default_limit());
        assert!(read("pool_jobs_total") > jobs0, "fanned-out region must count as a job");
        assert!(read("pool_chunks_total") >= chunks0 + 16, "all 16 chunks must be counted");

        let serial0 = read("pool_serial_regions_total");
        parallel_for(1, |_| {});
        assert!(
            read("pool_serial_regions_total") > serial0,
            "single-chunk region must count as serial"
        );
    }

    #[test]
    fn chunk_panic_propagates_to_submitter() {
        set_thread_limit(2);
        let result = std::panic::catch_unwind(|| {
            parallel_for(8, |i| assert!(i != 5, "boom"));
        });
        set_thread_limit(default_limit());
        assert!(result.is_err());
    }
}
