//! Single-precision matrix-multiply kernels.
//!
//! Everything compute-heavy in this crate (convolution via im2col,
//! linear layers and their backward passes) funnels into the three
//! kernels here. The default implementation is cache-blocked: `B` is
//! packed once into column panels, each row block packs `A` into
//! register-tile order, and an `MR`×`NR` microkernel keeps the output
//! tile in registers across a `KC`-deep strip of the contraction axis.
//! Row blocks fan out across the persistent worker pool
//! ([`crate::pool`]) once the FLOP count justifies the dispatch.
//!
//! All kernels **accumulate** (`C += ...`); callers zero `C` when they
//! want a plain product.
//!
//! # Determinism
//!
//! For every output element the blocked kernels add contributions in
//! strictly increasing `p` order onto the resident `C` value, using
//! `f32::mul_add` for each step. That is exactly what the serial
//! kernels in [`reference`] compute, so the fast path is bit-identical
//! to the reference for every shape and every thread count: the row
//! block / panel / microkernel grid depends only on the problem shape,
//! and the pool only changes which thread computes which block. The
//! padded microkernel lanes (when `m % MR != 0` or `n % NR != 0`)
//! operate on zero-filled packing slots and are never stored.
//!
//! The earlier spawn-per-call implementation is preserved verbatim in
//! [`legacy`] and selected by [`crate::pool::ComputeMode::Legacy`] so
//! the `perf_report` benchmark can measure before/after in one process.

use std::cell::RefCell;

use crate::pool::{self, ComputeMode, Shards};
use crate::{simd, workspace};

thread_local! {
    /// Reusable `B`-panel packing buffer. A fresh `Vec` per call would
    /// cross the allocator's mmap threshold for the larger layer
    /// shapes, paying map/unmap and page-fault costs on every GEMM;
    /// pool workers are persistent, so one warm buffer per thread
    /// amortizes that away. [`pack_b`] writes every slot it hands to
    /// the microkernel (pad lanes included), so reuse needs no
    /// re-zeroing.
    static B_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Reusable `A`-panel packing buffer ([`pack_a`] also writes every
    /// slot it exposes, including zero-filled edge rows).
    static A_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Microkernel tile height (rows of `C` kept in registers).
pub(crate) const MR: usize = 4;
/// Microkernel tile width (columns of `C` kept in registers).
pub(crate) const NR: usize = 16;
/// Contraction-axis strip length per packed `A` panel. Sized so one
/// `B` panel strip (`KC·NR` floats = 16 KiB) and one `A` panel
/// (`KC·MR` floats = 4 KiB) fit L1 together: every row group of the
/// block re-reads the same `B` strip, and with a 1024-deep strip those
/// re-reads all came from L2.
const KC: usize = 256;
/// Rows of `C` per parallel chunk (one row block = one pool chunk).
pub(crate) const MC: usize = 32;

/// FLOP threshold (m·k·n) above which row blocks fan out to the pool.
const PARALLEL_THRESHOLD: usize = 1 << 18;
/// Contraction length at or below which the `MR`×`NR` tile grid is a
/// bad fit (per-tile `C` traffic stops amortizing) and the row-sweep
/// kernel in [`thin_k`] runs instead.
pub(crate) const THIN_K: usize = 64;
/// Columns of `C` kept in registers per [`thin_k`] row sweep.
pub(crate) const TW: usize = 32;
/// FLOP threshold below which packing costs more than it saves and the
/// (bit-identical) reference kernel is used directly.
const SMALL_THRESHOLD: usize = 1 << 12;

/// How `A[i,p]` is stored.
#[derive(Clone, Copy)]
enum ALayout {
    /// `a[i * k + p]` (the `[m,k]` operand of [`sgemm`] / [`sgemm_nt`]).
    RowMajor,
    /// `a[p * m + i]` (the `[k,m]` operand of [`sgemm_tn`]).
    KMajor,
}

/// How `B[p,j]` is stored.
#[derive(Clone, Copy)]
enum BLayout {
    /// `b[p * n + j]` (the `[k,n]` operand of [`sgemm`] / [`sgemm_tn`]).
    RowMajor,
    /// `b[j * k + p]` (the `[n,k]` operand of [`sgemm_nt`]).
    Transposed,
}

/// `C[m,n] += A[m,k] * B[k,n]`, all row-major.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` shape implies.
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    match pool::compute_mode() {
        ComputeMode::Legacy => legacy::sgemm(m, k, n, a, b, c),
        ComputeMode::Pooled if m * k * n < SMALL_THRESHOLD => {
            reference::sgemm(m, k, n, a, b, c);
        }
        ComputeMode::Pooled => blocked(m, k, n, a, b, c, ALayout::RowMajor, BLayout::RowMajor),
    }
}

/// `C[m,n] += A[m,k] * B[n,k]^T` (i.e. `C[i,j] += Σ_p A[i,p]·B[j,p]`).
///
/// This transposed form computes `dY · Wᵀ`-style products where the
/// second operand's rows are the contraction axis.
///
/// # Panics
///
/// Panics if any slice is shorter than its shape implies.
pub fn sgemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= n * k, "B too short: {} < {}", b.len(), n * k);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    match pool::compute_mode() {
        ComputeMode::Legacy => legacy::sgemm_nt(m, k, n, a, b, c),
        ComputeMode::Pooled if m * k * n < SMALL_THRESHOLD => {
            reference::sgemm_nt(m, k, n, a, b, c);
        }
        ComputeMode::Pooled if m <= 2 => {
            if !simd::nt_narrow(m, k, n, a, b, c) {
                nt_narrow(m, k, n, a, b, c);
            }
        }
        ComputeMode::Pooled => blocked(m, k, n, a, b, c, ALayout::RowMajor, BLayout::Transposed),
    }
}

/// Columns of `C` computed together per [`nt_narrow`] strip (that many
/// independent accumulation chains hide the `mul_add` latency).
pub(crate) const NTW: usize = 8;

/// Narrow-batch kernel for the `A[m,k] · B[n,k]ᵀ` form with `m <= 2`:
/// inference-sized matrix-vector products where packing `B` (the
/// weight matrix, re-read every call) would dominate the work. Rows of
/// `B` are already contiguous along the contraction axis, so each
/// output is a plain dot product; `NTW` outputs run as parallel
/// accumulation chains. Per element the contraction still runs in
/// strictly increasing `p` order with `mul_add` onto the resident `C`
/// value — bit-identical to the reference kernel.
fn nt_narrow(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let x = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let jw = NTW.min(n - j0);
            let mut acc = [0.0f32; NTW];
            acc[..jw].copy_from_slice(&c_row[j0..j0 + jw]);
            if jw == NTW {
                let rows: [&[f32]; NTW] =
                    std::array::from_fn(|jj| &b[(j0 + jj) * k..(j0 + jj + 1) * k]);
                for (p, &xv) in x.iter().enumerate() {
                    for (jj, row) in rows.iter().enumerate() {
                        acc[jj] = xv.mul_add(row[p], acc[jj]);
                    }
                }
            } else {
                for (jj, slot) in acc.iter_mut().enumerate().take(jw) {
                    let row = &b[(j0 + jj) * k..(j0 + jj + 1) * k];
                    for (p, &xv) in x.iter().enumerate() {
                        *slot = xv.mul_add(row[p], *slot);
                    }
                }
            }
            c_row[j0..j0 + jw].copy_from_slice(&acc[..jw]);
            j0 += jw;
        }
    }
}

/// `C[m,n] += A[k,m]^T * B[k,n]` (i.e. `C[i,j] += Σ_p A[p,i]·B[p,j]`).
///
/// This is the weight-gradient form: `dW = dYᵀ · X` with batch as the
/// contraction axis.
///
/// # Panics
///
/// Panics if any slice is shorter than its shape implies.
pub fn sgemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= k * m, "A too short: {} < {}", a.len(), k * m);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    match pool::compute_mode() {
        ComputeMode::Legacy => legacy::sgemm_tn(m, k, n, a, b, c),
        ComputeMode::Pooled if m * k * n < SMALL_THRESHOLD => {
            reference::sgemm_tn(m, k, n, a, b, c);
        }
        ComputeMode::Pooled => blocked(m, k, n, a, b, c, ALayout::KMajor, BLayout::RowMajor),
    }
}

/// Blocked driver shared by all three public kernels.
#[allow(clippy::too_many_arguments)]
fn blocked(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    a_layout: ALayout,
    b_layout: BLayout,
) {
    if m == 0 || n == 0 || k == 0 {
        return; // C += 0, i.e. a no-op, matching the loop-based kernels
    }
    if k <= THIN_K && matches!(b_layout, BLayout::RowMajor) {
        return thin_k(m, k, n, a, b, c, a_layout);
    }
    let n_panels = n.div_ceil(NR);
    // Pack all of B once, shared read-only by every row block:
    // b_packed[(panel * k + p) * NR + jr] = B[p, panel*NR + jr], with
    // out-of-range columns zero-filled by `pack_b` itself.
    B_SCRATCH.with(|cell| {
        let mut b_buf = cell.borrow_mut();
        let b_need = n_panels * k * NR;
        let b_packed = workspace::reserve_f32(&mut b_buf, b_need);
        pack_b(b_packed, b, b_layout, k, n);

        let row_blocks = m.div_ceil(MC);
        let c = &mut c[..m * n];
        let shards = Shards::new(c, MC * n);
        let b_packed = &*b_packed;
        let work = |blk: usize| {
            let c_block = shards.claim(blk);
            let i0 = blk * MC;
            let mb = (m - i0).min(MC);
            let groups = mb.div_ceil(MR);
            let a_need = groups * KC.min(k) * MR;
            A_SCRATCH.with(|a_cell| {
                let mut a_buf = a_cell.borrow_mut();
                let a_packed = workspace::reserve_f32(&mut a_buf, a_need);
                for p0 in (0..k).step_by(KC) {
                    let kc = KC.min(k - p0);
                    pack_a(a_packed, a, a_layout, m, k, i0, mb, p0, kc);
                    for jp in 0..n_panels {
                        let j0 = jp * NR;
                        let nr = NR.min(n - j0);
                        let b_panel = &b_packed[(jp * k + p0) * NR..(jp * k + p0 + kc) * NR];
                        for g in 0..groups {
                            let r0 = g * MR;
                            let mr = MR.min(mb - r0);
                            let a_panel = &a_packed[g * kc * MR..(g + 1) * kc * MR];
                            microkernel(
                                kc,
                                a_panel,
                                b_panel,
                                &mut c_block[r0 * n + j0..],
                                n,
                                mr,
                                nr,
                            );
                        }
                    }
                }
            });
        };
        if m * k * n < PARALLEL_THRESHOLD {
            // Not worth a pool dispatch; same chunk grid, same results.
            for blk in 0..row_blocks {
                work(blk);
            }
        } else {
            pool::parallel_for(row_blocks, work);
        }
    });
}

/// Row-sweep kernel for thin contractions (`k <= THIN_K`, row-major
/// `B`): pairs of `C` rows are processed in `TW`-wide register strips,
/// with the whole contraction in one pass per strip. Compared to the
/// tile grid this touches each `C` element once, reads `B` rows as
/// contiguous vectors (shared by both output rows, halving `B`
/// traffic), and skips packing entirely, which wins when `k` is too
/// short to amortize per-tile loads and stores. The accumulation order
/// per element is unchanged: increasing `p`, `mul_add` onto the
/// resident value.
fn thin_k(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], a_layout: ALayout) {
    let row_blocks = m.div_ceil(MC);
    let c = &mut c[..m * n];
    let shards = Shards::new(c, MC * n);
    let work = |blk: usize| {
        let c_block = shards.claim(blk);
        let i0 = blk * MC;
        let mb = (m - i0).min(MC);
        let gather = |r: usize, dest: &mut [f32; THIN_K]| {
            for (p, slot) in dest.iter_mut().enumerate().take(k) {
                *slot = a_at(a, a_layout, m, k, i0 + r, p);
            }
        };
        if simd::thin_block(k, n, mb, b, c_block, gather) {
            return;
        }
        let mut a_rows = [[0.0f32; THIN_K]; 2];
        let mut r = 0;
        while r < mb {
            let rows = (mb - r).min(2);
            for (rr, a_row) in a_rows.iter_mut().enumerate().take(rows) {
                gather(r + rr, a_row);
            }
            let c_rows = &mut c_block[r * n..(r + rows) * n];
            if rows == 2 {
                thin_sweep::<2>(k, n, &a_rows, b, c_rows);
            } else {
                thin_sweep::<1>(k, n, &a_rows, b, c_rows);
            }
            r += rows;
        }
    };
    if m * k * n < PARALLEL_THRESHOLD {
        for blk in 0..row_blocks {
            work(blk);
        }
    } else {
        pool::parallel_for(row_blocks, work);
    }
}

/// One [`thin_k`] sweep: `ROWS` (1 or 2) adjacent `C` rows across all
/// `TW`-wide strips of `n`, contracting over the gathered `A` scalars.
#[inline(always)]
fn thin_sweep<const ROWS: usize>(
    k: usize,
    n: usize,
    a_rows: &[[f32; THIN_K]; 2],
    b: &[f32],
    c_rows: &mut [f32],
) {
    let mut j0 = 0;
    while j0 + TW <= n {
        let mut acc = [[0.0f32; TW]; ROWS];
        for (r, acc_r) in acc.iter_mut().enumerate() {
            *acc_r = c_rows[r * n + j0..r * n + j0 + TW].try_into().expect("C strip");
        }
        for p in 0..k {
            let bv: &[f32; TW] = b[p * n + j0..p * n + j0 + TW].try_into().expect("B strip");
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let av = a_rows[r][p];
                for j in 0..TW {
                    acc_r[j] = av.mul_add(bv[j], acc_r[j]);
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            c_rows[r * n + j0..r * n + j0 + TW].copy_from_slice(acc_r);
        }
        j0 += TW;
    }
    if j0 < n {
        // Tail strip, same element-wise order at partial width.
        let w = n - j0;
        let mut acc = [[0.0f32; TW]; ROWS];
        for (r, acc_r) in acc.iter_mut().enumerate() {
            acc_r[..w].copy_from_slice(&c_rows[r * n + j0..r * n + j0 + w]);
        }
        for p in 0..k {
            let bv = &b[p * n + j0..p * n + j0 + w];
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let av = a_rows[r][p];
                for j in 0..w {
                    acc_r[j] = av.mul_add(bv[j], acc_r[j]);
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            c_rows[r * n + j0..r * n + j0 + w].copy_from_slice(&acc_r[..w]);
        }
    }
}

/// `A[i,p]` under either storage layout.
#[inline(always)]
fn a_at(a: &[f32], layout: ALayout, m: usize, k: usize, i: usize, p: usize) -> f32 {
    match layout {
        ALayout::RowMajor => a[i * k + p],
        ALayout::KMajor => a[p * m + i],
    }
}

/// `MR`×`NR` register tile: load `C`, accumulate a `kc`-strip in
/// strictly increasing `p` order, store `C`. Padded lanes (`r >= mr`,
/// `j >= nr`) accumulate zero-filled packing slots and are not stored.
#[inline]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, mr: usize, nr: usize) {
    if simd::microkernel(kc, ap, bp, c, ldc, mr, nr) {
        return;
    }
    // Hoisted length proofs: the per-`p` slices below stay in bounds,
    // so the hot loop compiles without per-iteration checks.
    let ap = &ap[..kc * MR];
    let bp = &bp[..kc * NR];
    let mut acc = [[0.0f32; NR]; MR];
    if nr == NR {
        // Full-width tile (the common case): fixed-size row moves.
        for r in 0..mr {
            acc[r] = c[r * ldc..r * ldc + NR].try_into().expect("C tile row");
        }
    } else {
        for r in 0..mr {
            acc[r][..nr].copy_from_slice(&c[r * ldc..r * ldc + nr]);
        }
    }
    for p in 0..kc {
        let av: &[f32; MR] = ap[p * MR..(p + 1) * MR].try_into().expect("A panel stride");
        let bv: &[f32; NR] = bp[p * NR..(p + 1) * NR].try_into().expect("B panel stride");
        for r in 0..MR {
            let a = av[r];
            for j in 0..NR {
                acc[r][j] = a.mul_add(bv[j], acc[r][j]);
            }
        }
    }
    if nr == NR {
        for r in 0..mr {
            c[r * ldc..r * ldc + NR].copy_from_slice(&acc[r]);
        }
    } else {
        for r in 0..mr {
            c[r * ldc..r * ldc + nr].copy_from_slice(&acc[r][..nr]);
        }
    }
}

/// Pack `B` into `[panel][p][jr]` order with zero-filled edge columns.
fn pack_b(bp: &mut [f32], b: &[f32], layout: BLayout, k: usize, n: usize) {
    let n_panels = n.div_ceil(NR);
    match layout {
        BLayout::RowMajor => {
            for jp in 0..n_panels {
                let j0 = jp * NR;
                let w = NR.min(n - j0);
                for p in 0..k {
                    let dst = (jp * k + p) * NR;
                    bp[dst..dst + w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
                    bp[dst + w..dst + NR].fill(0.0);
                }
            }
        }
        BLayout::Transposed => {
            if simd::pack_b_transposed(bp, b, k, n) {
                return;
            }
            for jp in 0..n_panels {
                let j0 = jp * NR;
                let w = NR.min(n - j0);
                for p in 0..k {
                    let dst = (jp * k + p) * NR;
                    bp[dst + w..dst + NR].fill(0.0);
                }
                for jr in 0..w {
                    let col = &b[(j0 + jr) * k..(j0 + jr + 1) * k];
                    for (p, &v) in col.iter().enumerate() {
                        bp[(jp * k + p) * NR + jr] = v;
                    }
                }
            }
        }
    }
}

/// Pack one row block of `A` into `[group][p][r]` order with zero-filled
/// edge rows, covering contraction columns `p0..p0 + kc`.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    ap: &mut [f32],
    a: &[f32],
    layout: ALayout,
    m: usize,
    k: usize,
    i0: usize,
    mb: usize,
    p0: usize,
    kc: usize,
) {
    let groups = mb.div_ceil(MR);
    match layout {
        ALayout::RowMajor => {
            for g in 0..groups {
                let base = g * kc * MR;
                for r in 0..MR {
                    if g * MR + r < mb {
                        let i = i0 + g * MR + r;
                        let row = &a[i * k + p0..i * k + p0 + kc];
                        for (p, &v) in row.iter().enumerate() {
                            ap[base + p * MR + r] = v;
                        }
                    } else {
                        for p in 0..kc {
                            ap[base + p * MR + r] = 0.0;
                        }
                    }
                }
            }
        }
        ALayout::KMajor => {
            // A[i,p] = a[p*m + i]: contiguous in `r` for fixed `p`.
            for g in 0..groups {
                let base = g * kc * MR;
                let rows = MR.min(mb - g * MR);
                for p in 0..kc {
                    let src = &a[(p0 + p) * m + i0 + g * MR..][..rows];
                    let dst = &mut ap[base + p * MR..base + (p + 1) * MR];
                    dst[..rows].copy_from_slice(src);
                    dst[rows..].fill(0.0);
                }
            }
        }
    }
}

/// Serial, single-thread reference kernels.
///
/// These define the numerical contract: per output element,
/// contributions are folded onto the resident `C` value in strictly
/// increasing `p` order with `f32::mul_add`. The blocked kernels are
/// bit-identical to these for every shape and thread count, which is
/// what the property tests in `tests/parallel_determinism.rs` assert.
pub mod reference {
    /// Reference for [`super::sgemm`].
    pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            let c_row = &mut c[i * n..(i + 1) * n];
            for p in 0..k {
                let a_ip = a[i * k + p];
                let b_row = &b[p * n..(p + 1) * n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c_ij = a_ip.mul_add(b_pj, *c_ij);
                }
            }
        }
    }

    /// Reference for [`super::sgemm_nt`] (`B` stored `[n,k]`).
    pub fn sgemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            let c_row = &mut c[i * n..(i + 1) * n];
            for p in 0..k {
                let a_ip = a[i * k + p];
                for (j, c_ij) in c_row.iter_mut().enumerate() {
                    *c_ij = a_ip.mul_add(b[j * k + p], *c_ij);
                }
            }
        }
    }

    /// Reference for [`super::sgemm_tn`] (`A` stored `[k,m]`).
    pub fn sgemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            let c_row = &mut c[i * n..(i + 1) * n];
            for p in 0..k {
                let a_pi = a[p * m + i];
                let b_row = &b[p * n..(p + 1) * n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c_ij = a_pi.mul_add(b_pj, *c_ij);
                }
            }
        }
    }
}

/// The pre-pool implementation, preserved verbatim (including its
/// zero-skip branches and spawn-per-call threading) as the baseline the
/// `perf_report` binary measures against. Selected globally via
/// [`crate::pool::ComputeMode::Legacy`]; not used on the default path.
pub mod legacy {
    use std::num::NonZeroUsize;

    /// FLOP threshold (m·k·n) above which the kernels fan out to threads.
    const PARALLEL_THRESHOLD: usize = 1 << 18;

    /// Legacy [`super::sgemm`].
    pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        parallel_rows(m, k, n, c, |i0, c_block| {
            for (di, c_row) in c_block.chunks_exact_mut(n).enumerate() {
                let i = i0 + di;
                let a_row = &a[i * k..(i + 1) * k];
                for (p, &a_ip) in a_row.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                        *c_ij += a_ip * b_pj;
                    }
                }
            }
        });
    }

    /// Legacy [`super::sgemm_nt`].
    pub fn sgemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        parallel_rows(m, k, n, c, |i0, c_block| {
            for (di, c_row) in c_block.chunks_exact_mut(n).enumerate() {
                let i = i0 + di;
                let a_row = &a[i * k..(i + 1) * k];
                for (j, c_ij) in c_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (x, y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *c_ij += acc;
                }
            }
        });
    }

    /// Legacy [`super::sgemm_tn`].
    pub fn sgemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        parallel_rows(m, k, n, c, |i0, c_block| {
            for (di, c_row) in c_block.chunks_exact_mut(n).enumerate() {
                let i = i0 + di;
                for p in 0..k {
                    let a_pi = a[p * m + i];
                    if a_pi == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                        *c_ij += a_pi * b_pj;
                    }
                }
            }
        });
    }

    /// Number of worker threads to use for a problem of `flops` size.
    fn thread_count(flops: usize) -> usize {
        if flops < PARALLEL_THRESHOLD {
            return 1;
        }
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(16)
    }

    /// Split the `m` output rows of `c` into contiguous blocks and run
    /// `body(first_row, block)` on each, across threads when worthwhile.
    fn parallel_rows<F>(m: usize, k: usize, n: usize, c: &mut [f32], body: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let threads = thread_count(m * k * n).min(m.max(1));
        if threads <= 1 {
            body(0, &mut c[..m * n]);
            return;
        }
        let rows_per = m.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest = &mut c[..m * n];
            let mut row = 0usize;
            while row < m {
                let take = rows_per.min(m - row);
                let (block, tail) = rest.split_at_mut(take * n);
                let first = row;
                let body = &body;
                scope.spawn(move || body(first, block));
                rest = tail;
                row += take;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        // Small deterministic LCG; avoids pulling rand into this module.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn sgemm_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (7, 7, 7), (16, 32, 8)] {
            let a = rand_vec(m * k, 1);
            let b = rand_vec(k * n, 2);
            let mut c = vec![0.0; m * n];
            sgemm(m, k, n, &a, &b, &mut c);
            let expect = naive(m, k, n, &a, &b);
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn sgemm_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut c = vec![10.0; 4];
        sgemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn sgemm_nt_matches_naive() {
        let (m, k, n) = (5, 6, 4);
        let a = rand_vec(m * k, 3);
        let bt = rand_vec(n * k, 4); // B stored [n,k]
                                     // Build B [k,n] explicitly for the naive reference.
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        sgemm_nt(m, k, n, &a, &bt, &mut c);
        let expect = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn sgemm_tn_matches_naive() {
        let (m, k, n) = (4, 7, 3);
        let at = rand_vec(k * m, 5); // A stored [k,m]
        let b = rand_vec(k * n, 6);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        sgemm_tn(m, k, n, &at, &b, &mut c);
        let expect = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn large_parallel_gemm_matches_naive() {
        // Big enough to cross PARALLEL_THRESHOLD (m*k*n = 2^21).
        let (m, k, n) = (128, 128, 128);
        let a = rand_vec(m * k, 7);
        let b = rand_vec(k * n, 8);
        let mut c = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        let expect = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn blocked_is_bit_identical_to_reference() {
        // Shapes straddling every edge case of the MR/NR/MC/KC grid and
        // the thin-k row sweep (k <= THIN_K with and without a tail
        // strip narrower than TW).
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 17),
            (4, 16, 16),
            (33, 7, 31),
            (65, 130, 19),
            (37, 1030, 33),
            (37, 33, 129),
            (5, 64, 64),
        ] {
            let a = rand_vec(m * k, 11);
            let b = rand_vec(k * n, 12);
            let mut c = rand_vec(m * n, 13);
            let mut expect = c.clone();
            blocked(m, k, n, &a, &b, &mut c, ALayout::RowMajor, BLayout::RowMajor);
            reference::sgemm(m, k, n, &a, &b, &mut expect);
            assert_eq!(c, expect, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn legacy_mode_matches_default_within_tolerance() {
        let (m, k, n) = (9, 33, 21);
        let a = rand_vec(m * k, 14);
        let b = rand_vec(k * n, 15);
        let mut fast = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut fast);
        pool::set_compute_mode(ComputeMode::Legacy);
        let mut slow = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut slow);
        pool::set_compute_mode(ComputeMode::Pooled);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "A too short")]
    fn sgemm_validates_input_sizes() {
        let mut c = vec![0.0; 4];
        sgemm(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }
}
