//! Single-precision matrix-multiply kernels.
//!
//! Everything compute-heavy in this crate (convolution via im2col,
//! linear layers and their backward passes) funnels into the three
//! kernels here. The loop order is `i-k-j` so the innermost loop
//! streams through contiguous rows of `B` and `C`, which autovectorizes
//! well. Work is split across threads by output-row blocks once the
//! FLOP count justifies the spawn cost.
//!
//! All kernels **accumulate** (`C += ...`); callers zero `C` when they
//! want a plain product.

use std::num::NonZeroUsize;

/// FLOP threshold (m·k·n) above which the kernels fan out to threads.
const PARALLEL_THRESHOLD: usize = 1 << 18;

/// `C[m,n] += A[m,k] * B[k,n]`, all row-major.
///
/// # Panics
///
/// Panics if any slice is shorter than its `m`/`k`/`n` shape implies.
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    parallel_rows(m, k, n, c, |i0, c_block| {
        for (di, c_row) in c_block.chunks_exact_mut(n).enumerate() {
            let i = i0 + di;
            let a_row = &a[i * k..(i + 1) * k];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c_ij += a_ip * b_pj;
                }
            }
        }
    });
}

/// `C[m,n] += A[m,k] * B[n,k]^T` (i.e. `C[i,j] += Σ_p A[i,p]·B[j,p]`).
///
/// Used for gradients w.r.t. inputs of linear layers
/// (`dX = dY · W` with `W` stored `[out,in]`) would be plain [`sgemm`];
/// this transposed form computes `dY · Wᵀ`-style products where the
/// second operand's rows are the contraction axis.
///
/// # Panics
///
/// Panics if any slice is shorter than its shape implies.
pub fn sgemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= m * k, "A too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= n * k, "B too short: {} < {}", b.len(), n * k);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    parallel_rows(m, k, n, c, |i0, c_block| {
        for (di, c_row) in c_block.chunks_exact_mut(n).enumerate() {
            let i = i0 + di;
            let a_row = &a[i * k..(i + 1) * k];
            for (j, c_ij) in c_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *c_ij += acc;
            }
        }
    });
}

/// `C[m,n] += A[k,m]^T * B[k,n]` (i.e. `C[i,j] += Σ_p A[p,i]·B[p,j]`).
///
/// This is the weight-gradient form: `dW = dYᵀ · X` with batch as the
/// contraction axis.
///
/// # Panics
///
/// Panics if any slice is shorter than its shape implies.
pub fn sgemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert!(a.len() >= k * m, "A too short: {} < {}", a.len(), k * m);
    assert!(b.len() >= k * n, "B too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too short: {} < {}", c.len(), m * n);
    parallel_rows(m, k, n, c, |i0, c_block| {
        for (di, c_row) in c_block.chunks_exact_mut(n).enumerate() {
            let i = i0 + di;
            for p in 0..k {
                let a_pi = a[p * m + i];
                if a_pi == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c_ij += a_pi * b_pj;
                }
            }
        }
    });
}

/// Number of worker threads to use for a problem of `flops` size.
fn thread_count(flops: usize) -> usize {
    if flops < PARALLEL_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(16)
}

/// Split the `m` output rows of `c` into contiguous blocks and run
/// `body(first_row, block)` on each, across threads when worthwhile.
fn parallel_rows<F>(m: usize, k: usize, n: usize, c: &mut [f32], body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let threads = thread_count(m * k * n).min(m.max(1));
    if threads <= 1 {
        body(0, &mut c[..m * n]);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = &mut c[..m * n];
        let mut row = 0usize;
        while row < m {
            let take = rows_per.min(m - row);
            let (block, tail) = rest.split_at_mut(take * n);
            let first = row;
            let body = &body;
            scope.spawn(move || body(first, block));
            rest = tail;
            row += take;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        // Small deterministic LCG; avoids pulling rand into this module.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn sgemm_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (7, 7, 7), (16, 32, 8)] {
            let a = rand_vec(m * k, 1);
            let b = rand_vec(k * n, 2);
            let mut c = vec![0.0; m * n];
            sgemm(m, k, n, &a, &b, &mut c);
            let expect = naive(m, k, n, &a, &b);
            for (x, y) in c.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn sgemm_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 3.0, 4.0, 5.0];
        let mut c = vec![10.0; 4];
        sgemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn sgemm_nt_matches_naive() {
        let (m, k, n) = (5, 6, 4);
        let a = rand_vec(m * k, 3);
        let bt = rand_vec(n * k, 4); // B stored [n,k]
        // Build B [k,n] explicitly for the naive reference.
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = bt[j * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        sgemm_nt(m, k, n, &a, &bt, &mut c);
        let expect = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn sgemm_tn_matches_naive() {
        let (m, k, n) = (4, 7, 3);
        let at = rand_vec(k * m, 5); // A stored [k,m]
        let b = rand_vec(k * n, 6);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = at[p * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        sgemm_tn(m, k, n, &at, &b, &mut c);
        let expect = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn large_parallel_gemm_matches_naive() {
        // Big enough to cross PARALLEL_THRESHOLD (m*k*n = 2^21).
        let (m, k, n) = (128, 128, 128);
        let a = rand_vec(m * k, 7);
        let b = rand_vec(k * n, 8);
        let mut c = vec![0.0; m * n];
        sgemm(m, k, n, &a, &b, &mut c);
        let expect = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "A too short")]
    fn sgemm_validates_input_sizes() {
        let mut c = vec![0.0; 4];
        sgemm(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }
}
