//! Minimal CPU deep-learning substrate for the wafer-map
//! deep-selective-learning reproduction.
//!
//! This crate provides everything the paper's models need and nothing
//! more: a dense `f32` [`Tensor`], a threaded GEMM, convolutional /
//! pooling / linear layers with **manual backpropagation**, common
//! activations, fused softmax cross-entropy and MSE losses, He/Xavier
//! initialization, and SGD/Adam optimizers. Weights serialize with
//! `serde` for checkpointing.
//!
//! The design follows a classic layer-object architecture: each
//! [`Layer`] caches whatever it needs during `forward` and consumes it
//! in `backward`, and owns its [`Param`]s (value + gradient + Adam
//! moments). A [`Sequential`] container chains layers; multi-head
//! models (like SelectiveNet) compose layers manually.
//!
//! # Example
//!
//! ```
//! use nn::{layers::{Linear, Relu}, Layer, Sequential, Tensor, optim::Adam, loss::softmax_cross_entropy};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut net = Sequential::new()
//!     .with(Linear::new(4, 16, &mut rng))
//!     .with(Relu::new())
//!     .with(Linear::new(16, 3, &mut rng));
//! let x = Tensor::randn(&[8, 4], 1.0, &mut rng);
//! let logits = net.forward(&x);
//! assert_eq!(logits.shape(), &[8, 3]);
//! let labels = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
//! let (loss, grad) = softmax_cross_entropy(&logits, &labels, None);
//! assert!(loss.is_finite());
//! net.zero_grad();
//! net.backward(&grad);
//! let mut adam = Adam::new(1e-3);
//! adam.step(&mut net);
//! ```

// `deny` rather than `forbid`: two modules opt back in, each with
// documented invariants — the worker pool (lifetime-erased job
// pointers and disjoint slice shards) and the SIMD kernels
// (raw-pointer vector loads/stores behind hoisted bounds proofs).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod param;
mod sequential;
mod tensor;

pub mod gemm;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod pool;
pub mod schedule;
pub mod serialize;
pub mod simd;
pub mod workspace;

pub use param::Param;
pub use sequential::Sequential;
pub use tensor::Tensor;

/// A differentiable network component with cached state for manual
/// backpropagation.
///
/// Contract: `backward` must be called after `forward` with a gradient
/// of the same shape as the last forward output, and returns the
/// gradient with respect to that forward input. Layers accumulate
/// parameter gradients (they do not overwrite), so call
/// [`Layer::zero_grad`] between optimizer steps.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Compute the layer output for `input`, caching activations
    /// needed by the backward pass.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Inference-only forward pass: same output as [`Layer::forward`]
    /// (bit-identical for the layers that implement it) but through
    /// `&self` — no activation caches are written, so nothing is
    /// retained for `backward` and no per-call buffers need to be
    /// zeroed or kept alive.
    ///
    /// This is the serving path. It runs single-threaded per call;
    /// callers parallelize **across samples** (see
    /// `pool::parallel_map`), which keeps each sample's working set
    /// cache-resident and makes results independent of the worker-pool
    /// size. Stochastic layers behave as in eval mode (dropout is the
    /// identity).
    ///
    /// # Panics
    ///
    /// The default implementation panics: training-oriented layers
    /// that never appear on a serving path do not implement it.
    fn infer(&self, _input: &Tensor) -> Tensor {
        panic!("this layer does not implement the inference-only forward pass");
    }

    /// Propagate `grad_output` (d loss / d output) backward, returning
    /// d loss / d input and accumulating parameter gradients.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward` or with a
    /// gradient whose shape does not match the last output.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Visit every trainable parameter (for optimizers and
    /// serialization). Stateless layers use the default empty impl.
    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut Param)) {}

    /// Reset all parameter gradients to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.grad.fill(0.0));
    }

    /// Total number of trainable scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.numel());
        n
    }
}
