//! Checkpointing: extract and restore parameter state for any
//! [`Layer`] tree.
//!
//! Layers are trait objects, so instead of serializing whole layers we
//! serialize an ordered *state dict* of parameter tensors (including
//! Adam moments, so training resumes exactly). Restoring walks the
//! same parameter order and verifies shapes.

use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::{Layer, Param, Tensor};

/// Ordered snapshot of every parameter in a layer tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    entries: Vec<Param>,
}

impl StateDict {
    /// Capture the current parameters (values, gradients and Adam
    /// moments) of `layer` in visitation order.
    #[must_use]
    pub fn capture(layer: &mut dyn Layer) -> Self {
        let mut entries = Vec::new();
        layer.visit_params(&mut |p: &mut Param| entries.push(p.clone()));
        StateDict { entries }
    }

    /// Number of parameters captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Restore this snapshot into `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] if the parameter count or any shape
    /// does not match the target layer.
    pub fn restore(&self, layer: &mut dyn Layer) -> Result<(), RestoreError> {
        // First pass: validate without mutating.
        let mut shapes: Vec<Vec<usize>> = Vec::new();
        layer.visit_params(&mut |p: &mut Param| shapes.push(p.value.shape().to_vec()));
        if shapes.len() != self.entries.len() {
            return Err(RestoreError::CountMismatch {
                expected: shapes.len(),
                found: self.entries.len(),
            });
        }
        for (i, (shape, entry)) in shapes.iter().zip(&self.entries).enumerate() {
            if shape.as_slice() != entry.value.shape() {
                return Err(RestoreError::ShapeMismatch {
                    index: i,
                    expected: shape.clone(),
                    found: entry.value.shape().to_vec(),
                });
            }
        }
        let mut i = 0;
        layer.visit_params(&mut |p: &mut Param| {
            *p = self.entries[i].clone();
            i += 1;
        });
        Ok(())
    }

    /// Serialize to a JSON file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and serialization errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), std::io::Error> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self).map_err(std::io::Error::other)
    }

    /// Deserialize from a JSON file written by [`StateDict::save`].
    ///
    /// # Errors
    ///
    /// Propagates file-open and deserialization errors.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, std::io::Error> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(file)).map_err(std::io::Error::other)
    }

    /// Parameter values only (without optimizer state), useful for
    /// inspecting checkpoints.
    #[must_use]
    pub fn values(&self) -> Vec<&Tensor> {
        self.entries.iter().map(|p| &p.value).collect()
    }
}

/// Error restoring a [`StateDict`] into an incompatible layer tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot holds a different number of parameters.
    CountMismatch {
        /// Parameters in the target layer.
        expected: usize,
        /// Parameters in the snapshot.
        found: usize,
    },
    /// A parameter's shape disagrees.
    ShapeMismatch {
        /// Parameter index in visitation order.
        index: usize,
        /// Shape in the target layer.
        expected: Vec<usize>,
        /// Shape in the snapshot.
        found: Vec<usize>,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::CountMismatch { expected, found } => {
                write!(f, "state dict has {found} params, layer expects {expected}")
            }
            RestoreError::ShapeMismatch { index, expected, found } => write!(
                f,
                "param {index} shape mismatch: layer {expected:?} vs state dict {found:?}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::Sequential;

    #[test]
    fn capture_restore_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut a = Sequential::new().with(Linear::new(4, 3, &mut rng)).with(Relu::new());
        let snap = StateDict::capture(&mut a);
        assert_eq!(snap.len(), 2);

        let mut b = Sequential::new().with(Linear::new(4, 3, &mut rng)).with(Relu::new());
        snap.restore(&mut b).expect("compatible shapes");
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        assert_eq!(a.forward(&x).data(), b.forward(&x).data());
    }

    #[test]
    fn restore_rejects_wrong_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Sequential::new().with(Linear::new(4, 3, &mut rng));
        let snap = StateDict::capture(&mut a);
        let mut b =
            Sequential::new().with(Linear::new(4, 3, &mut rng)).with(Linear::new(3, 2, &mut rng));
        assert!(matches!(snap.restore(&mut b), Err(RestoreError::CountMismatch { .. })));
    }

    #[test]
    fn restore_rejects_wrong_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = Sequential::new().with(Linear::new(4, 3, &mut rng));
        let snap = StateDict::capture(&mut a);
        let mut b = Sequential::new().with(Linear::new(5, 3, &mut rng));
        assert!(matches!(snap.restore(&mut b), Err(RestoreError::ShapeMismatch { .. })));
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new().with(Linear::new(3, 2, &mut rng));
        let snap = StateDict::capture(&mut net);
        let dir = std::env::temp_dir().join("nn_statedict_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("ckpt.json");
        snap.save(&path).expect("save");
        let loaded = StateDict::load(&path).expect("load");
        assert_eq!(snap, loaded);
        let _ = std::fs::remove_file(&path);
    }
}
