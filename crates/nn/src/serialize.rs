//! Checkpointing: extract and restore parameter state for any
//! [`Layer`] tree.
//!
//! Layers are trait objects, so instead of serializing whole layers we
//! serialize an ordered *state dict* of parameter tensors (values,
//! gradients, and per-parameter Adam moments). Restoring walks the
//! same parameter order and verifies shapes.
//!
//! A [`StateDict`] alone is **not** enough to resume training exactly:
//! Adam's bias correction depends on the optimizer's global step
//! counter `t`, which lives in [`crate::optim::Adam`], not in any
//! parameter. [`Checkpoint`] is the versioned bundle that pairs a
//! `StateDict` with an [`AdamState`] so a resumed run is bit-identical
//! to an uninterrupted one.

use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::optim::AdamState;
use crate::{Layer, Param, Tensor};

/// Current on-disk format version written by [`Checkpoint::save`].
///
/// Version history:
/// - **1** — initial versioned format: parameter state dict plus
///   optional Adam optimizer state (step counter + hyper-parameters).
///   Pre-versioned checkpoints (a bare `StateDict`, which lost the
///   Adam step counter) are rejected on load.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// Ordered snapshot of every parameter in a layer tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    entries: Vec<Param>,
}

impl StateDict {
    /// Capture the current parameters (values, gradients and Adam
    /// moments) of `layer` in visitation order.
    #[must_use]
    pub fn capture(layer: &mut dyn Layer) -> Self {
        let mut entries = Vec::new();
        layer.visit_params(&mut |p: &mut Param| entries.push(p.clone()));
        StateDict { entries }
    }

    /// Number of parameters captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Restore this snapshot into `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] if the parameter count or any shape
    /// does not match the target layer.
    pub fn restore(&self, layer: &mut dyn Layer) -> Result<(), RestoreError> {
        // First pass: validate without mutating.
        let mut shapes: Vec<Vec<usize>> = Vec::new();
        layer.visit_params(&mut |p: &mut Param| shapes.push(p.value.shape().to_vec()));
        if shapes.len() != self.entries.len() {
            return Err(RestoreError::CountMismatch {
                expected: shapes.len(),
                found: self.entries.len(),
            });
        }
        for (i, (shape, entry)) in shapes.iter().zip(&self.entries).enumerate() {
            if shape.as_slice() != entry.value.shape() {
                return Err(RestoreError::ShapeMismatch {
                    index: i,
                    expected: shape.clone(),
                    found: entry.value.shape().to_vec(),
                });
            }
        }
        let mut i = 0;
        layer.visit_params(&mut |p: &mut Param| {
            *p = self.entries[i].clone();
            i += 1;
        });
        Ok(())
    }

    /// Serialize to a JSON file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and serialization errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), std::io::Error> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self).map_err(std::io::Error::other)
    }

    /// Deserialize from a JSON file written by [`StateDict::save`].
    ///
    /// # Errors
    ///
    /// Propagates file-open and deserialization errors.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, std::io::Error> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(file)).map_err(std::io::Error::other)
    }

    /// Parameter values only (without optimizer state), useful for
    /// inspecting checkpoints.
    #[must_use]
    pub fn values(&self) -> Vec<&Tensor> {
        self.entries.iter().map(|p| &p.value).collect()
    }
}

/// Versioned checkpoint bundle: parameter state plus the optimizer
/// state a bit-exact training resume needs.
///
/// # Example
///
/// ```
/// use nn::layers::Linear;
/// use nn::optim::Adam;
/// use nn::serialize::{Checkpoint, StateDict};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Linear::new(4, 2, &mut rng);
/// let mut adam = Adam::new(1e-3);
/// adam.step(&mut net);
///
/// let ckpt = Checkpoint::new(StateDict::capture(&mut net)).with_optimizer(adam.state());
/// let restored = Adam::from_state(ckpt.optimizer().unwrap()).unwrap();
/// assert_eq!(restored.steps(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    format_version: u32,
    params: StateDict,
    optimizer: Option<AdamState>,
}

impl Checkpoint {
    /// Bundle a parameter snapshot at the current format version,
    /// without optimizer state (inference-only export).
    #[must_use]
    pub fn new(params: StateDict) -> Self {
        Checkpoint { format_version: CHECKPOINT_FORMAT_VERSION, params, optimizer: None }
    }

    /// Attach optimizer state so training can resume exactly.
    #[must_use]
    pub fn with_optimizer(mut self, optimizer: AdamState) -> Self {
        self.optimizer = Some(optimizer);
        self
    }

    /// Format version this bundle was written with.
    #[must_use]
    pub fn format_version(&self) -> u32 {
        self.format_version
    }

    /// The parameter snapshot.
    #[must_use]
    pub fn params(&self) -> &StateDict {
        &self.params
    }

    /// The optimizer state, if this checkpoint carries one.
    #[must_use]
    pub fn optimizer(&self) -> Option<&AdamState> {
        self.optimizer.as_ref()
    }

    /// Serialize to a JSON file.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and serialization errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), std::io::Error> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(file), self).map_err(std::io::Error::other)
    }

    /// Deserialize from a JSON file written by [`Checkpoint::save`],
    /// rejecting unknown format versions.
    ///
    /// # Errors
    ///
    /// Propagates file/parse errors; an unsupported `format_version`
    /// (including pre-versioned bare `StateDict` files, which carry
    /// none) is reported as [`std::io::ErrorKind::InvalidData`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, std::io::Error> {
        let file = std::fs::File::open(path)?;
        let ckpt: Checkpoint = serde_json::from_reader(std::io::BufReader::new(file))
            .map_err(std::io::Error::other)?;
        if ckpt.format_version != CHECKPOINT_FORMAT_VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "unsupported checkpoint format version {} (this build reads {})",
                    ckpt.format_version, CHECKPOINT_FORMAT_VERSION
                ),
            ));
        }
        Ok(ckpt)
    }
}

/// Error restoring a [`StateDict`] into an incompatible layer tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot holds a different number of parameters.
    CountMismatch {
        /// Parameters in the target layer.
        expected: usize,
        /// Parameters in the snapshot.
        found: usize,
    },
    /// A parameter's shape disagrees.
    ShapeMismatch {
        /// Parameter index in visitation order.
        index: usize,
        /// Shape in the target layer.
        expected: Vec<usize>,
        /// Shape in the snapshot.
        found: Vec<usize>,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::CountMismatch { expected, found } => {
                write!(f, "state dict has {found} params, layer expects {expected}")
            }
            RestoreError::ShapeMismatch { index, expected, found } => write!(
                f,
                "param {index} shape mismatch: layer {expected:?} vs state dict {found:?}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::Sequential;

    #[test]
    fn capture_restore_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut a = Sequential::new().with(Linear::new(4, 3, &mut rng)).with(Relu::new());
        let snap = StateDict::capture(&mut a);
        assert_eq!(snap.len(), 2);

        let mut b = Sequential::new().with(Linear::new(4, 3, &mut rng)).with(Relu::new());
        snap.restore(&mut b).expect("compatible shapes");
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        assert_eq!(a.forward(&x).data(), b.forward(&x).data());
    }

    #[test]
    fn restore_rejects_wrong_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Sequential::new().with(Linear::new(4, 3, &mut rng));
        let snap = StateDict::capture(&mut a);
        let mut b =
            Sequential::new().with(Linear::new(4, 3, &mut rng)).with(Linear::new(3, 2, &mut rng));
        assert!(matches!(snap.restore(&mut b), Err(RestoreError::CountMismatch { .. })));
    }

    #[test]
    fn restore_rejects_wrong_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = Sequential::new().with(Linear::new(4, 3, &mut rng));
        let snap = StateDict::capture(&mut a);
        let mut b = Sequential::new().with(Linear::new(5, 3, &mut rng));
        assert!(matches!(snap.restore(&mut b), Err(RestoreError::ShapeMismatch { .. })));
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new().with(Linear::new(3, 2, &mut rng));
        let snap = StateDict::capture(&mut net);
        let dir = std::env::temp_dir().join("nn_statedict_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("ckpt.json");
        snap.save(&path).expect("save");
        let loaded = StateDict::load(&path).expect("load");
        assert_eq!(snap, loaded);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_file_roundtrip_preserves_optimizer_state() {
        use crate::optim::Adam;

        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::new().with(Linear::new(3, 2, &mut rng));
        let mut adam = Adam::new(2e-3).with_betas(0.85, 0.99);
        net.zero_grad();
        adam.step(&mut net);
        adam.step(&mut net);

        let ckpt = Checkpoint::new(StateDict::capture(&mut net)).with_optimizer(adam.state());
        let dir = std::env::temp_dir().join("nn_checkpoint_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("bundle.json");
        ckpt.save(&path).expect("save");
        let loaded = Checkpoint::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);

        assert_eq!(loaded, ckpt);
        assert_eq!(loaded.format_version(), CHECKPOINT_FORMAT_VERSION);
        let state = loaded.optimizer().expect("optimizer state present");
        assert_eq!(state.t, 2);
        let restored = Adam::from_state(state).expect("valid state");
        assert_eq!(restored, adam);
    }

    #[test]
    fn checkpoint_load_rejects_unknown_version_and_bare_state_dict() {
        let dir = std::env::temp_dir().join("nn_checkpoint_version_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");

        // A future format version must be refused, not misread.
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Sequential::new().with(Linear::new(2, 2, &mut rng));
        let mut ckpt = Checkpoint::new(StateDict::capture(&mut net));
        ckpt.format_version = CHECKPOINT_FORMAT_VERSION + 1;
        let future = dir.join("future.json");
        ckpt.save(&future).expect("save");
        let err = Checkpoint::load(&future).expect_err("future version must be rejected");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&future);

        // A pre-versioned bare StateDict file has no format_version.
        let bare = dir.join("bare.json");
        StateDict::capture(&mut net).save(&bare).expect("save");
        assert!(Checkpoint::load(&bare).is_err(), "bare StateDict must not load as Checkpoint");
        let _ = std::fs::remove_file(&bare);
    }
}
