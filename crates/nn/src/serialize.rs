//! Checkpointing: extract and restore parameter state for any
//! [`Layer`] tree, with crash-safe on-disk persistence.
//!
//! Layers are trait objects, so instead of serializing whole layers we
//! serialize an ordered *state dict* of parameter tensors (values,
//! gradients, and per-parameter Adam moments). Restoring walks the
//! same parameter order and verifies shapes.
//!
//! A [`StateDict`] alone is **not** enough to resume training exactly:
//! Adam's bias correction depends on the optimizer's global step
//! counter `t`, which lives in [`crate::optim::Adam`], not in any
//! parameter. [`Checkpoint`] is the versioned bundle that pairs a
//! `StateDict` with an [`AdamState`] so a resumed run is bit-identical
//! to an uninterrupted one.
//!
//! # On-disk container format (v2)
//!
//! Checkpoints are the long-lived asset a serving fleet trusts on
//! disk, so every `save` in this module (and
//! `selective::CheckpointBundle::save`) writes a self-validating
//! container and goes through [`atomic_write`] — a crash at any
//! instant leaves either the complete old file or the complete new
//! file, never a torn hybrid:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"WMSERL2\0"
//! 8       4     container version (u32 LE, currently 2)
//! 12      8     payload length     (u64 LE)
//! 20      4     CRC32 of payload   (u32 LE, IEEE polynomial)
//! 24      n     payload            (JSON of the serialized value)
//! ```
//!
//! [`read_container`] verifies the magic, version, length, and
//! checksum before a single payload byte is parsed, and classifies
//! every failure as a typed [`LoadError`] — [`LoadError::Truncated`],
//! [`LoadError::ChecksumMismatch`], [`LoadError::UnsupportedVersion`],
//! or [`LoadError::Malformed`] — never a panic and never a
//! silently-wrong value. Files that do not begin with the magic are
//! treated as **v1** (bare JSON, the pre-container format) and still
//! load.

use std::fmt;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::optim::AdamState;
use crate::{Layer, Param, Tensor};

/// Current on-disk format version written by [`Checkpoint::save`].
///
/// Version history:
/// - **1** — initial versioned format: parameter state dict plus
///   optional Adam optimizer state (step counter + hyper-parameters).
///   Pre-versioned checkpoints (a bare `StateDict`, which lost the
///   Adam step counter) are rejected on load.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every v2 serialization container.
pub const CONTAINER_MAGIC: [u8; 8] = *b"WMSERL2\0";

/// Container layout version written by [`write_container`].
///
/// Version history:
/// - **1** — (implicit) bare JSON with no header; still readable.
/// - **2** — magic + version + payload length + CRC32 header, written
///   atomically.
pub const CONTAINER_FORMAT_VERSION: u32 = 2;

/// Size of the fixed v2 container header in bytes.
pub const CONTAINER_HEADER_LEN: usize = 24;

// ---------------------------------------------------------------------------
// CRC32 + atomic writes
// ---------------------------------------------------------------------------

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_crc32_table();

/// CRC32 (IEEE 802.3 polynomial) of `bytes` — the checksum stored in
/// and verified against the v2 container header.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Write `bytes` to `path` crash-safely: the bytes go to a temporary
/// sibling file first, are fsynced, and the temporary is renamed over
/// `path` (a single atomic filesystem operation on POSIX). The
/// containing directory is fsynced afterwards so the rename itself is
/// durable. A crash at any point leaves either the old file or the
/// new file — never a partial write under the final name.
///
/// # Errors
///
/// Propagates filesystem errors; the temporary file is removed on
/// failure (best effort).
pub fn atomic_write<P: AsRef<Path>>(path: P, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;

    let path = path.as_ref();
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("path {} has no file name", path.display()),
            )
        })?
        .to_os_string();
    let mut tmp_name = file_name;
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp_path = dir.join(tmp_name);

    let result = (|| -> std::io::Result<()> {
        let mut tmp = std::fs::File::create(&tmp_path)?;
        tmp.write_all(bytes)?;
        tmp.sync_all()?;
        drop(tmp);
        std::fs::rename(&tmp_path, path)?;
        // Make the rename durable. Directory fsync is a POSIX-ism;
        // where directories cannot be opened (e.g. Windows) the rename
        // is already as durable as the platform offers.
        if let Ok(dir_handle) = std::fs::File::open(&dir) {
            let _ = dir_handle.sync_all();
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

// ---------------------------------------------------------------------------
// Typed load errors
// ---------------------------------------------------------------------------

/// Why a checkpoint artifact could not be loaded. Every corruption
/// mode maps to a variant — loading garbage is an error, never a
/// panic and never a silently mis-parsed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The underlying filesystem read failed (file missing, permission
    /// denied, interrupted, …). The original error is summarized by
    /// kind and message so `LoadError` stays comparable in tests.
    Io {
        /// Kind of the underlying I/O error.
        kind: std::io::ErrorKind,
        /// Display form of the underlying error.
        message: String,
    },
    /// The file ends before the container header or the declared
    /// payload — the classic torn write.
    Truncated {
        /// Bytes the container declares (or minimally requires).
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The payload bytes do not hash to the checksum in the header —
    /// silent corruption between write and read.
    ChecksumMismatch {
        /// CRC32 stored in the header.
        expected: u32,
        /// CRC32 of the payload as read.
        found: u32,
    },
    /// The container or inner format version is one this build does
    /// not read.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// The bytes passed every structural check but do not parse as
    /// the expected value (bad JSON, wrong schema, trailing garbage).
    Malformed(String),
}

impl LoadError {
    fn malformed_json(e: impl fmt::Display) -> Self {
        LoadError::Malformed(format!("payload is not valid JSON for the expected type: {e}"))
    }
}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io { kind: e.kind(), message: e.to_string() }
    }
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io { kind, message } => write!(f, "i/o error ({kind:?}): {message}"),
            LoadError::Truncated { expected, found } => {
                write!(f, "file truncated: {found} bytes present, {expected} expected")
            }
            LoadError::ChecksumMismatch { expected, found } => write!(
                f,
                "payload checksum mismatch: header says {expected:#010x}, payload hashes to \
                 {found:#010x}"
            ),
            LoadError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (this build reads <= {supported})")
            }
            LoadError::Malformed(why) => write!(f, "malformed file: {why}"),
        }
    }
}

impl std::error::Error for LoadError {}

// ---------------------------------------------------------------------------
// Container read/write
// ---------------------------------------------------------------------------

/// Payload extracted from an on-disk serialization container, tagged
/// with the container version it was stored under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// Container layout version: `1` for bare pre-container JSON
    /// files, [`CONTAINER_FORMAT_VERSION`] for headered files.
    pub version: u32,
    /// The payload bytes (JSON of the serialized value).
    pub payload: Vec<u8>,
}

/// Wrap `payload` in a v2 container (magic, version, length, CRC32)
/// and write it to `path` through [`atomic_write`].
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_container<P: AsRef<Path>>(path: P, payload: &[u8]) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(CONTAINER_HEADER_LEN + payload.len());
    bytes.extend_from_slice(&CONTAINER_MAGIC);
    bytes.extend_from_slice(&CONTAINER_FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    atomic_write(path, &bytes)
}

/// Read and structurally validate a serialization container written by
/// [`write_container`], or fall back to treating the whole file as a
/// v1 (bare JSON) payload when the magic is absent.
///
/// Validation order: magic → container version → declared length →
/// checksum. The payload is returned only once every check passes, so
/// a caller never parses bytes the header does not vouch for.
///
/// # Errors
///
/// [`LoadError::Io`] for filesystem failures, [`LoadError::Truncated`]
/// when the file ends early (including mid-magic), and
/// [`LoadError::UnsupportedVersion`] / [`LoadError::ChecksumMismatch`]
/// / [`LoadError::Malformed`] for the corresponding header violations.
pub fn read_container<P: AsRef<Path>>(path: P) -> Result<Container, LoadError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < CONTAINER_MAGIC.len() {
        // A prefix of the magic is a v2 file cut mid-header, not a
        // v1 JSON file (no JSON document starts with "WMSER…"). The
        // empty file is ambiguous; neither format accepts it, and
        // "truncated" is the honest description.
        if CONTAINER_MAGIC.starts_with(&bytes) {
            return Err(LoadError::Truncated {
                expected: CONTAINER_HEADER_LEN as u64,
                found: bytes.len() as u64,
            });
        }
        return Ok(Container { version: 1, payload: bytes });
    }
    if bytes[..CONTAINER_MAGIC.len()] != CONTAINER_MAGIC {
        return Ok(Container { version: 1, payload: bytes });
    }
    if bytes.len() < CONTAINER_HEADER_LEN {
        return Err(LoadError::Truncated {
            expected: CONTAINER_HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 header bytes"));
    if version != CONTAINER_FORMAT_VERSION {
        return Err(LoadError::UnsupportedVersion {
            found: version,
            supported: CONTAINER_FORMAT_VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 header bytes"));
    let expected_total = (CONTAINER_HEADER_LEN as u64).saturating_add(payload_len);
    let found_total = bytes.len() as u64;
    if found_total < expected_total {
        return Err(LoadError::Truncated { expected: expected_total, found: found_total });
    }
    if found_total > expected_total {
        return Err(LoadError::Malformed(format!(
            "{} trailing bytes after the declared payload",
            found_total - expected_total
        )));
    }
    let payload = &bytes[CONTAINER_HEADER_LEN..];
    let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 header bytes"));
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        return Err(LoadError::ChecksumMismatch { expected: stored_crc, found: actual_crc });
    }
    Ok(Container { version: CONTAINER_FORMAT_VERSION, payload: payload.to_vec() })
}

/// Serialize `value` as JSON and write it to `path` inside a v2
/// container, atomically. The shared save path of [`StateDict`],
/// [`Checkpoint`], and `selective::CheckpointBundle`.
///
/// # Errors
///
/// Propagates serialization and filesystem errors.
pub fn save_json_container<P: AsRef<Path>, T: Serialize + ?Sized>(
    path: P,
    value: &T,
) -> Result<(), std::io::Error> {
    let json = serde_json::to_string(value).map_err(std::io::Error::other)?;
    write_container(path, json.as_bytes())
}

/// Load a JSON value from a v2 container (or a bare v1 JSON file) at
/// `path` — the shared load path of [`StateDict`], [`Checkpoint`],
/// and `selective::CheckpointBundle`. Returns the parsed value and
/// the container version it was stored under.
///
/// # Errors
///
/// Every structural violation surfaces as the corresponding typed
/// [`LoadError`]; payloads that clear the header checks but fail to
/// parse are [`LoadError::Malformed`].
pub fn load_json_container<P: AsRef<Path>, T: Deserialize>(path: P) -> Result<(T, u32), LoadError> {
    let container = read_container(path)?;
    let text = std::str::from_utf8(&container.payload)
        .map_err(|e| LoadError::Malformed(format!("payload is not UTF-8: {e}")))?;
    let value = serde_json::from_str(text).map_err(LoadError::malformed_json)?;
    Ok((value, container.version))
}

/// Ordered snapshot of every parameter in a layer tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    entries: Vec<Param>,
}

impl StateDict {
    /// Capture the current parameters (values, gradients and Adam
    /// moments) of `layer` in visitation order.
    #[must_use]
    pub fn capture(layer: &mut dyn Layer) -> Self {
        let mut entries = Vec::new();
        layer.visit_params(&mut |p: &mut Param| entries.push(p.clone()));
        StateDict { entries }
    }

    /// Number of parameters captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Restore this snapshot into `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] if the parameter count or any shape
    /// does not match the target layer.
    pub fn restore(&self, layer: &mut dyn Layer) -> Result<(), RestoreError> {
        // First pass: validate without mutating.
        let mut shapes: Vec<Vec<usize>> = Vec::new();
        layer.visit_params(&mut |p: &mut Param| shapes.push(p.value.shape().to_vec()));
        if shapes.len() != self.entries.len() {
            return Err(RestoreError::CountMismatch {
                expected: shapes.len(),
                found: self.entries.len(),
            });
        }
        for (i, (shape, entry)) in shapes.iter().zip(&self.entries).enumerate() {
            if shape.as_slice() != entry.value.shape() {
                return Err(RestoreError::ShapeMismatch {
                    index: i,
                    expected: shape.clone(),
                    found: entry.value.shape().to_vec(),
                });
            }
        }
        let mut i = 0;
        layer.visit_params(&mut |p: &mut Param| {
            *p = self.entries[i].clone();
            i += 1;
        });
        Ok(())
    }

    /// Serialize to a v2 container file via [`atomic_write`].
    ///
    /// # Errors
    ///
    /// Propagates file-creation and serialization errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), std::io::Error> {
        save_json_container(path, self)
    }

    /// Deserialize from a file written by [`StateDict::save`] — either
    /// a v2 container or a bare v1 JSON file.
    ///
    /// # Errors
    ///
    /// Returns the typed [`LoadError`] classifying any truncation,
    /// checksum mismatch, version skew, or parse failure.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, LoadError> {
        let (dict, _version) = load_json_container(path)?;
        Ok(dict)
    }

    /// Parameter values only (without optimizer state), useful for
    /// inspecting checkpoints.
    #[must_use]
    pub fn values(&self) -> Vec<&Tensor> {
        self.entries.iter().map(|p| &p.value).collect()
    }
}

/// Versioned checkpoint bundle: parameter state plus the optimizer
/// state a bit-exact training resume needs.
///
/// # Example
///
/// ```
/// use nn::layers::Linear;
/// use nn::optim::Adam;
/// use nn::serialize::{Checkpoint, StateDict};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Linear::new(4, 2, &mut rng);
/// let mut adam = Adam::new(1e-3);
/// adam.step(&mut net);
///
/// let ckpt = Checkpoint::new(StateDict::capture(&mut net)).with_optimizer(adam.state());
/// let restored = Adam::from_state(ckpt.optimizer().unwrap()).unwrap();
/// assert_eq!(restored.steps(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    format_version: u32,
    params: StateDict,
    optimizer: Option<AdamState>,
}

impl Checkpoint {
    /// Bundle a parameter snapshot at the current format version,
    /// without optimizer state (inference-only export).
    #[must_use]
    pub fn new(params: StateDict) -> Self {
        Checkpoint { format_version: CHECKPOINT_FORMAT_VERSION, params, optimizer: None }
    }

    /// Attach optimizer state so training can resume exactly.
    #[must_use]
    pub fn with_optimizer(mut self, optimizer: AdamState) -> Self {
        self.optimizer = Some(optimizer);
        self
    }

    /// Format version this bundle was written with.
    #[must_use]
    pub fn format_version(&self) -> u32 {
        self.format_version
    }

    /// The parameter snapshot.
    #[must_use]
    pub fn params(&self) -> &StateDict {
        &self.params
    }

    /// The optimizer state, if this checkpoint carries one.
    #[must_use]
    pub fn optimizer(&self) -> Option<&AdamState> {
        self.optimizer.as_ref()
    }

    /// Serialize to a v2 container file via [`atomic_write`].
    ///
    /// # Errors
    ///
    /// Propagates file-creation and serialization errors.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), std::io::Error> {
        save_json_container(path, self)
    }

    /// Deserialize from a file written by [`Checkpoint::save`] —
    /// either a v2 container or a bare v1 JSON file — rejecting
    /// unknown checkpoint format versions.
    ///
    /// # Errors
    ///
    /// Returns the typed [`LoadError`] classifying any truncation,
    /// checksum mismatch, version skew (container or checkpoint), or
    /// parse failure. A pre-versioned bare `StateDict` file carries no
    /// `format_version` and is [`LoadError::Malformed`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, LoadError> {
        let (ckpt, _version): (Checkpoint, u32) = load_json_container(path)?;
        if ckpt.format_version != CHECKPOINT_FORMAT_VERSION {
            return Err(LoadError::UnsupportedVersion {
                found: ckpt.format_version,
                supported: CHECKPOINT_FORMAT_VERSION,
            });
        }
        Ok(ckpt)
    }
}

/// Error restoring a [`StateDict`] into an incompatible layer tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot holds a different number of parameters.
    CountMismatch {
        /// Parameters in the target layer.
        expected: usize,
        /// Parameters in the snapshot.
        found: usize,
    },
    /// A parameter's shape disagrees.
    ShapeMismatch {
        /// Parameter index in visitation order.
        index: usize,
        /// Shape in the target layer.
        expected: Vec<usize>,
        /// Shape in the snapshot.
        found: Vec<usize>,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::CountMismatch { expected, found } => {
                write!(f, "state dict has {found} params, layer expects {expected}")
            }
            RestoreError::ShapeMismatch { index, expected, found } => write!(
                f,
                "param {index} shape mismatch: layer {expected:?} vs state dict {found:?}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::Sequential;

    fn temp_path(dir_tag: &str, file: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(dir_tag);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(file)
    }

    #[test]
    fn capture_restore_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut a = Sequential::new().with(Linear::new(4, 3, &mut rng)).with(Relu::new());
        let snap = StateDict::capture(&mut a);
        assert_eq!(snap.len(), 2);

        let mut b = Sequential::new().with(Linear::new(4, 3, &mut rng)).with(Relu::new());
        snap.restore(&mut b).expect("compatible shapes");
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        assert_eq!(a.forward(&x).data(), b.forward(&x).data());
    }

    #[test]
    fn restore_rejects_wrong_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Sequential::new().with(Linear::new(4, 3, &mut rng));
        let snap = StateDict::capture(&mut a);
        let mut b =
            Sequential::new().with(Linear::new(4, 3, &mut rng)).with(Linear::new(3, 2, &mut rng));
        assert!(matches!(snap.restore(&mut b), Err(RestoreError::CountMismatch { .. })));
    }

    #[test]
    fn restore_rejects_wrong_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = Sequential::new().with(Linear::new(4, 3, &mut rng));
        let snap = StateDict::capture(&mut a);
        let mut b = Sequential::new().with(Linear::new(5, 3, &mut rng));
        assert!(matches!(snap.restore(&mut b), Err(RestoreError::ShapeMismatch { .. })));
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new().with(Linear::new(3, 2, &mut rng));
        let snap = StateDict::capture(&mut net);
        let path = temp_path("nn_statedict_test", "ckpt.bin");
        snap.save(&path).expect("save");
        let loaded = StateDict::load(&path).expect("load");
        assert_eq!(snap, loaded);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_file_roundtrip_preserves_optimizer_state() {
        use crate::optim::Adam;

        let mut rng = StdRng::seed_from_u64(4);
        let mut net = Sequential::new().with(Linear::new(3, 2, &mut rng));
        let mut adam = Adam::new(2e-3).with_betas(0.85, 0.99);
        net.zero_grad();
        adam.step(&mut net);
        adam.step(&mut net);

        let ckpt = Checkpoint::new(StateDict::capture(&mut net)).with_optimizer(adam.state());
        let path = temp_path("nn_checkpoint_test", "bundle.bin");
        ckpt.save(&path).expect("save");
        let loaded = Checkpoint::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);

        assert_eq!(loaded, ckpt);
        assert_eq!(loaded.format_version(), CHECKPOINT_FORMAT_VERSION);
        let state = loaded.optimizer().expect("optimizer state present");
        assert_eq!(state.t, 2);
        let restored = Adam::from_state(state).expect("valid state");
        assert_eq!(restored, adam);
    }

    #[test]
    fn checkpoint_load_rejects_unknown_version_and_bare_state_dict() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Sequential::new().with(Linear::new(2, 2, &mut rng));
        let mut ckpt = Checkpoint::new(StateDict::capture(&mut net));
        ckpt.format_version = CHECKPOINT_FORMAT_VERSION + 1;
        let future = temp_path("nn_checkpoint_version_test", "future.bin");
        ckpt.save(&future).expect("save");
        let err = Checkpoint::load(&future).expect_err("future version must be rejected");
        assert!(matches!(err, LoadError::UnsupportedVersion { supported, .. }
            if supported == CHECKPOINT_FORMAT_VERSION));
        let _ = std::fs::remove_file(&future);

        // A pre-versioned bare StateDict file has no format_version.
        let bare = temp_path("nn_checkpoint_version_test", "bare.bin");
        StateDict::capture(&mut net).save(&bare).expect("save");
        assert!(
            matches!(Checkpoint::load(&bare), Err(LoadError::Malformed(_))),
            "bare StateDict must not load as Checkpoint"
        );
        let _ = std::fs::remove_file(&bare);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn container_roundtrip_and_header_layout() {
        let path = temp_path("nn_container_test", "payload.bin");
        write_container(&path, b"hello payload").expect("write");
        let bytes = std::fs::read(&path).expect("read raw");
        assert_eq!(&bytes[..8], &CONTAINER_MAGIC);
        assert_eq!(bytes.len(), CONTAINER_HEADER_LEN + 13);
        let container = read_container(&path).expect("read");
        assert_eq!(container.version, CONTAINER_FORMAT_VERSION);
        assert_eq!(container.payload, b"hello payload");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_v1_json_files_still_load() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = Sequential::new().with(Linear::new(3, 2, &mut rng));
        let ckpt = Checkpoint::new(StateDict::capture(&mut net));
        // Write the pre-container format: bare JSON, no header.
        let path = temp_path("nn_container_v1_test", "legacy.json");
        std::fs::write(&path, serde_json::to_string(&ckpt).expect("serialize")).expect("write");
        let loaded = Checkpoint::load(&path).expect("v1 file must still load");
        assert_eq!(loaded, ckpt);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn container_corruptions_yield_typed_errors() {
        let path = temp_path("nn_container_corrupt_test", "victim.bin");
        let payload = b"{\"k\": [1, 2, 3]}";
        write_container(&path, payload).expect("write");
        let intact = std::fs::read(&path).expect("read");

        // Truncation inside the magic.
        std::fs::write(&path, &intact[..4]).expect("write");
        assert!(matches!(read_container(&path), Err(LoadError::Truncated { .. })));

        // Truncation inside the header.
        std::fs::write(&path, &intact[..CONTAINER_HEADER_LEN - 2]).expect("write");
        assert!(matches!(read_container(&path), Err(LoadError::Truncated { .. })));

        // Truncation inside the payload.
        std::fs::write(&path, &intact[..intact.len() - 3]).expect("write");
        assert!(matches!(read_container(&path), Err(LoadError::Truncated { .. })));

        // A flipped payload bit fails the checksum.
        let mut flipped = intact.clone();
        flipped[CONTAINER_HEADER_LEN + 2] ^= 0x10;
        std::fs::write(&path, &flipped).expect("write");
        assert!(matches!(read_container(&path), Err(LoadError::ChecksumMismatch { .. })));

        // A future container version is refused before any payload
        // parsing.
        let mut future = intact.clone();
        future[8..12].copy_from_slice(&(CONTAINER_FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &future).expect("write");
        assert!(matches!(
            read_container(&path),
            Err(LoadError::UnsupportedVersion { supported: CONTAINER_FORMAT_VERSION, .. })
        ));

        // Trailing garbage after the declared payload.
        let mut trailing = intact.clone();
        trailing.extend_from_slice(b"junk");
        std::fs::write(&path, &trailing).expect("write");
        assert!(matches!(read_container(&path), Err(LoadError::Malformed(_))));

        // A missing file is an I/O error, not a panic.
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            read_container(&path),
            Err(LoadError::Io { kind: std::io::ErrorKind::NotFound, .. })
        ));
    }

    #[test]
    fn atomic_write_replaces_existing_content_and_leaves_no_temp() {
        let path = temp_path("nn_atomic_write_test", "target.bin");
        atomic_write(&path, b"first").expect("write 1");
        atomic_write(&path, b"second generation").expect("write 2");
        assert_eq!(std::fs::read(&path).expect("read"), b"second generation");
        let dir = path.parent().expect("parent");
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .expect("read dir")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        let _ = std::fs::remove_file(&path);
    }
}
