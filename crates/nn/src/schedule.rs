//! Learning-rate schedules and gradient utilities.

use crate::Layer;

/// A learning-rate schedule: maps an epoch index to a multiplier on
/// the base learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay {
        /// Epoch interval between decays.
        every: usize,
        /// Decay factor per step.
        gamma: f32,
    },
    /// Cosine annealing from 1.0 down to `floor` over `total` epochs.
    Cosine {
        /// Total schedule length in epochs.
        total: usize,
        /// Final multiplier (fraction of the base rate).
        floor: f32,
    },
}

impl LrSchedule {
    /// Multiplier on the base learning rate at `epoch` (0-based).
    ///
    /// # Example
    ///
    /// ```
    /// use nn::schedule::LrSchedule;
    ///
    /// let step = LrSchedule::StepDecay { every: 10, gamma: 0.5 };
    /// assert_eq!(step.factor(0), 1.0);
    /// assert_eq!(step.factor(10), 0.5);
    /// assert_eq!(step.factor(25), 0.25);
    /// ```
    #[must_use]
    pub fn factor(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { every, gamma } => match epoch.checked_div(every) {
                None => 1.0,
                Some(steps) => gamma.powi(steps as i32),
            },
            LrSchedule::Cosine { total, floor } => {
                if total == 0 {
                    return 1.0;
                }
                let t = (epoch.min(total) as f32) / (total as f32);
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                floor + (1.0 - floor) * cos
            }
        }
    }
}

/// Scale all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_grad_norm(layer: &mut dyn Layer, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0f64;
    layer.visit_params(&mut |p| {
        sq += p.grad.data().iter().map(|&g| f64::from(g) * f64::from(g)).sum::<f64>();
    });
    let norm = (sq as f32).sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        layer.visit_params(&mut |p| p.grad.scale(scale));
    }
    norm
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::layers::Linear;
    use crate::Layer;

    #[test]
    fn constant_schedule_never_changes() {
        for epoch in [0usize, 5, 500] {
            assert_eq!(LrSchedule::Constant.factor(epoch), 1.0);
        }
    }

    #[test]
    fn cosine_decays_monotonically_to_floor() {
        let s = LrSchedule::Cosine { total: 20, floor: 0.1 };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        let mut prev = f32::MAX;
        for epoch in 0..=20 {
            let f = s.factor(epoch);
            assert!(f <= prev + 1e-6, "not monotone at {epoch}");
            prev = f;
        }
        assert!((s.factor(20) - 0.1).abs() < 1e-5);
        // Past the horizon the floor holds.
        assert!((s.factor(100) - 0.1).abs() < 1e-5);
    }

    #[test]
    fn clip_reduces_large_gradients_only() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut fc = Linear::new(4, 4, &mut rng);
        fc.visit_params(&mut |p| p.grad.fill(10.0));
        let before = clip_grad_norm(&mut fc, 1.0);
        assert!(before > 1.0);
        let mut sq = 0.0f32;
        fc.visit_params(&mut |p| sq += p.grad.data().iter().map(|g| g * g).sum::<f32>());
        assert!((sq.sqrt() - 1.0).abs() < 1e-4);
        // A small gradient is untouched.
        fc.visit_params(&mut |p| p.grad.fill(1e-4));
        let small = clip_grad_norm(&mut fc, 1.0);
        assert!(small < 1.0);
        let mut max = 0.0f32;
        fc.visit_params(&mut |p| max = max.max(p.grad.max_abs()));
        assert!((max - 1e-4).abs() < 1e-7);
    }
}
