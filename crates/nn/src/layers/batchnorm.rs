use serde::{Deserialize, Serialize};

use crate::{Layer, Param, Tensor};

/// Batch normalization over the channel axis of `[N, C, H, W]`
/// tensors (per-channel statistics across batch and spatial dims),
/// with learnable scale `γ` and shift `β` and running statistics for
/// eval mode.
///
/// # Example
///
/// ```
/// use nn::{layers::BatchNorm2d, Layer, Tensor};
///
/// let mut bn = BatchNorm2d::new(3);
/// let y = bn.forward(&Tensor::full(&[2, 3, 4, 4], 5.0));
/// assert_eq!(y.shape(), &[2, 3, 4, 4]);
/// // A constant input normalizes to β = 0.
/// assert!(y.data().iter().all(|v| v.abs() < 1e-3));
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    training: bool,
    #[serde(skip)]
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    shape: [usize; 4],
    x_hat: Vec<f32>,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// New batch norm for `channels` feature maps (`γ = 1`, `β = 0`,
    /// `eps = 1e-5`, running-stat momentum 0.1), in training mode.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be non-zero");
        BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            training: true,
            cache: None,
        }
    }

    /// Switch between batch statistics (training) and running
    /// statistics (eval).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the layer uses batch statistics.
    #[must_use]
    pub fn is_training(&self) -> bool {
        self.training
    }
}

impl Layer for BatchNorm2d {
    #[allow(clippy::needless_range_loop)] // ch indexes four parallel per-channel arrays
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "BatchNorm2d expects [N, C, H, W]");
        let [n, c, h, w] = [s[0], s[1], s[2], s[3]];
        assert_eq!(c, self.channels, "BatchNorm2d expects {} channels", self.channels);
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut out = Tensor::zeros(s);
        let mut x_hat = vec![0.0f32; input.numel()];
        let mut inv_stds = vec![0.0f32; c];
        for ch in 0..c {
            let (mean, var) = if self.training {
                let mut mean = 0.0f32;
                for i in 0..n {
                    let base = (i * c + ch) * plane;
                    mean += input.data()[base..base + plane].iter().sum::<f32>();
                }
                mean /= count;
                let mut var = 0.0f32;
                for i in 0..n {
                    let base = (i * c + ch) * plane;
                    var += input.data()[base..base + plane]
                        .iter()
                        .map(|&v| (v - mean) * (v - mean))
                        .sum::<f32>();
                }
                var /= count;
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ch] = inv_std;
            let g = self.gamma.value.data()[ch];
            let b = self.beta.value.data()[ch];
            for i in 0..n {
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    let xh = (input.data()[base + j] - mean) * inv_std;
                    x_hat[base + j] = xh;
                    out.data_mut()[base + j] = g * xh + b;
                }
            }
        }
        self.cache = Some(BnCache { shape: [n, c, h, w], x_hat, inv_std: inv_stds });
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let [n, c, h, w] = cache.shape;
        assert_eq!(grad_output.shape(), &[n, c, h, w], "bad grad shape for BatchNorm2d");
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut grad_input = Tensor::zeros(&[n, c, h, w]);
        let go = grad_output.data();
        for ch in 0..c {
            // Accumulate dγ, dβ and the two batch-coupling sums.
            let mut dgamma = 0.0f32;
            let mut dbeta = 0.0f32;
            for i in 0..n {
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    dgamma += go[base + j] * cache.x_hat[base + j];
                    dbeta += go[base + j];
                }
            }
            self.gamma.grad.data_mut()[ch] += dgamma;
            self.beta.grad.data_mut()[ch] += dbeta;

            if !self.training {
                // Eval mode: statistics are constants.
                let scale = self.gamma.value.data()[ch] * cache.inv_std[ch];
                for i in 0..n {
                    let base = (i * c + ch) * plane;
                    for j in 0..plane {
                        grad_input.data_mut()[base + j] = go[base + j] * scale;
                    }
                }
                continue;
            }
            // Training mode: the full batch-norm backward.
            let g = self.gamma.value.data()[ch];
            let inv_std = cache.inv_std[ch];
            for i in 0..n {
                let base = (i * c + ch) * plane;
                for j in 0..plane {
                    let term = count * go[base + j] - dbeta - cache.x_hat[base + j] * dgamma;
                    grad_input.data_mut()[base + j] = g * inv_std / count * term;
                }
            }
        }
        grad_input
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::loss::mse;

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[4, 2, 5, 5], 3.0, &mut rng).map(|v| v + 7.0);
        let y = bn.forward(&x);
        // Per-channel output stats: mean ~0, var ~1.
        let plane = 25;
        for ch in 0..2 {
            let mut values = Vec::new();
            for i in 0..4 {
                let base = (i * 2 + ch) * plane;
                values.extend_from_slice(&y.data()[base..base + plane]);
            }
            let mean = values.iter().sum::<f32>() / values.len() as f32;
            let var =
                values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / values.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ch} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ch} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = StdRng::seed_from_u64(1);
        // Warm up running stats on data centred at 10.
        for _ in 0..50 {
            let x = Tensor::randn(&[8, 1, 4, 4], 1.0, &mut rng).map(|v| v + 10.0);
            let _ = bn.forward(&x);
        }
        bn.set_training(false);
        let x = Tensor::full(&[1, 1, 4, 4], 10.0);
        let y = bn.forward(&x);
        // 10 is the running mean, so output should be ≈ 0.
        assert!(y.max_abs() < 0.3, "eval normalization off: {}", y.max_abs());
    }

    #[test]
    fn gradient_check_training_mode() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn(&[2, 2, 3, 3], 1.0, &mut rng);
        let target = Tensor::randn(&[2, 2, 3, 3], 1.0, &mut rng);
        let y = bn.forward(&x);
        let (_, grad) = mse(&y, &target);
        bn.zero_grad();
        let gi = bn.backward(&grad);
        let eps = 1e-2f32;
        for idx in [0usize, 7, 20, 35] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let (lp, _) = mse(&bn.forward(&xp), &target);
            let (lm, _) = mse(&bn.forward(&xm), &target);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gi.data()[idx]).abs() < 2e-2,
                "bn grad mismatch at {idx}: {numeric} vs {}",
                gi.data()[idx]
            );
        }
    }

    #[test]
    fn params_are_gamma_beta() {
        let mut bn = BatchNorm2d::new(5);
        assert_eq!(bn.param_count(), 10);
    }
}
