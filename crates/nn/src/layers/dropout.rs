use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{Layer, Tensor};

/// Inverted dropout: during training, each activation is zeroed with
/// probability `p` and survivors are scaled by `1 / (1 − p)` so the
/// expected activation is unchanged; in eval mode the layer is the
/// identity.
///
/// The layer owns its RNG (seeded at construction) so training runs
/// stay reproducible.
///
/// # Example
///
/// ```
/// use nn::{layers::Dropout, Layer, Tensor};
///
/// let mut drop = Dropout::new(0.5, 1);
/// drop.set_training(false);
/// let x = Tensor::full(&[4], 2.0);
/// assert_eq!(drop.forward(&x), x); // identity in eval mode
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Dropout {
    p: f32,
    training: bool,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
    #[serde(skip)]
    mask: Option<Vec<f32>>,
}

fn default_rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

impl Dropout {
    /// New dropout layer with drop probability `p`, in training mode.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    #[must_use]
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Dropout { p, training: true, rng: StdRng::seed_from_u64(seed), mask: None }
    }

    /// Switch between training (random masking) and eval (identity).
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Whether the layer is in training mode.
    #[must_use]
    pub fn is_training(&self) -> bool {
        self.training
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..input.numel())
            .map(|_| if self.rng.gen::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let data = input.data().iter().zip(&mask).map(|(&v, &m)| v * m).collect();
        self.mask = Some(mask);
        Tensor::from_vec(data, input.shape())
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        // Inverted dropout is the identity at inference time
        // regardless of the training flag.
        input.clone()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_output.clone(),
            Some(mask) => {
                assert_eq!(grad_output.numel(), mask.len(), "bad grad shape for Dropout");
                let data = grad_output.data().iter().zip(mask).map(|(&g, &m)| g * m).collect();
                Tensor::from_vec(data, grad_output.shape())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut drop = Dropout::new(0.9, 0);
        drop.set_training(false);
        let x = Tensor::full(&[100], 1.0);
        assert_eq!(drop.forward(&x), x);
        assert!(!drop.is_training());
    }

    #[test]
    fn training_preserves_expectation() {
        let mut drop = Dropout::new(0.5, 1);
        let x = Tensor::full(&[10_000], 1.0);
        let y = drop.forward(&x);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "expectation drifted: {mean}");
        // Survivors are scaled by 2, dropped are 0.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut drop = Dropout::new(0.5, 2);
        let x = Tensor::full(&[1000], 1.0);
        let y = drop.forward(&x);
        let g = drop.backward(&Tensor::full(&[1000], 1.0));
        // Gradient passes exactly where the forward did.
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(yv == &0.0, gv == &0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_even_training() {
        let mut drop = Dropout::new(0.0, 3);
        let x = Tensor::full(&[8], 3.0);
        assert_eq!(drop.forward(&x), x);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn p_one_rejected() {
        let _ = Dropout::new(1.0, 0);
    }
}
