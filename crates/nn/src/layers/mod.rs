//! Neural-network layers with manual backpropagation.
//!
//! All layers implement [`crate::Layer`]. Convolutional layers expect
//! 4-D `[batch, channels, height, width]` tensors; [`Linear`] expects
//! 2-D `[batch, features]`; [`Flatten`] bridges the two.

mod activation;
mod avgpool;
mod batchnorm;
mod conv;
mod convtranspose;
mod dropout;
mod linear;
mod pool;
mod shape;
mod upsample;

pub use activation::{stable_sigmoid, Relu, Sigmoid, Tanh};
pub use avgpool::AvgPool2d;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use convtranspose::ConvTranspose2d;
pub use dropout::Dropout;
pub use linear::Linear;
pub use pool::MaxPool2d;
pub use shape::Flatten;
pub use upsample::Upsample2d;
