use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::pool::{self, Shards};
use crate::{init, workspace, Layer, Param, Tensor};

/// Transposed ("de-") convolution.
///
/// Output spatial size is `(in − 1)·stride + kernel`. The forward pass
/// scatters each input element's contribution through the kernel into
/// the output window — exactly the adjoint of a strided convolution —
/// and the backward pass is the corresponding gather.
///
/// The paper's auto-encoder decoder uses "deconvolution and
/// upsampling" mirroring the encoder; this layer provides the
/// deconvolution half.
///
/// # Example
///
/// ```
/// use nn::{layers::ConvTranspose2d, Layer, Tensor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut deconv = ConvTranspose2d::new(4, 2, 2, 2, &mut rng);
/// let y = deconv.forward(&Tensor::zeros(&[1, 4, 8, 8]));
/// assert_eq!(y.shape(), &[1, 2, 16, 16]);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct ConvTranspose2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// Weight stored `[C_in, C_out, k, k]` flattened row-major.
    weight: Param,
    bias: Param,
    #[serde(skip)]
    cache: Option<DeconvCache>,
    #[serde(skip)]
    scratch: DeconvScratch,
}

#[derive(Debug)]
struct DeconvCache {
    input: Tensor,
    out_hw: (usize, usize),
}

/// Per-layer training workspace (see [`crate::workspace`]), excluded
/// from serialization.
#[derive(Debug, Default)]
struct DeconvScratch {
    /// Per-sample weight-gradient partials, `[N, C_in·C_out·k·k]`.
    dw_partials: Vec<f32>,
    /// Per-sample bias-gradient partials, `[N, C_out]`.
    db_partials: Vec<f32>,
}

impl ConvTranspose2d {
    /// New transposed convolution with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "deconv dims must be non-zero"
        );
        let fan_in = in_channels * kernel * kernel;
        let weight =
            Param::new(init::he(&[in_channels, out_channels, kernel, kernel], fan_in, rng));
        let bias = Param::new(Tensor::zeros(&[out_channels]));
        ConvTranspose2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            weight,
            bias,
            cache: None,
            scratch: DeconvScratch::default(),
        }
    }

    /// Output spatial size for an `h x w` input.
    #[must_use]
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        ((h - 1) * self.stride + self.kernel, (w - 1) * self.stride + self.kernel)
    }

    fn w_at(&self, ci: usize, co: usize, ky: usize, kx: usize) -> f32 {
        let k = self.kernel;
        self.weight.value.data()[((ci * self.out_channels + co) * k + ky) * k + kx]
    }
}

impl Layer for ConvTranspose2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "ConvTranspose2d expects [N, C, H, W]");
        let [n, c, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        assert_eq!(c, self.in_channels, "expects {} input channels", self.in_channels);
        let (oh, ow) = self.output_hw(h, w);
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let k = self.kernel;
        let s = self.stride;
        let src = input.data();
        let out_size = self.out_channels * oh * ow;
        {
            // One pool chunk per sample, scattering into its own
            // disjoint output shard.
            let out_shards = Shards::new(out.data_mut(), out_size);
            let this = &*self;
            pool::parallel_for(n, |i| {
                let dst_sample = out_shards.claim(i);
                for co in 0..this.out_channels {
                    let dst_plane = &mut dst_sample[co * oh * ow..][..oh * ow];
                    let b = this.bias.value.data()[co];
                    dst_plane.iter_mut().for_each(|v| *v = b);
                    for ci in 0..this.in_channels {
                        let src_plane = &src[(i * this.in_channels + ci) * h * w..][..h * w];
                        for iy in 0..h {
                            for ix in 0..w {
                                let v = src_plane[iy * w + ix];
                                if v == 0.0 {
                                    continue;
                                }
                                for ky in 0..k {
                                    let oy = iy * s + ky;
                                    for kx in 0..k {
                                        let ox = ix * s + kx;
                                        dst_plane[oy * ow + ox] += v * this.w_at(ci, co, ky, kx);
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
        // Reuse the previous cache's (or parked) input tensor so
        // steady-state training does not clone a fresh copy per batch.
        let cached_input = match self.cache.take().map(|prev| prev.input) {
            Some(mut t) => {
                t.refill_from(input);
                t
            }
            None => input.clone(),
        };
        self.cache = Some(DeconvCache { input: cached_input, out_hw: (oh, ow) });
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let input = &cache.input;
        let shape = input.shape();
        let [n, c, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        let (oh, ow) = cache.out_hw;
        assert_eq!(
            grad_output.shape(),
            &[n, self.out_channels, oh, ow],
            "bad grad shape for ConvTranspose2d"
        );
        let k = self.kernel;
        let s = self.stride;
        let c_out = self.out_channels;
        let w_len = self.weight.grad.numel();
        let mut grad_input = Tensor::zeros(&[n, c, h, w]);
        let go = grad_output.data();
        let src = input.data();

        // Per-sample weight/bias gradient partials, reduced serially in
        // sample order below so the result is independent of how the
        // pool schedules samples across threads. The input gradient is
        // naturally per-sample (disjoint shards).
        let mut dw_vec = std::mem::take(&mut self.scratch.dw_partials);
        let mut db_vec = std::mem::take(&mut self.scratch.db_partials);
        // Both must be zeroed: the weight shard accumulates with `+=`
        // and the reduction below reads every slot.
        workspace::reserve_f32(&mut dw_vec, n * w_len).fill(0.0);
        workspace::reserve_f32(&mut db_vec, n * c_out).fill(0.0);
        {
            let dw_shards = Shards::new(&mut dw_vec[..n * w_len], w_len);
            let db_shards = Shards::new(&mut db_vec[..n * c_out], c_out);
            let gi_shards = Shards::new(grad_input.data_mut(), c * h * w);
            let this = &*self;
            pool::parallel_for(n, |i| {
                // Bias gradient: sum of output gradients per channel.
                let db_i = db_shards.claim(i);
                for (co, slot) in db_i.iter_mut().enumerate() {
                    let plane = &go[(i * c_out + co) * oh * ow..][..oh * ow];
                    *slot = plane.iter().sum::<f32>();
                }
                // Input and weight gradients (gather form of the scatter).
                let wgrad = dw_shards.claim(i);
                let gi_sample = gi_shards.claim(i);
                for ci in 0..this.in_channels {
                    let src_plane = &src[(i * this.in_channels + ci) * h * w..][..h * w];
                    let gi_plane = &mut gi_sample[ci * h * w..][..h * w];
                    for co in 0..c_out {
                        let go_plane = &go[(i * c_out + co) * oh * ow..][..oh * ow];
                        for iy in 0..h {
                            for ix in 0..w {
                                let x_v = src_plane[iy * w + ix];
                                let mut acc = 0.0f32;
                                for ky in 0..k {
                                    let oy = iy * s + ky;
                                    for kx in 0..k {
                                        let ox = ix * s + kx;
                                        let g = go_plane[oy * ow + ox];
                                        acc += g * this.w_at(ci, co, ky, kx);
                                        wgrad[((ci * c_out + co) * k + ky) * k + kx] += g * x_v;
                                    }
                                }
                                gi_plane[iy * w + ix] += acc;
                            }
                        }
                    }
                }
            });
        }
        for i in 0..n {
            let db_i = &db_vec[i * c_out..(i + 1) * c_out];
            for (dst, &src) in self.bias.grad.data_mut().iter_mut().zip(db_i) {
                *dst += src;
            }
            let dw_i = &dw_vec[i * w_len..(i + 1) * w_len];
            for (dst, &src) in self.weight.grad.data_mut().iter_mut().zip(dw_i) {
                *dst += src;
            }
        }
        self.scratch.dw_partials = dw_vec;
        self.scratch.db_partials = db_vec;
        grad_input
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::loss::mse;

    #[test]
    fn output_size_formula() {
        let mut rng = StdRng::seed_from_u64(0);
        let deconv = ConvTranspose2d::new(1, 1, 3, 2, &mut rng);
        assert_eq!(deconv.output_hw(4, 4), (9, 9));
        let deconv2 = ConvTranspose2d::new(1, 1, 2, 2, &mut rng);
        assert_eq!(deconv2.output_hw(4, 4), (8, 8));
    }

    #[test]
    fn unit_kernel_scatter_known_answer() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut deconv = ConvTranspose2d::new(1, 1, 2, 2, &mut rng);
        // Kernel of all ones, bias zero -> each input pixel paints a
        // 2x2 block of its value.
        deconv.visit_params(&mut |p| p.value.fill(0.0));
        let mut i = 0;
        deconv.visit_params(&mut |p| {
            if i == 0 {
                p.value.fill(1.0);
            }
            i += 1;
        });
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = deconv.forward(&x);
        #[rustfmt::skip]
        let expect = vec![
            1.0, 1.0, 2.0, 2.0,
            1.0, 1.0, 2.0, 2.0,
            3.0, 3.0, 4.0, 4.0,
            3.0, 3.0, 4.0, 4.0,
        ];
        assert_eq!(y.data(), expect.as_slice());
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut deconv = ConvTranspose2d::new(2, 2, 2, 2, &mut rng);
        let x = Tensor::randn(&[1, 2, 3, 3], 1.0, &mut rng);
        let y = deconv.forward(&x);
        let target = Tensor::randn(y.shape(), 1.0, &mut rng);
        let (_, grad) = mse(&y, &target);
        deconv.zero_grad();
        let grad_input = deconv.backward(&grad);

        let eps = 1e-2f32;
        for idx in [0usize, 5, 11, 17] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let (lp, _) = mse(&deconv.forward(&xp), &target);
            let (lm, _) = mse(&deconv.forward(&xm), &target);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_input.data()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "input grad mismatch at {idx}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn weight_gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut deconv = ConvTranspose2d::new(1, 1, 2, 2, &mut rng);
        let x = Tensor::randn(&[1, 1, 3, 3], 1.0, &mut rng);
        let y = deconv.forward(&x);
        let target = Tensor::randn(y.shape(), 1.0, &mut rng);
        let (_, grad) = mse(&y, &target);
        deconv.zero_grad();
        let _ = deconv.backward(&grad);

        let analytic = {
            let mut val = 0.0;
            let mut i = 0;
            deconv.visit_params(&mut |p| {
                if i == 0 {
                    val = p.grad.data()[2];
                }
                i += 1;
            });
            val
        };
        let eps = 1e-2f32;
        let perturb = |d: &mut ConvTranspose2d, delta: f32| {
            let mut i = 0;
            d.visit_params(&mut |p| {
                if i == 0 {
                    p.value.data_mut()[2] += delta;
                }
                i += 1;
            });
        };
        perturb(&mut deconv, eps);
        let (lp, _) = mse(&deconv.forward(&x), &target);
        perturb(&mut deconv, -2.0 * eps);
        let (lm, _) = mse(&deconv.forward(&x), &target);
        perturb(&mut deconv, eps);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - analytic).abs() < 2e-2, "weight grad: {numeric} vs {analytic}");
    }
}
