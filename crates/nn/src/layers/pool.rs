use serde::{Deserialize, Serialize};

use crate::{Layer, Tensor};

/// Max pooling with square window and stride equal to the window size
/// (the paper uses 2×2 after every convolution).
///
/// Trailing rows/columns that do not fill a complete window are
/// dropped (floor division), matching the common framework default.
///
/// # Example
///
/// ```
/// use nn::{layers::MaxPool2d, Layer, Tensor};
///
/// let mut pool = MaxPool2d::new(2);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
/// let y = pool.forward(&x);
/// assert_eq!(y.shape(), &[1, 1, 1, 1]);
/// assert_eq!(y.data(), &[4.0]);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct MaxPool2d {
    window: usize,
    #[serde(skip)]
    cache: Option<PoolCache>,
}

#[derive(Debug)]
struct PoolCache {
    input_shape: [usize; 4],
    /// Flat input index of the max element for each output element.
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// New pooling layer with `window x window` cells.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pooling window must be non-zero");
        MaxPool2d { window, cache: None }
    }

    /// Output spatial size for an `h x w` input.
    #[must_use]
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h / self.window, w / self.window)
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "MaxPool2d expects [N, C, H, W]");
        let [n, c, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        let (oh, ow) = self.output_hw(h, w);
        assert!(oh > 0 && ow > 0, "input {h}x{w} smaller than pooling window");
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let data = input.data();
        let out_data = out.data_mut();
        for nc in 0..n * c {
            let plane_base = nc * h * w;
            let out_base = nc * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..self.window {
                        let y = oy * self.window + dy;
                        for dx in 0..self.window {
                            let x = ox * self.window + dx;
                            let idx = plane_base + y * w + x;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out_data[out_base + oy * ow + ox] = best;
                    argmax[out_base + oy * ow + ox] = best_idx;
                }
            }
        }
        self.cache = Some(PoolCache { input_shape: [n, c, h, w], argmax });
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "MaxPool2d expects [N, C, H, W]");
        let [n, c, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        let (oh, ow) = self.output_hw(h, w);
        assert!(oh > 0 && ow > 0, "input {h}x{w} smaller than pooling window");
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let data = input.data();
        let out_data = out.data_mut();
        if self.window == 2 {
            // The paper's only pooling shape: branch-free max-of-four
            // over adjacent row pairs (same value as the scan below —
            // the inputs are finite, so max order does not matter).
            for nc in 0..n * c {
                let plane_base = nc * h * w;
                let out_base = nc * oh * ow;
                for oy in 0..oh {
                    let top = &data[plane_base + 2 * oy * w..][..w];
                    let bot = &data[plane_base + (2 * oy + 1) * w..][..w];
                    let out_row = &mut out_data[out_base + oy * ow..][..ow];
                    for (ox, o) in out_row.iter_mut().enumerate() {
                        let x = 2 * ox;
                        *o = top[x].max(top[x + 1]).max(bot[x]).max(bot[x + 1]);
                    }
                }
            }
            return out;
        }
        for nc in 0..n * c {
            let plane_base = nc * h * w;
            let out_base = nc * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for dy in 0..self.window {
                        let y = oy * self.window + dy;
                        let row = &data[plane_base + y * w..plane_base + (y + 1) * w];
                        for dx in 0..self.window {
                            let v = row[ox * self.window + dx];
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    out_data[out_base + oy * ow + ox] = best;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let [n, c, h, w] = cache.input_shape;
        assert_eq!(grad_output.numel(), cache.argmax.len(), "bad grad shape for MaxPool2d");
        let mut grad_input = Tensor::zeros(&[n, c, h, w]);
        let gi = grad_input.data_mut();
        for (&src, &g) in cache.argmax.iter().zip(grad_output.data()) {
            gi[src] += g;
        }
        grad_input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maxima() {
        let mut pool = MaxPool2d::new(2);
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![
            1.0, 5.0,  2.0, 0.0,
            3.0, 4.0,  1.0, 8.0,
            0.0, 0.0,  7.0, 1.0,
            2.0, 1.0,  0.0, 3.0,
        ], &[1, 1, 4, 4]);
        let y = pool.forward(&x);
        assert_eq!(y.data(), &[5.0, 8.0, 2.0, 7.0]);
    }

    #[test]
    fn odd_trailing_edge_is_dropped() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 5, 7]);
        let y = pool.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 3]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![
            1.0, 5.0,
            3.0, 4.0,
        ], &[1, 1, 2, 2]);
        let _ = pool.forward(&x);
        let grad = Tensor::from_vec(vec![2.5], &[1, 1, 1, 1]);
        let gi = pool.backward(&grad);
        assert_eq!(gi.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn ties_route_to_first_maximum() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![7.0, 7.0, 7.0, 7.0], &[1, 1, 2, 2]);
        let _ = pool.forward(&x);
        let gi = pool.backward(&Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]));
        assert_eq!(gi.data(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn multichannel_planes_pool_independently() {
        let mut pool = MaxPool2d::new(2);
        let mut data = vec![0.0; 2 * 4];
        data[0] = 9.0; // channel 0 max
        data[7] = 4.0; // channel 1 max
        let x = Tensor::from_vec(data, &[1, 2, 2, 2]);
        let y = pool.forward(&x);
        assert_eq!(y.data(), &[9.0, 4.0]);
    }
}
