use serde::{Deserialize, Serialize};

use crate::{Layer, Tensor};

/// Average pooling with square window and stride equal to the window
/// size. Complements [`crate::layers::MaxPool2d`]; useful for
/// ablations of the pooling choice in the Table I architecture.
///
/// # Example
///
/// ```
/// use nn::{layers::AvgPool2d, Layer, Tensor};
///
/// let mut pool = AvgPool2d::new(2);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
/// assert_eq!(pool.forward(&x).data(), &[2.5]);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct AvgPool2d {
    window: usize,
    #[serde(skip)]
    input_shape: Option<[usize; 4]>,
}

impl AvgPool2d {
    /// New average-pooling layer with `window x window` cells.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pooling window must be non-zero");
        AvgPool2d { window, input_shape: None }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "AvgPool2d expects [N, C, H, W]");
        let [n, c, h, w] = [s[0], s[1], s[2], s[3]];
        let k = self.window;
        let (oh, ow) = (h / k, w / k);
        assert!(oh > 0 && ow > 0, "input {h}x{w} smaller than pooling window");
        let norm = 1.0 / (k * k) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let src = input.data();
        let dst = out.data_mut();
        for nc in 0..n * c {
            let plane = &src[nc * h * w..(nc + 1) * h * w];
            let out_plane = &mut dst[nc * oh * ow..(nc + 1) * oh * ow];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for dy in 0..k {
                        for dx in 0..k {
                            acc += plane[(oy * k + dy) * w + ox * k + dx];
                        }
                    }
                    out_plane[oy * ow + ox] = acc * norm;
                }
            }
        }
        self.input_shape = Some([n, c, h, w]);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let [n, c, h, w] = self.input_shape.expect("backward before forward");
        let k = self.window;
        let (oh, ow) = (h / k, w / k);
        assert_eq!(grad_output.shape(), &[n, c, oh, ow], "bad grad shape for AvgPool2d");
        let norm = 1.0 / (k * k) as f32;
        let mut grad_input = Tensor::zeros(&[n, c, h, w]);
        let go = grad_output.data();
        let gi = grad_input.data_mut();
        for nc in 0..n * c {
            let go_plane = &go[nc * oh * ow..(nc + 1) * oh * ow];
            let gi_plane = &mut gi[nc * h * w..(nc + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = go_plane[oy * ow + ox] * norm;
                    for dy in 0..k {
                        for dx in 0..k {
                            gi_plane[(oy * k + dy) * w + ox * k + dx] += g;
                        }
                    }
                }
            }
        }
        grad_input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_each_window() {
        let mut pool = AvgPool2d::new(2);
        #[rustfmt::skip]
        let x = Tensor::from_vec(vec![
            0.0, 4.0,  1.0, 1.0,
            0.0, 0.0,  1.0, 1.0,
            8.0, 0.0,  2.0, 2.0,
            0.0, 0.0,  2.0, 2.0,
        ], &[1, 1, 4, 4]);
        assert_eq!(pool.forward(&x).data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn backward_spreads_gradient_uniformly() {
        let mut pool = AvgPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = pool.forward(&x);
        let gi = pool.backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]));
        assert_eq!(gi.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn sum_is_preserved_through_backward() {
        let mut pool = AvgPool2d::new(3);
        let x = Tensor::zeros(&[1, 2, 6, 6]);
        let _ = pool.forward(&x);
        let grad = Tensor::full(&[1, 2, 2, 2], 9.0);
        let gi = pool.backward(&grad);
        assert!((gi.sum() - grad.sum()).abs() < 1e-4);
    }
}
