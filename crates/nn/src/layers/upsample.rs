use serde::{Deserialize, Serialize};

use crate::{Layer, Tensor};

/// Nearest-neighbour upsampling by an integer factor.
///
/// The auto-encoder decoder mirrors the encoder's 2×2 max-pool with a
/// factor-2 upsample (the paper replaces "maxpooling" with
/// "upsampling" in the mirrored decoder).
///
/// # Example
///
/// ```
/// use nn::{layers::Upsample2d, Layer, Tensor};
///
/// let mut up = Upsample2d::new(2);
/// let y = up.forward(&Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]));
/// assert_eq!(y.shape(), &[1, 1, 2, 2]);
/// assert_eq!(y.data(), &[1.0, 1.0, 1.0, 1.0]);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Upsample2d {
    factor: usize,
    #[serde(skip)]
    input_shape: Option<[usize; 4]>,
}

impl Upsample2d {
    /// New upsampling layer with the given integer scale factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn new(factor: usize) -> Self {
        assert!(factor > 0, "upsample factor must be non-zero");
        Upsample2d { factor, input_shape: None }
    }
}

impl Layer for Upsample2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "Upsample2d expects [N, C, H, W]");
        let [n, c, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        let f = self.factor;
        let mut out = Tensor::zeros(&[n, c, h * f, w * f]);
        let src = input.data();
        let dst = out.data_mut();
        let (oh, ow) = (h * f, w * f);
        for nc in 0..n * c {
            let src_plane = &src[nc * h * w..(nc + 1) * h * w];
            let dst_plane = &mut dst[nc * oh * ow..(nc + 1) * oh * ow];
            for oy in 0..oh {
                let sy = oy / f;
                for ox in 0..ow {
                    dst_plane[oy * ow + ox] = src_plane[sy * w + ox / f];
                }
            }
        }
        self.input_shape = Some([n, c, h, w]);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let [n, c, h, w] = self.input_shape.expect("backward before forward");
        let f = self.factor;
        assert_eq!(grad_output.shape(), &[n, c, h * f, w * f], "bad grad shape for Upsample2d");
        let mut grad_input = Tensor::zeros(&[n, c, h, w]);
        let src = grad_output.data();
        let dst = grad_input.data_mut();
        let (oh, ow) = (h * f, w * f);
        for nc in 0..n * c {
            let src_plane = &src[nc * oh * ow..(nc + 1) * oh * ow];
            let dst_plane = &mut dst[nc * h * w..(nc + 1) * h * w];
            for oy in 0..oh {
                let sy = oy / f;
                for ox in 0..ow {
                    dst_plane[sy * w + ox / f] += src_plane[oy * ow + ox];
                }
            }
        }
        grad_input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsample_replicates_pixels() {
        let mut up = Upsample2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = up.forward(&x);
        #[rustfmt::skip]
        let expect = vec![
            1.0, 1.0, 2.0, 2.0,
            1.0, 1.0, 2.0, 2.0,
            3.0, 3.0, 4.0, 4.0,
            3.0, 3.0, 4.0, 4.0,
        ];
        assert_eq!(y.data(), expect.as_slice());
    }

    #[test]
    fn backward_sums_window_gradients() {
        let mut up = Upsample2d::new(2);
        let x = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        let _ = up.forward(&x);
        let g = up.backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]));
        assert_eq!(g.data(), &[10.0]);
    }

    #[test]
    fn factor_one_is_identity() {
        let mut up = Upsample2d::new(1);
        let x = Tensor::from_vec(vec![5.0, 6.0], &[1, 1, 1, 2]);
        let y = up.forward(&x);
        assert_eq!(y.data(), x.data());
    }
}
