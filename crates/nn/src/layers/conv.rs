use std::cell::RefCell;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::gemm::{sgemm, sgemm_nt, sgemm_tn};
use crate::pool::{self, Shards};
use crate::{init, workspace, Layer, Param, Tensor};

/// 2-D convolution (stride 1) via im2col + GEMM.
///
/// Input `[N, C_in, H, W]`, output `[N, C_out, H_out, W_out]` with
/// `H_out = H + 2·pad − k + 1`. The paper's CNN uses "same"-style
/// padding so that only the 2×2 max-pool steps shrink the feature
/// maps; [`Conv2d::same`] picks `pad = k / 2` for odd kernels.
///
/// # Example
///
/// ```
/// use nn::{layers::Conv2d, Layer, Tensor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::same(1, 8, 5, &mut rng);
/// let y = conv.forward(&Tensor::zeros(&[2, 1, 16, 16]));
/// assert_eq!(y.shape(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    pad: usize,
    /// Weight stored `[C_out, C_in * k * k]` for direct GEMM use.
    weight: Param,
    bias: Param,
    #[serde(skip)]
    cache: Option<ConvCache>,
    #[serde(skip)]
    scratch: ConvScratch,
}

thread_local! {
    /// Reusable im2col buffer for [`Conv2d::infer`]. One per thread:
    /// pool workers are persistent, so after warm-up the serving path
    /// performs no per-call allocation. `im2col` overwrites every
    /// element (padding included), so the buffer never needs zeroing.
    static COL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Reusable `dcol` buffer for [`Conv2d::backward`]'s per-sample
    /// input-gradient GEMM. Per thread, like [`COL_SCRATCH`]: samples
    /// fan out across pool workers, and each worker zero-fills the
    /// buffer before the accumulate-GEMM (a memory touch, not an
    /// allocation).
    static DCOL_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

#[derive(Debug)]
struct ConvCache {
    input_shape: [usize; 4],
    out_hw: (usize, usize),
    /// im2col buffers, one `[C_in·k·k, H_out·W_out]` block per sample.
    /// Owned by the cache between `forward` and `backward`; reclaimed
    /// into [`ConvScratch::cols`] by the next `forward`, so steady-state
    /// training re-uses one warm buffer instead of allocating per batch.
    cols: Vec<f32>,
}

/// Per-layer training workspace, grown once to the largest batch shape
/// seen (see [`crate::workspace`]) and excluded from serialization.
#[derive(Debug, Default)]
struct ConvScratch {
    /// Parked im2col buffer (moves into [`ConvCache::cols`] during the
    /// forward→backward window).
    cols: Vec<f32>,
    /// Per-sample weight-gradient partials, `[N, C_out·C_in·k·k]`.
    dw_partials: Vec<f32>,
    /// Per-sample bias-gradient partials, `[N, C_out]`.
    db_partials: Vec<f32>,
}

impl Conv2d {
    /// New convolution with explicit padding and He-initialized
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && kernel > 0, "conv dims must be non-zero");
        let fan_in = in_channels * kernel * kernel;
        let weight = Param::new(init::he(&[out_channels, fan_in], fan_in, rng));
        let bias = Param::new(Tensor::zeros(&[out_channels]));
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            pad,
            weight,
            bias,
            cache: None,
            scratch: ConvScratch::default(),
        }
    }

    /// Convolution with "same" padding (`pad = kernel / 2`), so odd
    /// kernels preserve spatial dimensions.
    #[must_use]
    pub fn same<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        Conv2d::new(in_channels, out_channels, kernel, kernel / 2, rng)
    }

    /// Output spatial size for an input of `h x w`.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    #[must_use]
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh =
            (h + 2 * self.pad).checked_sub(self.kernel - 1).expect("input smaller than kernel");
        let ow =
            (w + 2 * self.pad).checked_sub(self.kernel - 1).expect("input smaller than kernel");
        (oh, ow)
    }

    /// Number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Unfold one sample `[C_in, H, W]` into `col [C_in·k·k, OH·OW]`.
    fn im2col(&self, sample: &[f32], h: usize, w: usize, col: &mut [f32]) {
        let (oh, ow) = self.output_hw(h, w);
        let k = self.kernel;
        let pad = self.pad as isize;
        let mut row = 0usize;
        for c in 0..self.in_channels {
            let plane = &sample[c * h * w..(c + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let dst = &mut col[row * oh * ow..(row + 1) * oh * ow];
                    for oy in 0..oh {
                        let sy = oy as isize + ky as isize - pad;
                        let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
                        if sy < 0 || sy >= h as isize {
                            dst_row.iter_mut().for_each(|v| *v = 0.0);
                            continue;
                        }
                        let src_row = &plane[(sy as usize) * w..(sy as usize + 1) * w];
                        for (ox, d) in dst_row.iter_mut().enumerate() {
                            let sx = ox as isize + kx as isize - pad;
                            *d =
                                if sx < 0 || sx >= w as isize { 0.0 } else { src_row[sx as usize] };
                        }
                    }
                    row += 1;
                }
            }
        }
    }

    /// Fold `col` gradients back onto a `[C_in, H, W]` input gradient.
    fn col2im(&self, col: &[f32], h: usize, w: usize, grad_sample: &mut [f32]) {
        let (oh, ow) = self.output_hw(h, w);
        let k = self.kernel;
        let pad = self.pad as isize;
        let mut row = 0usize;
        for c in 0..self.in_channels {
            let plane = &mut grad_sample[c * h * w..(c + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let src = &col[row * oh * ow..(row + 1) * oh * ow];
                    for oy in 0..oh {
                        let sy = oy as isize + ky as isize - pad;
                        if sy < 0 || sy >= h as isize {
                            continue;
                        }
                        let src_row = &src[oy * ow..(oy + 1) * ow];
                        let dst_row = &mut plane[(sy as usize) * w..(sy as usize + 1) * w];
                        for (ox, &g) in src_row.iter().enumerate() {
                            let sx = ox as isize + kx as isize - pad;
                            if sx >= 0 && sx < w as isize {
                                dst_row[sx as usize] += g;
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "Conv2d expects [N, C, H, W]");
        let [n, c, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        assert_eq!(c, self.in_channels, "Conv2d expects {} input channels", self.in_channels);
        let (oh, ow) = self.output_hw(h, w);
        let col_rows = self.col_rows();
        let col_size = col_rows * oh * ow;
        // Reclaim the warm im2col buffer (from the previous cache or
        // the parked scratch) instead of allocating per batch; `im2col`
        // overwrites every element, so no zeroing either.
        let mut cols = self
            .cache
            .take()
            .map(|prev| prev.cols)
            .unwrap_or_else(|| std::mem::take(&mut self.scratch.cols));
        workspace::reserve_f32(&mut cols, n * col_size);
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let out_plane = self.out_channels * oh * ow;
        if oh * ow > 0 {
            // One chunk per sample: im2col buffers and output planes
            // are disjoint per-sample shards, so the batch fans out
            // across the worker pool with no cross-sample state.
            let input_data = input.data();
            let col_shards = Shards::new(&mut cols[..n * col_size], col_size);
            let out_shards = Shards::new(out.data_mut(), out_plane);
            let this = &*self;
            pool::parallel_for(n, |i| {
                let sample = &input_data[i * c * h * w..(i + 1) * c * h * w];
                let col = col_shards.claim(i);
                this.im2col(sample, h, w, col);
                let out_n = out_shards.claim(i);
                // out_n [C_out, OH·OW] = W [C_out, CKK] · col [CKK, OH·OW]
                sgemm(this.out_channels, col_rows, oh * ow, this.weight.value.data(), col, out_n);
                for (co, chunk) in out_n.chunks_exact_mut(oh * ow).enumerate() {
                    let b = this.bias.value.data()[co];
                    chunk.iter_mut().for_each(|v| *v += b);
                }
            });
        }
        self.cache = Some(ConvCache { input_shape: [n, c, h, w], out_hw: (oh, ow), cols });
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "Conv2d expects [N, C, H, W]");
        let [n, c, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        assert_eq!(c, self.in_channels, "Conv2d expects {} input channels", self.in_channels);
        let (oh, ow) = self.output_hw(h, w);
        let col_rows = self.col_rows();
        let col_size = col_rows * oh * ow;
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        if oh * ow > 0 {
            let input_data = input.data();
            let out_data = out.data_mut();
            let out_plane = self.out_channels * oh * ow;
            COL_SCRATCH.with(|cell| {
                let mut col = cell.borrow_mut();
                workspace::reserve_f32(&mut col, col_size);
                for i in 0..n {
                    let sample = &input_data[i * c * h * w..(i + 1) * c * h * w];
                    self.im2col(sample, h, w, &mut col[..col_size]);
                    let out_n = &mut out_data[i * out_plane..(i + 1) * out_plane];
                    sgemm(
                        self.out_channels,
                        col_rows,
                        oh * ow,
                        self.weight.value.data(),
                        &col[..col_size],
                        out_n,
                    );
                    for (co, chunk) in out_n.chunks_exact_mut(oh * ow).enumerate() {
                        let b = self.bias.value.data()[co];
                        chunk.iter_mut().for_each(|v| *v += b);
                    }
                }
            });
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let [n, c, h, w] = cache.input_shape;
        let (oh, ow) = cache.out_hw;
        assert_eq!(
            grad_output.shape(),
            &[n, self.out_channels, oh, ow],
            "bad grad shape for Conv2d"
        );
        let col_rows = self.col_rows();
        let col_size = col_rows * oh * ow;
        let out_plane = self.out_channels * oh * ow;
        let c_out = self.out_channels;
        let w_len = self.weight.grad.numel();
        let mut grad_input = Tensor::zeros(&[n, c, h, w]);
        // Per-sample weight/bias gradient partials, reduced serially in
        // sample order below so the result is independent of how the
        // pool schedules samples across threads. The buffers persist in
        // the layer scratch; zero-filling them (the GEMM accumulates)
        // touches memory but allocates nothing after the first batch.
        let mut dw_vec = std::mem::take(&mut self.scratch.dw_partials);
        let mut db_vec = std::mem::take(&mut self.scratch.db_partials);
        workspace::reserve_f32(&mut dw_vec, n * w_len).fill(0.0);
        workspace::reserve_f32(&mut db_vec, n * c_out).fill(0.0);
        if oh * ow > 0 {
            let dout = grad_output.data();
            let cols = &cache.cols;
            let dw_shards = Shards::new(&mut dw_vec[..n * w_len], w_len);
            let db_shards = Shards::new(&mut db_vec[..n * c_out], c_out);
            let gi_shards = Shards::new(grad_input.data_mut(), c * h * w);
            let this = &*self;
            pool::parallel_for(n, |i| {
                let dout_n = &dout[i * out_plane..(i + 1) * out_plane];
                let col = &cols[i * col_size..(i + 1) * col_size];
                // dW_i [C_out, CKK] = dOut_i [C_out, OH·OW] · col_iᵀ
                sgemm_nt(c_out, oh * ow, col_rows, dout_n, col, dw_shards.claim(i));
                // db_i[co] = Σ dOut_i[co, :]
                let db_i = db_shards.claim(i);
                for (co, chunk) in dout_n.chunks_exact(oh * ow).enumerate() {
                    db_i[co] = chunk.iter().sum::<f32>();
                }
                // dcol [CKK, OH·OW] = Wᵀ · dOut_i
                DCOL_SCRATCH.with(|cell| {
                    let mut buf = cell.borrow_mut();
                    let dcol = workspace::reserve_f32(&mut buf, col_size);
                    dcol.fill(0.0);
                    sgemm_tn(col_rows, c_out, oh * ow, this.weight.value.data(), dout_n, dcol);
                    this.col2im(dcol, h, w, gi_shards.claim(i));
                });
            });
        }
        for i in 0..n {
            let dw_i = &dw_vec[i * w_len..(i + 1) * w_len];
            for (dst, &src) in self.weight.grad.data_mut().iter_mut().zip(dw_i) {
                *dst += src;
            }
            let db_i = &db_vec[i * c_out..(i + 1) * c_out];
            for (dst, &src) in self.bias.grad.data_mut().iter_mut().zip(db_i) {
                *dst += src;
            }
        }
        self.scratch.dw_partials = dw_vec;
        self.scratch.db_partials = db_vec;
        grad_input
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::loss::mse;

    #[test]
    fn same_padding_preserves_spatial_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::same(2, 3, 3, &mut rng);
        let y = conv.forward(&Tensor::zeros(&[1, 2, 7, 9]));
        assert_eq!(y.shape(), &[1, 3, 7, 9]);
    }

    #[test]
    fn valid_convolution_known_answer() {
        let mut rng = StdRng::seed_from_u64(1);
        // 1x1 kernel with weight 2, bias 1: y = 2x + 1.
        let mut conv = Conv2d::new(1, 1, 1, 0, &mut rng);
        conv.visit_params(&mut |p| p.value.fill(0.0));
        let mut i = 0;
        conv.visit_params(&mut |p| {
            if i == 0 {
                p.value.fill(2.0);
            } else {
                p.value.fill(1.0);
            }
            i += 1;
        });
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn edge_detector_kernel() {
        let mut rng = StdRng::seed_from_u64(2);
        // Horizontal difference kernel [-1, 1] as a 1x2... use 3x3 with
        // only two taps set.
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut rng);
        conv.visit_params(&mut |p| p.value.fill(0.0));
        let mut i = 0;
        conv.visit_params(&mut |p| {
            if i == 0 {
                // Kernel layout row-major 3x3: set [1][0] = -1, [1][2] = 1.
                p.value.data_mut()[3] = -1.0;
                p.value.data_mut()[5] = 1.0;
            }
            i += 1;
        });
        // A vertical step edge at x=2.
        let mut img = vec![0.0f32; 16];
        for y in 0..4 {
            img[y * 4 + 2] = 1.0;
            img[y * 4 + 3] = 1.0;
        }
        let x = Tensor::from_vec(img, &[1, 1, 4, 4]);
        let y = conv.forward(&x);
        // Positive response on the rising edge (x=1), negative on the
        // falling edge into the zero padding (x=3), none inside flat
        // regions (x=0 reads zero-padding on the left and a 0 pixel on
        // the right, so it is 0 as well; x=2 sees 1 on both sides).
        for row in 0..4 {
            assert_eq!(y.data()[row * 4], 0.0);
            assert_eq!(y.data()[row * 4 + 1], 1.0);
            assert_eq!(y.data()[row * 4 + 3], -1.0);
        }
    }

    #[test]
    fn gradient_check_input_and_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(2, 2, 3, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], 1.0, &mut rng);
        let target = Tensor::randn(&[1, 2, 5, 5], 1.0, &mut rng);

        let y = conv.forward(&x);
        let (_, grad) = mse(&y, &target);
        conv.zero_grad();
        let grad_input = conv.backward(&grad);

        let eps = 1e-2f32;
        for idx in [0usize, 7, 24, 49] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let (lp, _) = mse(&conv.forward(&xp), &target);
            let (lm, _) = mse(&conv.forward(&xm), &target);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_input.data()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "input grad mismatch at {idx}: {numeric} vs {analytic}"
            );
        }

        // Weight gradient check (first weight).
        let analytic_w = {
            let mut val = 0.0;
            let mut i = 0;
            conv.visit_params(&mut |p| {
                if i == 0 {
                    val = p.grad.data()[0];
                }
                i += 1;
            });
            val
        };
        let perturb = |conv: &mut Conv2d, delta: f32| {
            let mut i = 0;
            conv.visit_params(&mut |p| {
                if i == 0 {
                    p.value.data_mut()[0] += delta;
                }
                i += 1;
            });
        };
        perturb(&mut conv, eps);
        let (lp, _) = mse(&conv.forward(&x), &target);
        perturb(&mut conv, -2.0 * eps);
        let (lm, _) = mse(&conv.forward(&x), &target);
        perturb(&mut conv, eps);
        let numeric_w = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric_w - analytic_w).abs() < 2e-2,
            "weight grad mismatch: {numeric_w} vs {analytic_w}"
        );
    }

    #[test]
    fn batch_independence() {
        // Forward over a batch must equal forwards over singletons.
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::same(1, 4, 3, &mut rng);
        let a = Tensor::randn(&[1, 1, 6, 6], 1.0, &mut rng);
        let b = Tensor::randn(&[1, 1, 6, 6], 1.0, &mut rng);
        let mut batched = Vec::new();
        batched.extend_from_slice(a.data());
        batched.extend_from_slice(b.data());
        let both = conv.forward(&Tensor::from_vec(batched, &[2, 1, 6, 6]));
        let ya = conv.forward(&a);
        let yb = conv.forward(&b);
        let half = both.numel() / 2;
        for (x, y) in both.data()[..half].iter().zip(ya.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        for (x, y) in both.data()[half..].iter().zip(yb.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn param_count_matches_formula() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv2d::same(3, 16, 5, &mut rng);
        assert_eq!(conv.param_count(), 16 * 3 * 5 * 5 + 16);
    }
}
