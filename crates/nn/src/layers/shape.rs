use serde::{Deserialize, Serialize};

use crate::{Layer, Tensor};

/// Flatten `[N, ...]` to `[N, prod(...)]`, bridging convolutional and
/// fully-connected stages.
///
/// # Example
///
/// ```
/// use nn::{layers::Flatten, Layer, Tensor};
///
/// let mut flat = Flatten::new();
/// let y = flat.forward(&Tensor::zeros(&[2, 3, 4, 4]));
/// assert_eq!(y.shape(), &[2, 48]);
/// ```
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Flatten {
    #[serde(skip)]
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// New flatten layer.
    #[must_use]
    pub fn new() -> Self {
        Flatten { input_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert!(shape.len() >= 2, "Flatten expects at least [N, ...]");
        let n = shape[0];
        let rest: usize = shape[1..].iter().product();
        self.input_shape = Some(shape.to_vec());
        input.reshaped(&[n, rest])
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert!(shape.len() >= 2, "Flatten expects at least [N, ...]");
        input.reshaped(&[shape[0], shape[1..].iter().product()])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self.input_shape.as_ref().expect("backward before forward");
        grad_output.reshaped(shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_shape_and_data() {
        let mut flat = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let y = flat.forward(&x);
        assert_eq!(y.shape(), &[2, 12]);
        let back = flat.backward(&y);
        assert_eq!(back.shape(), x.shape());
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn already_flat_is_identity() {
        let mut flat = Flatten::new();
        let x = Tensor::zeros(&[5, 7]);
        let y = flat.forward(&x);
        assert_eq!(y.shape(), &[5, 7]);
    }
}
