use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::gemm::{sgemm, sgemm_nt, sgemm_tn};
use crate::{init, Layer, Param, Tensor};

/// Fully-connected layer: `y = x Wᵀ + b` with `W` stored `[out, in]`.
///
/// # Example
///
/// ```
/// use nn::{layers::Linear, Layer, Tensor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut fc = Linear::new(8, 4, &mut rng);
/// let y = fc.forward(&Tensor::zeros(&[2, 8]));
/// assert_eq!(y.shape(), &[2, 4]);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Linear {
    /// New layer with He-initialized weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        assert!(in_features > 0 && out_features > 0, "linear dims must be non-zero");
        let weight = Param::new(init::he(&[out_features, in_features], in_features, rng));
        let bias = Param::new(Tensor::zeros(&[out_features]));
        Linear { in_features, out_features, weight, bias, cached_input: None }
    }

    /// Input feature count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Linear expects [batch, features]");
        let batch = input.shape()[0];
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "Linear expects {} input features",
            self.in_features
        );
        let mut out = Tensor::zeros(&[batch, self.out_features]);
        // y[i,j] = Σ_p x[i,p] · W[j,p]  (W stored [out,in])
        sgemm_nt(
            batch,
            self.in_features,
            self.out_features,
            input.data(),
            self.weight.value.data(),
            out.data_mut(),
        );
        for row in out.data_mut().chunks_exact_mut(self.out_features) {
            for (o, b) in row.iter_mut().zip(self.bias.value.data()) {
                *o += b;
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Linear expects [batch, features]");
        let batch = input.shape()[0];
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "Linear expects {} input features",
            self.in_features
        );
        let mut out = Tensor::zeros(&[batch, self.out_features]);
        sgemm_nt(
            batch,
            self.in_features,
            self.out_features,
            input.data(),
            self.weight.value.data(),
            out.data_mut(),
        );
        for row in out.data_mut().chunks_exact_mut(self.out_features) {
            for (o, b) in row.iter_mut().zip(self.bias.value.data()) {
                *o += b;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let batch = input.shape()[0];
        assert_eq!(grad_output.shape(), &[batch, self.out_features], "bad grad shape");
        // dW[j,p] += Σ_i dY[i,j] · X[i,p]
        sgemm_tn(
            self.out_features,
            batch,
            self.in_features,
            grad_output.data(),
            input.data(),
            self.weight.grad.data_mut(),
        );
        // db[j] += Σ_i dY[i,j]
        for row in grad_output.data().chunks_exact(self.out_features) {
            for (g, d) in self.bias.grad.data_mut().iter_mut().zip(row) {
                *g += d;
            }
        }
        // dX[i,p] = Σ_j dY[i,j] · W[j,p]
        let mut grad_input = Tensor::zeros(&[batch, self.in_features]);
        sgemm(
            batch,
            self.out_features,
            self.in_features,
            grad_output.data(),
            self.weight.value.data(),
            grad_input.data_mut(),
        );
        grad_input
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::loss::mse;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut fc = Linear::new(3, 2, &mut rng);
        fc.bias.value.data_mut().copy_from_slice(&[1.0, -1.0]);
        let y = fc.forward(&Tensor::zeros(&[4, 3]));
        assert_eq!(y.shape(), &[4, 2]);
        // Zero input -> output equals bias.
        for row in y.data().chunks_exact(2) {
            assert_eq!(row, &[1.0, -1.0]);
        }
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut fc = Linear::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let target = Tensor::randn(&[2, 3], 1.0, &mut rng);

        let y = fc.forward(&x);
        let (_, grad) = mse(&y, &target);
        fc.zero_grad();
        let grad_input = fc.backward(&grad);

        let eps = 1e-3f32;
        // Check input gradient on a few coordinates.
        for idx in [0usize, 3, 5] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let (lp, _) = mse(&fc.forward(&xp), &target);
            let (lm, _) = mse(&fc.forward(&xm), &target);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_input.data()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "input grad mismatch at {idx}: {numeric} vs {analytic}"
            );
        }

        // Check a weight gradient coordinate.
        let analytic_w = {
            let mut val = 0.0;
            let mut i = 0;
            fc.visit_params(&mut |p| {
                if i == 0 {
                    val = p.grad.data()[1];
                }
                i += 1;
            });
            val
        };
        let perturb = |fc: &mut Linear, delta: f32| {
            let mut i = 0;
            fc.visit_params(&mut |p| {
                if i == 0 {
                    p.value.data_mut()[1] += delta;
                }
                i += 1;
            });
        };
        perturb(&mut fc, eps);
        let (lp, _) = mse(&fc.forward(&x), &target);
        perturb(&mut fc, -2.0 * eps);
        let (lm, _) = mse(&fc.forward(&x), &target);
        perturb(&mut fc, eps);
        let numeric_w = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric_w - analytic_w).abs() < 1e-2,
            "weight grad mismatch: {numeric_w} vs {analytic_w}"
        );
    }

    #[test]
    fn param_count_is_correct() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut fc = Linear::new(10, 5, &mut rng);
        assert_eq!(fc.param_count(), 10 * 5 + 5);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut fc = Linear::new(2, 2, &mut rng);
        let _ = fc.backward(&Tensor::zeros(&[1, 2]));
    }
}
