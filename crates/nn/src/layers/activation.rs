use serde::{Deserialize, Serialize};

use crate::{Layer, Tensor};

/// Rectified linear unit: `y = max(0, x)`, applied elementwise.
///
/// # Example
///
/// ```
/// use nn::{layers::Relu, Layer, Tensor};
///
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[2]));
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// New ReLU activation.
    #[must_use]
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mask: Vec<bool> = input.data().iter().map(|&v| v > 0.0).collect();
        let out = input.map(|v| v.max(0.0));
        self.mask = Some(mask);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before forward");
        assert_eq!(grad_output.numel(), mask.len(), "bad grad shape for Relu");
        let data =
            grad_output.data().iter().zip(mask).map(|(&g, &on)| if on { g } else { 0.0 }).collect();
        Tensor::from_vec(data, grad_output.shape())
    }
}

/// Logistic sigmoid: `y = 1 / (1 + e^{-x})`, applied elementwise.
///
/// Used by the selection head `g` (a single sigmoid neuron in the
/// paper's Fig. 2) and the auto-encoder output.
///
/// # Example
///
/// ```
/// use nn::{layers::Sigmoid, Layer, Tensor};
///
/// let mut s = Sigmoid::new();
/// let y = s.forward(&Tensor::from_vec(vec![0.0], &[1]));
/// assert_eq!(y.data(), &[0.5]);
/// ```
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Sigmoid {
    #[serde(skip)]
    output: Option<Tensor>,
}

impl Sigmoid {
    /// New sigmoid activation.
    #[must_use]
    pub fn new() -> Self {
        Sigmoid { output: None }
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(stable_sigmoid);
        self.output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(stable_sigmoid)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("backward before forward");
        assert_eq!(grad_output.numel(), out.numel(), "bad grad shape for Sigmoid");
        let data =
            grad_output.data().iter().zip(out.data()).map(|(&g, &y)| g * y * (1.0 - y)).collect();
        Tensor::from_vec(data, grad_output.shape())
    }
}

/// Hyperbolic tangent activation, applied elementwise.
///
/// # Example
///
/// ```
/// use nn::{layers::Tanh, Layer, Tensor};
///
/// let mut t = Tanh::new();
/// let y = t.forward(&Tensor::from_vec(vec![0.0], &[1]));
/// assert_eq!(y.data(), &[0.0]);
/// ```
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Tanh {
    #[serde(skip)]
    output: Option<Tensor>,
}

impl Tanh {
    /// New tanh activation.
    #[must_use]
    pub fn new() -> Self {
        Tanh { output: None }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(f32::tanh);
        self.output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.map(f32::tanh)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("backward before forward");
        assert_eq!(grad_output.numel(), out.numel(), "bad grad shape for Tanh");
        let data =
            grad_output.data().iter().zip(out.data()).map(|(&g, &y)| g * (1.0 - y * y)).collect();
        Tensor::from_vec(data, grad_output.shape())
    }
}

/// Numerically stable sigmoid.
#[must_use]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives_and_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]);
        let y = relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 3.0]);
        let g = relu.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert!((stable_sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(stable_sigmoid(-100.0) < 1e-6);
        assert!(stable_sigmoid(-100.0) >= 0.0);
        assert!((stable_sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn sigmoid_gradient_matches_formula() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![0.7], &[1]);
        let y = s.forward(&x);
        let g = s.backward(&Tensor::from_vec(vec![1.0], &[1]));
        let expect = y.data()[0] * (1.0 - y.data()[0]);
        assert!((g.data()[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn tanh_values_and_gradient() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]);
        let y = t.forward(&x);
        assert!((y.data()[0] + 0.76159).abs() < 1e-4);
        assert_eq!(y.data()[1], 0.0);
        let g = t.backward(&Tensor::full(&[3], 1.0));
        // d tanh/dx at 0 is 1.
        assert!((g.data()[1] - 1.0).abs() < 1e-6);
        // Saturation damps the gradient symmetrically.
        assert!((g.data()[0] - g.data()[2]).abs() < 1e-6);
        assert!(g.data()[0] < 0.5);
    }

    #[test]
    fn sigmoid_gradient_check() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![0.3, -1.2], &[2]);
        let _ = s.forward(&x);
        let g = s.backward(&Tensor::from_vec(vec![1.0, 1.0], &[2]));
        let eps = 1e-3;
        for i in 0..2 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let numeric =
                (stable_sigmoid(xp.data()[i]) - stable_sigmoid(xm.data()[i])) / (2.0 * eps);
            assert!((g.data()[i] - numeric).abs() < 1e-4);
        }
    }
}
