//! First-order optimizers operating on [`Layer`] parameter trees.
//!
//! Optimizer moment buffers live inside each [`crate::Param`], so an
//! optimizer holds only hyper-parameters and a step counter and can be
//! applied to any set of layers — including multi-head models passed
//! as several disjoint layers via [`Adam::step_multi`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Layer, Param};

/// Stochastic gradient descent with optional classical momentum.
///
/// # Example
///
/// ```
/// use nn::{layers::Linear, optim::Sgd, Layer, Tensor, loss::mse};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut fc = Linear::new(2, 1, &mut rng);
/// let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
/// let y = fc.forward(&x);
/// let (_, grad) = mse(&y, &Tensor::zeros(&[1, 1]));
/// fc.zero_grad();
/// fc.backward(&grad);
/// Sgd::new(0.1).step(&mut fc);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate (no momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd { lr, momentum: 0.0 }
    }

    /// Add classical momentum (velocity stored in `Param::m`).
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)`.
    #[must_use]
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Apply one update to every parameter of `layer`.
    pub fn step(&mut self, layer: &mut dyn Layer) {
        self.step_multi(&mut [layer]);
    }

    /// Apply one update across several disjoint layers (e.g. the trunk
    /// and heads of a multi-head model).
    pub fn step_multi(&mut self, layers: &mut [&mut dyn Layer]) {
        let (lr, mu) = (self.lr, self.momentum);
        for layer in layers {
            layer.visit_params(&mut |p: &mut Param| {
                if mu > 0.0 {
                    for ((v, g), w) in
                        p.m.data_mut().iter_mut().zip(p.grad.data()).zip(p.value.data_mut())
                    {
                        *v = mu * *v + g;
                        *w -= lr * *v;
                    }
                } else {
                    p.value.add_scaled(&p.grad, -lr);
                }
            });
        }
    }
}

/// Adam optimizer (Kingma & Ba) — the optimizer the paper trains with.
///
/// Moments are stored in each parameter's `m`/`v` buffers; the bias
/// correction uses this optimizer's global step count, which increments
/// once per [`Adam::step`]/[`Adam::step_multi`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
}

impl Adam {
    /// Adam with standard betas `(0.9, 0.999)` and `eps = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }

    /// Override the exponential decay rates.
    ///
    /// # Panics
    ///
    /// Panics if either beta is outside `[0, 1)`.
    #[must_use]
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2), "betas in [0,1)");
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate (for schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Number of steps taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Snapshot the optimizer's full state: the step counter `t` that
    /// drives bias correction, plus the hyper-parameters for
    /// validation on restore.
    ///
    /// Per-parameter moments live in each [`Param`] and are captured
    /// by [`crate::serialize::StateDict`]; this covers everything
    /// else, so the pair `(StateDict, AdamState)` resumes training
    /// exactly.
    #[must_use]
    pub fn state(&self) -> AdamState {
        AdamState { t: self.t, lr: self.lr, beta1: self.beta1, beta2: self.beta2, eps: self.eps }
    }

    /// Rebuild an optimizer from a snapshot taken with
    /// [`Adam::state`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] if the snapshot's hyper-parameters are
    /// out of range (e.g. a corrupted or hand-edited checkpoint).
    pub fn from_state(state: &AdamState) -> Result<Self, StateError> {
        if !(state.lr > 0.0 && state.lr.is_finite()) {
            return Err(StateError::InvalidLearningRate { lr: state.lr });
        }
        if !((0.0..1.0).contains(&state.beta1) && (0.0..1.0).contains(&state.beta2)) {
            return Err(StateError::InvalidBetas { beta1: state.beta1, beta2: state.beta2 });
        }
        if !(state.eps > 0.0 && state.eps.is_finite()) {
            return Err(StateError::InvalidEpsilon { eps: state.eps });
        }
        Ok(Adam {
            lr: state.lr,
            beta1: state.beta1,
            beta2: state.beta2,
            eps: state.eps,
            t: state.t,
        })
    }

    /// Apply one update to every parameter of `layer`.
    pub fn step(&mut self, layer: &mut dyn Layer) {
        self.step_multi(&mut [layer]);
    }

    /// Apply one update across several disjoint layers, advancing the
    /// step counter once.
    pub fn step_multi(&mut self, layers: &mut [&mut dyn Layer]) {
        self.t += 1;
        let t = self.t as f32;
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        for layer in layers {
            layer.visit_params(&mut |p: &mut Param| {
                let grad = p.grad.data();
                let m = p.m.data_mut();
                for (mi, &gi) in m.iter_mut().zip(grad) {
                    *mi = b1 * *mi + (1.0 - b1) * gi;
                }
                let v = p.v.data_mut();
                for (vi, &gi) in v.iter_mut().zip(grad) {
                    *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                }
                let value = p.value.data_mut();
                for ((wi, &mi), &vi) in value.iter_mut().zip(p.m.data()).zip(p.v.data()) {
                    let m_hat = mi / bc1;
                    let v_hat = vi / bc2;
                    *wi -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            });
        }
    }
}

/// Serializable [`Adam`] state: the bias-correction step counter and
/// the hyper-parameters it was configured with.
///
/// The step counter is the piece of optimizer state that does *not*
/// live in the per-parameter moment buffers — dropping it from a
/// checkpoint silently changes the bias correction `1 − βᵗ` after a
/// resume, so resumed training diverges from an uninterrupted run.
/// The hyper-parameters are carried alongside so a resume can verify
/// the checkpoint matches the configured optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamState {
    /// Steps taken so far (drives the bias correction).
    pub t: u64,
    /// Learning rate at capture time.
    pub lr: f32,
    /// First-moment decay rate.
    pub beta1: f32,
    /// Second-moment decay rate.
    pub beta2: f32,
    /// Denominator stabilizer.
    pub eps: f32,
}

/// Error rebuilding an [`Adam`] from an invalid [`AdamState`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StateError {
    /// Learning rate was non-positive or non-finite.
    InvalidLearningRate {
        /// The offending value.
        lr: f32,
    },
    /// A beta was outside `[0, 1)`.
    InvalidBetas {
        /// First-moment decay rate.
        beta1: f32,
        /// Second-moment decay rate.
        beta2: f32,
    },
    /// Epsilon was non-positive or non-finite.
    InvalidEpsilon {
        /// The offending value.
        eps: f32,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::InvalidLearningRate { lr } => {
                write!(f, "Adam state has invalid learning rate {lr}")
            }
            StateError::InvalidBetas { beta1, beta2 } => {
                write!(f, "Adam state has invalid betas ({beta1}, {beta2})")
            }
            StateError::InvalidEpsilon { eps } => {
                write!(f, "Adam state has invalid epsilon {eps}")
            }
        }
    }
}

impl std::error::Error for StateError {}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::loss::mse;
    use crate::{Sequential, Tensor};

    /// Train y = 2x1 - 3x2 + 1 with a linear model.
    fn fit_linear(optim: &mut dyn FnMut(&mut Sequential), epochs: usize) -> f32 {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new().with(Linear::new(2, 1, &mut rng));
        let xs: Vec<f32> =
            (0..64).flat_map(|i| vec![(i % 8) as f32 / 8.0, (i / 8) as f32 / 8.0]).collect();
        let ys: Vec<f32> = xs.chunks(2).map(|p| 2.0 * p[0] - 3.0 * p[1] + 1.0).collect();
        let x = Tensor::from_vec(xs, &[64, 2]);
        let t = Tensor::from_vec(ys, &[64, 1]);
        let mut last = f32::MAX;
        for _ in 0..epochs {
            let y = net.forward(&x);
            let (loss, grad) = mse(&y, &t);
            net.zero_grad();
            net.backward(&grad);
            optim(&mut net);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let mut sgd = Sgd::new(0.1);
        let loss = fit_linear(&mut |net| sgd.step(net), 500);
        assert!(loss < 1e-3, "SGD failed to converge: {loss}");
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let mut plain = Sgd::new(0.02);
        let slow = fit_linear(&mut |net| plain.step(net), 100);
        let mut mom = Sgd::new(0.02).with_momentum(0.9);
        let fast = fit_linear(&mut |net| mom.step(net), 100);
        assert!(fast < slow, "momentum did not help: {fast} vs {slow}");
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        let mut adam = Adam::new(0.05);
        let loss = fit_linear(&mut |net| adam.step(net), 300);
        assert!(loss < 1e-3, "Adam failed to converge: {loss}");
    }

    #[test]
    fn adam_trains_a_nonlinear_network() {
        // XOR-ish regression only solvable with the hidden layer.
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new()
            .with(Linear::new(2, 16, &mut rng))
            .with(Relu::new())
            .with(Linear::new(16, 1, &mut rng));
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
        let t = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[4, 1]);
        let mut adam = Adam::new(0.02);
        let mut loss = f32::MAX;
        for _ in 0..800 {
            let y = net.forward(&x);
            let (l, grad) = mse(&y, &t);
            net.zero_grad();
            net.backward(&grad);
            adam.step(&mut net);
            loss = l;
        }
        assert!(loss < 1e-2, "XOR not learned: {loss}");
    }

    #[test]
    fn step_counter_advances_once_per_multi_step() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = Linear::new(2, 2, &mut rng);
        let mut b = Linear::new(2, 2, &mut rng);
        let mut adam = Adam::new(0.01);
        adam.step_multi(&mut [&mut a, &mut b]);
        assert_eq!(adam.steps(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_learning_rate_rejected() {
        let _ = Adam::new(0.0);
    }

    #[test]
    fn state_roundtrip_preserves_counter_and_hyperparams() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Linear::new(2, 2, &mut rng);
        let mut adam = Adam::new(0.01).with_betas(0.8, 0.95);
        for _ in 0..3 {
            adam.step(&mut net);
        }
        let state = adam.state();
        assert_eq!(state.t, 3);
        let restored = Adam::from_state(&state).expect("valid state");
        assert_eq!(restored, adam);
    }

    #[test]
    fn from_state_rejects_corrupted_hyperparams() {
        let good = Adam::new(0.01).state();
        let cases = [
            AdamState { lr: -1.0, ..good },
            AdamState { lr: f32::NAN, ..good },
            AdamState { beta1: 1.0, ..good },
            AdamState { beta2: -0.1, ..good },
            AdamState { eps: 0.0, ..good },
        ];
        for bad in cases {
            assert!(Adam::from_state(&bad).is_err(), "accepted invalid state {bad:?}");
        }
    }

    /// The regression the checkpoint bundle exists to prevent: resuming
    /// with a fresh step counter (t = 0) changes the bias correction
    /// and diverges from an uninterrupted run; restoring `t` does not.
    #[test]
    fn restoring_step_counter_matches_uninterrupted_run() {
        let make_net = || {
            let mut rng = StdRng::seed_from_u64(6);
            Linear::new(3, 2, &mut rng)
        };
        let grad_step = |net: &mut Linear, adam: &mut Adam, seed: u64| {
            net.visit_params(&mut |p: &mut Param| {
                let data = p.grad.data_mut();
                for (i, g) in data.iter_mut().enumerate() {
                    *g = ((seed as f32) + i as f32).sin();
                }
            });
            adam.step(net);
        };

        // Uninterrupted: 6 steps with one optimizer.
        let mut straight = make_net();
        let mut adam = Adam::new(0.05);
        for s in 0..6 {
            grad_step(&mut straight, &mut adam, s);
        }

        // Interrupted after 3 steps; resume restores `t` via AdamState.
        let mut resumed = make_net();
        let mut adam_a = Adam::new(0.05);
        for s in 0..3 {
            grad_step(&mut resumed, &mut adam_a, s);
        }
        let mut adam_b = Adam::from_state(&adam_a.state()).expect("valid state");
        for s in 3..6 {
            grad_step(&mut resumed, &mut adam_b, s);
        }
        let collect = |net: &mut Linear| {
            let mut out = Vec::new();
            net.visit_params(&mut |p: &mut Param| out.extend_from_slice(p.value.data()));
            out
        };
        assert_eq!(collect(&mut straight), collect(&mut resumed));

        // A fresh optimizer (the pre-fix behavior) diverges.
        let mut broken = make_net();
        let mut adam_c = Adam::new(0.05);
        for s in 0..3 {
            grad_step(&mut broken, &mut adam_c, s);
        }
        let mut adam_d = Adam::new(0.05); // t silently reset to 0
        for s in 3..6 {
            grad_step(&mut broken, &mut adam_d, s);
        }
        assert_ne!(
            collect(&mut straight),
            collect(&mut broken),
            "losing the step counter should diverge (otherwise this test is vacuous)"
        );
    }
}
