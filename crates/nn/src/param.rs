use serde::{Deserialize, Serialize};

use crate::Tensor;

/// A trainable parameter: value, accumulated gradient, and the Adam
/// first/second-moment buffers.
///
/// Keeping optimizer state inside the parameter (rather than keyed by
/// parameter identity inside the optimizer) makes optimizers stateless
/// apart from hyper-parameters and the step counter, and means
/// serializing a model checkpoint also preserves optimizer momentum.
///
/// # Example
///
/// ```
/// use nn::{Param, Tensor};
///
/// let mut p = Param::new(Tensor::zeros(&[2, 2]));
/// p.grad.fill(1.0);
/// assert_eq!(p.grad.sum(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Adam first-moment estimate (same shape as `value`).
    pub m: Tensor,
    /// Adam second-moment estimate (same shape as `value`).
    pub v: Tensor,
}

impl Param {
    /// Wrap an initial value with zeroed gradient and moments.
    #[must_use]
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        let m = Tensor::zeros(value.shape());
        let v = Tensor::zeros(value.shape());
        Param { value, grad, m, v }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zeroed_state() {
        let p = Param::new(Tensor::full(&[3], 5.0));
        assert_eq!(p.value.sum(), 15.0);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.m.sum(), 0.0);
        assert_eq!(p.v.sum(), 0.0);
        assert_eq!(p.grad.shape(), p.value.shape());
    }
}
