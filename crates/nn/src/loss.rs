//! Loss functions and their gradients.
//!
//! Each reduced loss returns `(scalar, gradient)` where the gradient
//! already includes the reduction factor, so `Layer::backward` can be
//! called with it directly. The *per-sample* helpers return unreduced
//! values and unscaled gradients — the building blocks the selective
//! loss (paper eqs. (6)–(9)) composes with its own data-dependent
//! normalizers.

use crate::Tensor;

/// Reusable buffers for the fused cross-entropy path.
///
/// One instance lives next to each training loop; every buffer grows
/// to the largest batch seen and is then reused, so steady-state
/// training performs no loss-side allocation (the crate-level
/// workspace memory model — see [`crate::workspace`]).
#[derive(Debug, Default)]
pub struct CeScratch {
    probs: Tensor,
    grad: Tensor,
    losses: Vec<f32>,
}

/// Row-wise softmax of a `[N, C]` logits tensor.
///
/// # Panics
///
/// Panics if `logits` is not 2-D.
#[must_use]
pub fn softmax(logits: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    softmax_into(logits, &mut out);
    out
}

/// [`softmax`] into a caller-provided tensor (resized in place,
/// allocation-free once warmed).
///
/// # Panics
///
/// Panics if `logits` is not 2-D.
pub fn softmax_into(logits: &Tensor, out: &mut Tensor) {
    assert_eq!(logits.shape().len(), 2, "softmax expects [N, C]");
    let c = logits.shape()[1];
    out.refill_from(logits);
    for row in out.data_mut().chunks_exact_mut(c) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Per-sample cross-entropy `−log p[label]` from softmax probabilities.
///
/// Probabilities are floored at `1e-12` for numerical safety.
///
/// # Panics
///
/// Panics if shapes disagree or any label is out of range.
#[must_use]
pub fn cross_entropy_per_sample(probs: &Tensor, labels: &[usize]) -> Vec<f32> {
    let mut out = Vec::new();
    cross_entropy_per_sample_into(probs, labels, &mut out);
    out
}

/// [`cross_entropy_per_sample`] into a caller-provided vector
/// (cleared and refilled, allocation-free once warmed).
///
/// # Panics
///
/// Panics if shapes disagree or any label is out of range.
pub fn cross_entropy_per_sample_into(probs: &Tensor, labels: &[usize], out: &mut Vec<f32>) {
    let (n, c) = (probs.shape()[0], probs.shape()[1]);
    assert_eq!(labels.len(), n, "labels length mismatch");
    out.clear();
    out.extend(labels.iter().enumerate().map(|(i, &y)| {
        assert!(y < c, "label {y} out of range for {c} classes");
        -(probs.data()[i * c + y].max(1e-12)).ln()
    }));
}

/// Unscaled per-sample gradient of cross-entropy w.r.t. logits:
/// row `i` is `p_i − onehot(y_i)`.
///
/// Multiply rows by per-sample coefficients and a reduction factor to
/// build any weighted CE variant.
///
/// # Panics
///
/// Panics if shapes disagree or any label is out of range.
#[must_use]
pub fn cross_entropy_grad_rows(probs: &Tensor, labels: &[usize]) -> Tensor {
    let mut grad = Tensor::default();
    cross_entropy_grad_rows_into(probs, labels, &mut grad);
    grad
}

/// [`cross_entropy_grad_rows`] into a caller-provided tensor (resized
/// in place, allocation-free once warmed).
///
/// # Panics
///
/// Panics if shapes disagree or any label is out of range.
pub fn cross_entropy_grad_rows_into(probs: &Tensor, labels: &[usize], out: &mut Tensor) {
    let (n, c) = (probs.shape()[0], probs.shape()[1]);
    assert_eq!(labels.len(), n, "labels length mismatch");
    out.refill_from(probs);
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range for {c} classes");
        out.data_mut()[i * c + y] -= 1.0;
    }
}

/// Fused weighted softmax cross-entropy with mean reduction.
///
/// Returns the weighted mean loss `Σ w_i · ce_i / Σ w_i` and its
/// gradient w.r.t. the logits. With `weights = None` all samples weigh
/// 1 (plain mean CE — the paper's eq. (1) up to the standard sign
/// convention).
///
/// # Panics
///
/// Panics on shape mismatch, out-of-range labels, or non-positive
/// total weight.
#[must_use]
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
    weights: Option<&[f32]>,
) -> (f32, Tensor) {
    let mut scratch = CeScratch::default();
    let loss = softmax_cross_entropy_into(logits, labels, weights, &mut scratch);
    (loss, scratch.grad)
}

/// [`softmax_cross_entropy`] computed through reusable scratch. The
/// gradient is left in the returned reference (backed by `scratch`);
/// computes bit-identical numbers to the allocating variant.
///
/// # Panics
///
/// Panics on shape mismatch, out-of-range labels, or non-positive
/// total weight.
pub fn softmax_cross_entropy_scratch<'s>(
    logits: &Tensor,
    labels: &[usize],
    weights: Option<&[f32]>,
    scratch: &'s mut CeScratch,
) -> (f32, &'s mut Tensor) {
    let loss = softmax_cross_entropy_into(logits, labels, weights, scratch);
    (loss, &mut scratch.grad)
}

fn softmax_cross_entropy_into(
    logits: &Tensor,
    labels: &[usize],
    weights: Option<&[f32]>,
    scratch: &mut CeScratch,
) -> f32 {
    let n = logits.shape()[0];
    let c = logits.shape()[1];
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "weights length mismatch");
    }
    softmax_into(logits, &mut scratch.probs);
    cross_entropy_per_sample_into(&scratch.probs, labels, &mut scratch.losses);
    let total_weight: f32 = match weights {
        Some(w) => w.iter().sum(),
        None => n as f32,
    };
    assert!(total_weight > 0.0, "total sample weight must be positive");
    let loss = scratch
        .losses
        .iter()
        .enumerate()
        .map(|(i, l)| l * weights.map_or(1.0, |w| w[i]))
        .sum::<f32>()
        / total_weight;
    cross_entropy_grad_rows_into(&scratch.probs, labels, &mut scratch.grad);
    for (i, row) in scratch.grad.data_mut().chunks_exact_mut(c).enumerate() {
        let coef = weights.map_or(1.0, |w| w[i]) / total_weight;
        row.iter_mut().for_each(|v| *v *= coef);
    }
    loss
}

/// Fraction of rows whose argmax equals the label.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
#[must_use]
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "labels length mismatch");
    if n == 0 {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|(i, &y)| argmax(&logits.data()[i * c..(i + 1) * c]) == y)
        .count();
    correct as f32 / n as f32
}

/// Index of the largest element (first on ties).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Mean-squared error and its gradient: `L = mean((p − t)²)`,
/// `dL/dp = 2 (p − t) / numel`.
///
/// # Panics
///
/// Panics on shape mismatch.
#[must_use]
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.numel() as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0f32;
    for (g, &t) in grad.data_mut().iter_mut().zip(target.data()) {
        let d = *g - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Binary cross-entropy on probabilities in `(0, 1)` with `{0, 1}`
/// targets: `L = mean(−t·ln p − (1−t)·ln(1−p))`, with the matching
/// gradient w.r.t. `p`. Probabilities are clamped to
/// `[1e-7, 1 − 1e-7]` for stability.
///
/// Used for training the selection head in isolation (e.g. warm-up or
/// diagnostic probes); the main selective objective lives in the
/// `selective` crate.
///
/// # Panics
///
/// Panics on shape mismatch or an empty tensor.
#[must_use]
pub fn binary_cross_entropy(probs: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(probs.shape(), targets.shape(), "bce shape mismatch");
    let n = probs.numel() as f32;
    assert!(n > 0.0, "bce on empty tensor");
    let mut grad = probs.clone();
    let mut loss = 0.0f32;
    for (g, &t) in grad.data_mut().iter_mut().zip(targets.data()) {
        let p = g.clamp(1e-7, 1.0 - 1e-7);
        loss += -t * p.ln() - (1.0 - t) * (1.0 - p).ln();
        *g = (p - t) / (p * (1.0 - p)) / n;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(0);
        let logits = Tensor::randn(&[5, 7], 3.0, &mut rng);
        let p = softmax(&logits);
        for row in p.data().chunks_exact(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let logits = Tensor::from_vec(vec![1000.0, 1001.0, 999.0], &[1, 3]);
        let p = softmax(&logits);
        assert!(p.is_finite());
        let shifted = softmax(&Tensor::from_vec(vec![0.0, 1.0, -1.0], &[1, 3]));
        for (a, b) in p.data().iter().zip(shifted.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(vec![50.0, 0.0, 0.0], &[1, 3]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0], None);
        assert!(loss < 1e-6);
    }

    #[test]
    fn uniform_prediction_loss_is_ln_c() {
        let logits = Tensor::zeros(&[4, 8]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3], None);
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let labels = [2usize, 0, 3];
        let (_, grad) = softmax_cross_entropy(&logits, &labels, None);
        let eps = 1e-3f32;
        for idx in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels, None);
            let (fm, _) = softmax_cross_entropy(&lm, &labels, None);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-3,
                "grad mismatch at {idx}: {numeric} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn weights_reweight_the_loss() {
        let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], &[2, 2]);
        // Sample 0 correct, sample 1 label 0 (wrong-ish).
        let (hi, _) = softmax_cross_entropy(&logits, &[0, 0], Some(&[1.0, 1.0]));
        let (lo, _) = softmax_cross_entropy(&logits, &[0, 0], Some(&[1.0, 0.1]));
        // Down-weighting the bad sample must reduce the mean loss.
        assert!(lo < hi);
    }

    #[test]
    fn weighted_ce_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let logits = Tensor::randn(&[3, 3], 1.0, &mut rng);
        let labels = [0usize, 1, 2];
        let weights = [1.0f32, 0.25, 0.5];
        let (_, grad) = softmax_cross_entropy(&logits, &labels, Some(&weights));
        let eps = 1e-3f32;
        for idx in [0usize, 4, 8] {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels, Some(&weights));
            let (fm, _) = softmax_cross_entropy(&lm, &labels, Some(&weights));
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - grad.data()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.9, 0.1], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 0, 1]) - 0.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[0, 0, 0]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn mse_known_answer_and_gradient() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let target = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        assert_eq!(argmax(&[1.0, 1.0, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.9]), 1);
    }

    #[test]
    fn bce_perfect_and_worst_cases() {
        let targets = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let good = Tensor::from_vec(vec![0.999, 0.001], &[2]);
        let (low, _) = binary_cross_entropy(&good, &targets);
        assert!(low < 0.01);
        let bad = Tensor::from_vec(vec![0.001, 0.999], &[2]);
        let (high, _) = binary_cross_entropy(&bad, &targets);
        assert!(high > 3.0);
    }

    #[test]
    fn bce_gradient_matches_finite_differences() {
        let targets = Tensor::from_vec(vec![1.0, 0.0, 1.0], &[3]);
        let probs = Tensor::from_vec(vec![0.3, 0.6, 0.8], &[3]);
        let (_, grad) = binary_cross_entropy(&probs, &targets);
        let eps = 1e-4f32;
        for i in 0..3 {
            let mut pp = probs.clone();
            pp.data_mut()[i] += eps;
            let mut pm = probs.clone();
            pm.data_mut()[i] -= eps;
            let (lp, _) = binary_cross_entropy(&pp, &targets);
            let (lm, _) = binary_cross_entropy(&pm, &targets);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-2,
                "bce grad mismatch at {i}: {numeric} vs {}",
                grad.data()[i]
            );
        }
    }
}
