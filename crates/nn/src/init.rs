//! Weight initialization schemes.

use rand::Rng;

use crate::Tensor;

/// He (Kaiming) normal initialization: zero-mean Gaussian with
/// `std = sqrt(2 / fan_in)`. The right choice ahead of ReLU
/// activations, used by all conv and hidden linear layers here.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
#[must_use]
pub fn he<R: Rng + ?Sized>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    assert!(fan_in > 0, "fan_in must be non-zero");
    Tensor::randn(shape, (2.0 / fan_in as f32).sqrt(), rng)
}

/// Xavier (Glorot) normal initialization: zero-mean Gaussian with
/// `std = sqrt(2 / (fan_in + fan_out))`. Used ahead of sigmoid/tanh
/// activations (the selection head and the auto-encoder output).
///
/// # Panics
///
/// Panics if `fan_in + fan_out` is zero.
#[must_use]
pub fn xavier<R: Rng + ?Sized>(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fans must not both be zero");
    Tensor::randn(shape, (2.0 / (fan_in + fan_out) as f32).sqrt(), rng)
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn he_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = he(&[200, 50], 50, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.numel() as f32;
        let expect = 2.0 / 50.0;
        assert!((var - expect).abs() < expect * 0.2, "var {var}, expect {expect}");
    }

    #[test]
    fn xavier_std_uses_both_fans() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = xavier(&[100, 100], 100, 100, &mut rng);
        let var = t.data().iter().map(|v| v * v).sum::<f32>() / t.numel() as f32;
        let expect = 2.0 / 200.0;
        assert!((var - expect).abs() < expect * 0.2, "var {var}, expect {expect}");
    }
}
