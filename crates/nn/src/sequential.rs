use crate::{Layer, Param, Tensor};

/// A chain of layers applied in order.
///
/// `forward` threads the input through every layer; `backward` runs
/// the chain in reverse. Build with [`Sequential::with`] in a fluent
/// style.
///
/// # Example
///
/// ```
/// use nn::{layers::{Flatten, Linear, Relu}, Layer, Sequential, Tensor};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut net = Sequential::new()
///     .with(Flatten::new())
///     .with(Linear::new(16, 8, &mut rng))
///     .with(Relu::new());
/// let y = net.forward(&Tensor::zeros(&[3, 1, 4, 4]));
/// assert_eq!(y.shape(), &[3, 8]);
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty chain (identity network).
    #[must_use]
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer, fluently.
    #[must_use]
    pub fn with<L: Layer + 'static>(mut self, layer: L) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Append a boxed layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut cur = input.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut cur = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut cur = input.clone();
        for layer in &self.layers {
            cur = layer.infer(&cur);
        }
        cur
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::loss::mse;

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::new();
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        assert_eq!(net.forward(&x), x);
        assert_eq!(net.backward(&x), x);
        assert!(net.is_empty());
    }

    #[test]
    fn params_aggregate_over_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new()
            .with(Linear::new(4, 8, &mut rng))
            .with(Relu::new())
            .with(Linear::new(8, 2, &mut rng));
        assert_eq!(net.param_count(), (4 * 8 + 8) + (8 * 2 + 2));
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn chain_gradient_check() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new()
            .with(Linear::new(3, 5, &mut rng))
            .with(Relu::new())
            .with(Linear::new(5, 2, &mut rng));
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let target = Tensor::randn(&[2, 2], 1.0, &mut rng);
        let y = net.forward(&x);
        let (_, grad) = mse(&y, &target);
        net.zero_grad();
        let gx = net.backward(&grad);

        let eps = 1e-2f32;
        for idx in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let (lp, _) = mse(&net.forward(&xp), &target);
            let (lm, _) = mse(&net.forward(&xm), &target);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gx.data()[idx]).abs() < 2e-2,
                "grad mismatch at {idx}: {numeric} vs {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn zero_grad_clears_all_layers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net =
            Sequential::new().with(Linear::new(2, 2, &mut rng)).with(Linear::new(2, 2, &mut rng));
        let x = Tensor::randn(&[1, 2], 1.0, &mut rng);
        let y = net.forward(&x);
        let (_, grad) = mse(&y, &Tensor::zeros(&[1, 2]));
        let _ = net.backward(&grad);
        let mut nonzero = 0;
        net.visit_params(&mut |p| nonzero += p.grad.data().iter().filter(|v| **v != 0.0).count());
        assert!(nonzero > 0);
        net.zero_grad();
        let mut remaining = 0;
        net.visit_params(&mut |p| remaining += p.grad.data().iter().filter(|v| **v != 0.0).count());
        assert_eq!(remaining, 0);
    }
}
