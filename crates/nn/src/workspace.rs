//! Hot-path scratch buffers with growth accounting.
//!
//! The training and serving hot paths reuse long-lived buffers —
//! per-layer workspaces, per-thread thread-locals, trainer staging —
//! instead of allocating per batch or per sample. Every such buffer is
//! sized through [`reserve_f32`], which grows it at most to the
//! largest size ever requested and **counts each growth** in the
//! process-wide [`telemetry::global`] registry:
//!
//! - `hotpath_scratch_grows_total` — number of buffer growths,
//! - `hotpath_scratch_grow_bytes_total` — bytes added by growths,
//! - `hotpath_scratch_bytes` — current total bytes held (gauge).
//!
//! In steady state (fixed shapes after the first batch) the grow
//! counter must stay flat: that is the "zero hot-path allocations"
//! contract, asserted by `crates/core/tests/hot_path_alloc.rs`. The
//! counters are monotone and process-global, so tests assert on
//! deltas.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Scratch metrics, registered once in the process-wide registry
/// (scratch buffers span crates and threads, like the worker pool).
struct ScratchMetrics {
    grows: telemetry::Counter,
    grow_bytes: telemetry::Counter,
    bytes: telemetry::Gauge,
}

/// Current total scratch bytes; the gauge mirrors this (the telemetry
/// [`telemetry::Gauge`] is set-only, so the running sum lives here).
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

fn metrics() -> &'static ScratchMetrics {
    static METRICS: OnceLock<ScratchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = telemetry::global();
        ScratchMetrics {
            grows: registry
                .counter("hotpath_scratch_grows_total", "Hot-path scratch buffer growths"),
            grow_bytes: registry.counter(
                "hotpath_scratch_grow_bytes_total",
                "Bytes added by hot-path scratch growths",
            ),
            bytes: registry.gauge("hotpath_scratch_bytes", "Current hot-path scratch bytes held"),
        }
    })
}

/// Ensure `buf` holds at least `len` elements and return the first
/// `len` as a slice.
///
/// Growth is amortized-once: after the largest shape has been seen,
/// calls never allocate. New elements are zero-filled; **existing
/// elements keep their prior contents** — callers that need a zeroed
/// buffer (e.g. GEMM accumulation targets) must `fill(0.0)` the
/// returned slice themselves, which touches memory but allocates
/// nothing.
pub fn reserve_f32(buf: &mut Vec<f32>, len: usize) -> &mut [f32] {
    if buf.len() < len {
        let grown = (len - buf.len()) * std::mem::size_of::<f32>();
        buf.resize(len, 0.0);
        let m = metrics();
        m.grows.inc();
        m.grow_bytes.add(grown as u64);
        let total = TOTAL_BYTES.fetch_add(grown as u64, Ordering::Relaxed) + grown as u64;
        m.bytes.set(total as f64);
    }
    &mut buf[..len]
}

/// Total number of scratch growths so far (process-wide, monotone).
///
/// Steady-state training must leave this flat between batches; the
/// allocation-freedom tests snapshot it around a warm run.
#[must_use]
pub fn grow_count() -> u64 {
    metrics().grows.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_grows_once_and_counts() {
        let before = grow_count();
        let mut buf = Vec::new();
        let s = reserve_f32(&mut buf, 128);
        assert_eq!(s.len(), 128);
        assert!(s.iter().all(|&v| v == 0.0));
        s.fill(3.0);
        assert_eq!(grow_count(), before + 1);

        // Same or smaller size: no growth, contents preserved.
        let s = reserve_f32(&mut buf, 64);
        assert_eq!(s.len(), 64);
        assert!(s.iter().all(|&v| v == 3.0));
        assert_eq!(grow_count(), before + 1);

        // Larger: exactly one more growth, zero-filled new tail.
        let s = reserve_f32(&mut buf, 256);
        assert_eq!(s.len(), 256);
        assert!(s[128..].iter().all(|&v| v == 0.0));
        assert_eq!(grow_count(), before + 2);
    }
}
