//! Format checker for the Prometheus text exposition format.
//!
//! [`parse_exposition`] is the self-check half of the exposition
//! contract: everything [`Snapshot::to_prometheus`](crate::Snapshot)
//! renders must parse back cleanly, and CI smoke runs feed live
//! output through it so a formatting regression fails the build
//! instead of silently corrupting a scrape.

use std::fmt;

/// Summary of a successfully parsed exposition payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exposition {
    /// `(family name, type)` pairs in declaration order.
    pub families: Vec<(String, String)>,
    /// Total number of sample lines.
    pub samples: usize,
}

/// A format violation, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpositionError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ExpositionError {}

fn err(line: usize, message: impl Into<String>) -> ExpositionError {
    ExpositionError { line, message: message.into() }
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn is_sample_value(s: &str) -> bool {
    matches!(s, "NaN" | "+Inf" | "-Inf" | "Inf") || s.parse::<f64>().is_ok()
}

const KNOWN_TYPES: [&str; 5] = ["counter", "gauge", "summary", "histogram", "untyped"];

/// Which family a sample line belongs to: summaries and histograms
/// append `_sum` / `_count` / `_bucket` to the family name.
fn family_of<'a>(name: &'a str, declared: &[(String, String)]) -> &'a str {
    for suffix in ["_sum", "_count", "_bucket"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if declared.iter().any(|(n, t)| n == stem && (t == "summary" || t == "histogram")) {
                return stem;
            }
        }
    }
    name
}

/// Parse the label block `k="v",...` (without the surrounding braces).
fn check_labels(body: &str, line_no: usize) -> Result<(), ExpositionError> {
    let mut rest = body;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| err(line_no, format!("label pair without `=`: `{rest}`")))?;
        let label = &rest[..eq];
        if !is_label_name(label) {
            return Err(err(line_no, format!("invalid label name `{label}`")));
        }
        rest = &rest[eq + 1..];
        let mut chars = rest.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(err(line_no, format!("label `{label}` value is not quoted")));
        }
        // Scan the escaped value for the closing quote.
        let mut close = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(err(line_no, format!("invalid escape `\\{c}` in label value")));
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(i);
                break;
            }
        }
        let close = close.ok_or_else(|| err(line_no, "unterminated label value"))?;
        rest = &rest[close + 1..];
        match rest.strip_prefix(',') {
            Some(more) if !more.is_empty() => rest = more,
            Some(_) | None if rest.is_empty() || rest == "," => return Ok(()),
            _ => return Err(err(line_no, format!("unexpected `{rest}` after label value"))),
        }
    }
}

/// Validate a Prometheus text exposition payload.
///
/// Checks, line by line:
///
/// - `# TYPE` comments name a valid metric and a known type, and no
///   family is re-declared with a different type;
/// - `# HELP` comments name a valid metric;
/// - sample lines have a valid metric name, well-formed labels
///   (quoted, escaped values), and a numeric value (an optional
///   trailing integer timestamp is accepted);
/// - every sample belongs to a family with a declared `# TYPE` (this
///   crate's renderer always declares types, so an undeclared sample
///   means a corrupted payload).
///
/// Returns the declared families and the total sample count.
///
/// # Errors
///
/// Returns [`ExpositionError`] with the offending 1-based line number
/// on the first violation.
pub fn parse_exposition(text: &str) -> Result<Exposition, ExpositionError> {
    let mut families: Vec<(String, String)> = Vec::new();
    let mut samples = 0usize;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().ok_or_else(|| err(line_no, "TYPE without a name"))?;
                let kind = parts.next().ok_or_else(|| err(line_no, "TYPE without a type"))?;
                if !is_metric_name(name) {
                    return Err(err(line_no, format!("invalid metric name `{name}` in TYPE")));
                }
                if !KNOWN_TYPES.contains(&kind) {
                    return Err(err(line_no, format!("unknown metric type `{kind}`")));
                }
                if let Some((_, prev)) = families.iter().find(|(n, _)| n == name) {
                    if prev != kind {
                        return Err(err(
                            line_no,
                            format!("family `{name}` re-declared as `{kind}` (was `{prev}`)"),
                        ));
                    }
                } else {
                    families.push((name.to_string(), kind.to_string()));
                }
            } else if let Some(decl) = comment.strip_prefix("HELP ") {
                let name = decl.split_whitespace().next().unwrap_or("");
                if !is_metric_name(name) {
                    return Err(err(line_no, format!("invalid metric name `{name}` in HELP")));
                }
            }
            // Other `#` lines are free-form comments.
            continue;
        }

        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .ok_or_else(|| err(line_no, "sample line without a value"))?;
        let name = &line[..name_end];
        if !is_metric_name(name) {
            return Err(err(line_no, format!("invalid metric name `{name}`")));
        }
        let mut rest = &line[name_end..];
        if let Some(after_brace) = rest.strip_prefix('{') {
            let close =
                after_brace.find('}').ok_or_else(|| err(line_no, "unterminated label block"))?;
            check_labels(&after_brace[..close], line_no)?;
            rest = &after_brace[close + 1..];
        }
        let mut parts = rest.split_whitespace();
        let value = parts.next().ok_or_else(|| err(line_no, "sample line without a value"))?;
        if !is_sample_value(value) {
            return Err(err(line_no, format!("invalid sample value `{value}`")));
        }
        if let Some(ts) = parts.next() {
            if ts.parse::<i64>().is_err() {
                return Err(err(line_no, format!("invalid timestamp `{ts}`")));
            }
        }
        if let Some(extra) = parts.next() {
            return Err(err(line_no, format!("trailing content `{extra}` on sample line")));
        }
        let family = family_of(name, &families);
        if !families.iter().any(|(n, _)| n == family) {
            return Err(err(line_no, format!("sample `{name}` has no `# TYPE` declaration")));
        }
        samples += 1;
    }

    Ok(Exposition { families, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn rendered_output_always_parses() {
        let r = Registry::new();
        r.counter("jobs_total", "Jobs").add(3);
        r.counter_with("per_class_total", &[("class", "Edge-Ring")], "Per class").add(2);
        r.gauge("coverage", "Rolling \"coverage\"\nover the window").set(0.875);
        let h = r.histogram("latency_seconds", "Latency", 16);
        for i in 0..40 {
            h.observe(f64::from(i) * 1e-3);
        }
        let text = r.prometheus();
        let parsed = parse_exposition(&text).expect("renderer emits valid exposition");
        assert_eq!(
            parsed.families,
            vec![
                ("jobs_total".into(), "counter".into()),
                ("per_class_total".into(), "counter".into()),
                ("coverage".into(), "gauge".into()),
                ("latency_seconds".into(), "summary".into()),
            ]
        );
        // 2 counters + 1 gauge + 3 quantiles + sum + count.
        assert_eq!(parsed.samples, 8);
    }

    #[test]
    fn accepts_timestamps_and_special_values() {
        let text = "# TYPE x gauge\nx{a=\"b\"} NaN 1700000000\n# TYPE y gauge\ny +Inf\n";
        let parsed = parse_exposition(text).expect("valid");
        assert_eq!(parsed.samples, 2);
    }

    #[test]
    fn rejects_bad_metric_name() {
        let text = "# TYPE ok gauge\n9bad 1\n";
        let e = parse_exposition(text).expect_err("invalid name");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("invalid metric name"));
    }

    #[test]
    fn rejects_unquoted_label_value() {
        let text = "# TYPE m counter\nm{a=b} 1\n";
        assert!(parse_exposition(text).is_err());
    }

    #[test]
    fn rejects_non_numeric_value() {
        let text = "# TYPE m counter\nm one\n";
        let e = parse_exposition(text).expect_err("invalid value");
        assert!(e.message.contains("invalid sample value"));
    }

    #[test]
    fn rejects_undeclared_family() {
        let text = "stray_metric 1\n";
        let e = parse_exposition(text).expect_err("no TYPE");
        assert!(e.message.contains("no `# TYPE`"));
    }

    #[test]
    fn rejects_type_redeclaration() {
        let text = "# TYPE m counter\n# TYPE m gauge\n";
        let e = parse_exposition(text).expect_err("conflict");
        assert!(e.message.contains("re-declared"));
    }

    #[test]
    fn summary_suffixes_resolve_to_their_family() {
        let text = "# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum 2\ns_count 3\n";
        let parsed = parse_exposition(text).expect("valid summary");
        assert_eq!(parsed.samples, 3);
    }

    #[test]
    fn unterminated_label_block_is_rejected() {
        let text = "# TYPE m counter\nm{a=\"b\" 1\n";
        assert!(parse_exposition(text).is_err());
    }
}
