//! Bounded observation storage: a ring buffer of recent samples with
//! exact running totals.

use serde::{Deserialize, Serialize};

/// Default window capacity used when a caller does not pick one.
pub const DEFAULT_WINDOW: usize = 1024;

/// A bounded sample window over an unbounded observation stream.
///
/// Stores at most `capacity` recent samples in a ring buffer —
/// **O(capacity) memory no matter how many observations arrive** —
/// alongside an exact running `count` and `sum` over the whole stream.
/// Distribution statistics (percentiles, min/max, mean) therefore
/// describe the recent window; totals (`count`, `sum`) describe the
/// entire stream.
///
/// This is a plain value type (no interior mutability): accumulators
/// that need one per instance embed it directly, and the shared
/// [`Histogram`](crate::Histogram) metric wraps one in a mutex.
///
/// # Example
///
/// ```
/// use telemetry::Window;
///
/// let mut w = Window::new(4);
/// for i in 0..100 {
///     w.observe(i as f64);
/// }
/// assert_eq!(w.len(), 4); // bounded
/// assert_eq!(w.count(), 100); // exact over the stream
/// assert_eq!(w.sum(), (0..100).sum::<i64>() as f64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Window {
    capacity: usize,
    /// Ring storage; grows up to `capacity` then wraps.
    samples: Vec<f64>,
    /// Next write position once the ring is full.
    next: usize,
    count: u64,
    sum: f64,
}

impl Default for Window {
    fn default() -> Self {
        Window::new(DEFAULT_WINDOW)
    }
}

impl Window {
    /// Empty window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be non-zero");
        Window { capacity, samples: Vec::new(), next: 0, count: 0, sum: 0.0 }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        if self.samples.len() < self.capacity {
            self.samples.push(value);
        } else {
            self.samples[self.next] = value;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Maximum number of retained samples.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently retained (`<= capacity`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observation has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Exact number of observations over the whole stream.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations over the whole stream.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The retained samples (window contents, unspecified order).
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Summarize the window and stream totals.
    #[must_use]
    pub fn summary(&self) -> WindowSummary {
        if self.samples.is_empty() {
            return WindowSummary {
                count: self.count,
                sum: self.sum,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                window_len: 0,
                window_capacity: self.capacity,
            };
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        // Nearest-rank percentile: the smallest sample with at least
        // p% of the window at or below it.
        let rank = |p: f64| -> f64 {
            let idx = ((p / 100.0) * n as f64).ceil() as usize;
            sorted[idx.clamp(1, n) - 1]
        };
        WindowSummary {
            count: self.count,
            sum: self.sum,
            min: sorted[0],
            max: sorted[n - 1],
            mean: sorted.iter().sum::<f64>() / n as f64,
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
            window_len: n,
            window_capacity: self.capacity,
        }
    }
}

/// Point-in-time summary of a [`Window`]: exact stream totals plus
/// distribution statistics over the retained window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowSummary {
    /// Observations over the whole stream (exact, not windowed).
    pub count: u64,
    /// Sum over the whole stream (exact, not windowed).
    pub sum: f64,
    /// Smallest sample in the window.
    pub min: f64,
    /// Largest sample in the window.
    pub max: f64,
    /// Mean of the window samples.
    pub mean: f64,
    /// Median (nearest-rank) of the window samples.
    pub p50: f64,
    /// 90th percentile of the window samples.
    pub p90: f64,
    /// 99th percentile of the window samples.
    pub p99: f64,
    /// Samples currently retained.
    pub window_len: usize,
    /// Maximum retained samples.
    pub window_capacity: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_stays_bounded_over_long_streams() {
        let mut w = Window::new(8);
        for i in 0..10_000 {
            w.observe(f64::from(i));
        }
        assert_eq!(w.len(), 8);
        assert_eq!(w.capacity(), 8);
        assert_eq!(w.count(), 10_000);
        // Ring holds exactly the most recent 8 observations.
        let mut kept: Vec<f64> = w.samples().to_vec();
        kept.sort_by(f64::total_cmp);
        assert_eq!(kept, (9992..10_000).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn totals_are_exact_while_percentiles_are_windowed() {
        let mut w = Window::new(4);
        for v in [1.0, 2.0, 3.0, 4.0, 100.0, 100.0, 100.0, 100.0] {
            w.observe(v);
        }
        let s = w.summary();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 410.0);
        // The early small samples were evicted.
        assert_eq!(s.p50, 100.0);
        assert_eq!(s.min, 100.0);
        assert_eq!(s.window_len, 4);
    }

    #[test]
    fn empty_summary_is_all_zero_except_capacity() {
        let s = Window::new(16).summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.window_len, 0);
        assert_eq!(s.window_capacity, 16);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut w = Window::new(100);
        for i in 1..=100 {
            w.observe(f64::from(i) / 1000.0);
        }
        let s = w.summary();
        assert!((s.p50 - 0.050).abs() < 1e-12);
        assert!((s.p90 - 0.090).abs() < 1e-12);
        assert!((s.p99 - 0.099).abs() < 1e-12);
        assert!((s.max - 0.100).abs() < 1e-12);
    }

    #[test]
    fn round_trips_through_json() {
        let mut w = Window::new(3);
        for v in [0.5, 1.5, 2.5, 3.5] {
            w.observe(v);
        }
        let json = serde_json::to_string(&w).expect("serialize");
        let back: Window = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, w);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = Window::new(0);
    }
}
