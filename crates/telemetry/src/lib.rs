//! Workspace-wide telemetry: a lightweight metrics layer every crate
//! in the dependency chain can record into without changing what it
//! computes.
//!
//! The paper's deployment arguments (Section IV-D — resource
//! allocation from abstention rates, concept-shift detection from
//! coverage) are operational: they require a running system that can
//! report coverage, risk, throughput and latency over time. This
//! crate is that reporting substrate:
//!
//! - [`Registry`] — a named collection of metrics. Cheap to clone
//!   (it is a handle); safe to record into from worker-pool threads.
//! - [`Counter`] — monotonically increasing `u64` (lock-free).
//! - [`Gauge`] — last-written `f64` value (lock-free).
//! - [`Histogram`] — an observation stream summarized over a bounded
//!   [`Window`]: a ring buffer of the most recent samples plus exact
//!   running `count`/`sum`, so accumulators are **O(window) memory
//!   over unbounded streams** while totals stay exact.
//! - [`Timer`] — scoped wall-clock timing that records elapsed
//!   seconds into a histogram when stopped or dropped.
//!
//! Two exposition formats read the same data:
//!
//! - [`Registry::snapshot`] → [`Snapshot`], a serde-serializable
//!   point-in-time view (embed it in any JSON report), and
//! - [`Registry::prometheus`] / [`Snapshot::to_prometheus`], the
//!   Prometheus text exposition format (counters, gauges, and
//!   summaries with quantiles). [`parse_exposition`] is the matching
//!   format checker used by CI smoke runs.
//!
//! # Bit-neutrality
//!
//! Telemetry only ever *reads* values the instrumented code already
//! computed (losses, counts, wall-clock durations) — it never touches
//! an RNG, reorders work, or feeds anything back into the computation.
//! Model outputs are bit-identical with telemetry enabled or disabled;
//! `crates/core/tests/telemetry_neutral.rs` proves it end-to-end.
//!
//! # Example
//!
//! ```
//! use telemetry::Registry;
//!
//! let registry = Registry::new();
//! let served = registry.counter("wafers_served_total", "Wafers routed");
//! let latency = registry.histogram("batch_seconds", "Batch latency", 256);
//! served.add(3);
//! latency.observe(0.004);
//! let snap = registry.snapshot();
//! assert!(!snap.is_empty());
//! let text = registry.prometheus();
//! let checked = telemetry::parse_exposition(&text).expect("valid exposition");
//! assert!(checked.samples > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exposition;
mod registry;
mod window;

pub use exposition::{parse_exposition, Exposition, ExpositionError};
pub use registry::{
    global, Counter, CounterSample, Gauge, GaugeSample, Histogram, HistogramSample, Registry,
    Snapshot, Timer,
};
pub use window::{Window, WindowSummary, DEFAULT_WINDOW};
