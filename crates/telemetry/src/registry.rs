//! The metrics registry and its handle types.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::window::{Window, WindowSummary};

/// A named collection of metrics.
///
/// `Registry` is a cheap handle (`Arc` inside): clone it freely into
/// trainers, augmenters and engines; all clones observe the same
/// metrics. Metric handles ([`Counter`], [`Gauge`], [`Histogram`]) are
/// themselves handles too — resolve them once (a registry lookup takes
/// a lock) and record through them lock-free (counters, gauges) or
/// under a short per-metric mutex (histograms).
///
/// Metric and label names must match the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*` for metrics, `[a-zA-Z_][a-zA-Z0-9_]*`
/// for labels); violations panic at registration, never at exposition.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Vec<Entry>>>,
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    handle: Handle,
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "summary",
        }
    }
}

/// Monotonically increasing counter (lock-free).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-written `f64` value (lock-free; stored as bit pattern).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Observation stream summarized over a bounded [`Window`].
///
/// Shared handle: recording takes a short mutex on the underlying
/// window. Memory is O(window capacity) regardless of stream length.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<Window>>);

impl Histogram {
    fn new(capacity: usize) -> Self {
        Histogram(Arc::new(Mutex::new(Window::new(capacity))))
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        self.0.lock().expect("histogram lock").observe(value);
    }

    /// Start a wall-clock timer that records elapsed seconds here.
    #[must_use]
    pub fn start_timer(&self) -> Timer {
        Timer { histogram: self.clone(), start: Instant::now(), recorded: false }
    }

    /// Time one closure, recording its elapsed seconds.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let timer = self.start_timer();
        let out = f();
        let _ = timer.stop();
        out
    }

    /// Point-in-time summary (stream totals + window distribution).
    #[must_use]
    pub fn summary(&self) -> WindowSummary {
        self.0.lock().expect("histogram lock").summary()
    }

    /// Samples currently retained (`<= capacity`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.lock().expect("histogram lock").len()
    }

    /// Whether no observation has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.lock().expect("histogram lock").is_empty()
    }

    /// Maximum retained samples.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.0.lock().expect("histogram lock").capacity()
    }
}

/// Scoped wall-clock timer: records elapsed seconds into its
/// histogram when [`Timer::stop`]ped, or on drop if never stopped.
#[derive(Debug)]
pub struct Timer {
    histogram: Histogram,
    start: Instant,
    recorded: bool,
}

impl Timer {
    /// Stop the timer, record the elapsed seconds, and return them.
    pub fn stop(mut self) -> f64 {
        self.recorded = true;
        let elapsed = self.start.elapsed().as_secs_f64();
        self.histogram.observe(elapsed);
        elapsed
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if !self.recorded {
            self.histogram.observe(self.start.elapsed().as_secs_f64());
        }
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Registry {
    /// Fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create an unlabeled counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid metric name, or is already
    /// registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Get or create a counter with labels.
    ///
    /// # Panics
    ///
    /// Panics on invalid metric/label names or a kind collision.
    #[must_use]
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        match self.get_or_insert(name, labels, help, || Handle::Counter(Counter::default())) {
            Handle::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create an unlabeled gauge.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or a kind collision.
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Get or create a gauge with labels.
    ///
    /// # Panics
    ///
    /// Panics on invalid metric/label names or a kind collision.
    #[must_use]
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        match self.get_or_insert(name, labels, help, || Handle::Gauge(Gauge::default())) {
            Handle::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create an unlabeled histogram with the given window
    /// capacity (ignored if the histogram already exists).
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name, zero capacity, or a kind
    /// collision.
    #[must_use]
    pub fn histogram(&self, name: &str, help: &str, capacity: usize) -> Histogram {
        self.histogram_with(name, &[], help, capacity)
    }

    /// Get or create a histogram with labels.
    ///
    /// # Panics
    ///
    /// Panics on invalid metric/label names, zero capacity, or a kind
    /// collision.
    #[must_use]
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        capacity: usize,
    ) -> Histogram {
        match self.get_or_insert(name, labels, help, || Handle::Histogram(Histogram::new(capacity)))
        {
            Handle::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(valid_metric_name(name), "invalid metric name `{name}`");
        for (label, _) in labels {
            assert!(valid_label_name(label), "invalid label name `{label}` on metric `{name}`");
        }
        let mut entries = self.inner.lock().expect("registry lock");
        if let Some(entry) = entries.iter().find(|e| e.name == name && key_eq(&e.labels, labels)) {
            return entry.handle.clone();
        }
        let handle = make();
        entries.push(Entry {
            name: name.to_string(),
            labels: labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Point-in-time snapshot of every registered metric, in
    /// registration order (deterministic exposition).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.inner.lock().expect("registry lock");
        let mut snap = Snapshot::default();
        for e in entries.iter() {
            match &e.handle {
                Handle::Counter(c) => snap.counters.push(CounterSample {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    help: e.help.clone(),
                    value: c.get(),
                }),
                Handle::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    help: e.help.clone(),
                    value: g.get(),
                }),
                Handle::Histogram(h) => snap.histograms.push(HistogramSample {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    help: e.help.clone(),
                    summary: h.summary(),
                }),
            }
        }
        snap
    }

    /// The snapshot as pretty-printed JSON.
    #[must_use]
    pub fn json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("snapshot serializes")
    }

    /// The snapshot in the Prometheus text exposition format.
    #[must_use]
    pub fn prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

fn key_eq(stored: &[(String, String)], query: &[(&str, &str)]) -> bool {
    stored.len() == query.len()
        && stored.iter().zip(query).all(|((k, v), &(qk, qv))| k == qk && v == qv)
}

/// One counter reading in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text.
    pub help: String,
    /// Counter value.
    pub value: u64,
}

/// One gauge reading in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text.
    pub help: String,
    /// Gauge value.
    pub value: f64,
}

/// One histogram reading in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text.
    pub help: String,
    /// Stream totals + window distribution.
    pub summary: WindowSummary,
}

/// Serializable point-in-time view of a [`Registry`] — the JSON
/// exposition format, and the source the Prometheus text format is
/// rendered from.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Counter readings, in registration order.
    pub counters: Vec<CounterSample>,
    /// Gauge readings, in registration order.
    pub gauges: Vec<GaugeSample>,
    /// Histogram readings, in registration order.
    pub histograms: Vec<HistogramSample>,
}

impl Snapshot {
    /// Whether the snapshot holds no metrics at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render the Prometheus text exposition format.
    ///
    /// Counters and gauges expose as their native types; histograms
    /// expose as Prometheus *summaries*: `{quantile="..."}` sample
    /// lines over the bounded window plus exact `_sum` / `_count`
    /// stream totals.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<String> = Vec::new();
        let mut emit_header = |out: &mut String, name: &str, help: &str, kind: &str| {
            if seen.iter().any(|s| s == name) {
                return;
            }
            seen.push(name.to_string());
            if !help.is_empty() {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
            }
            out.push_str(&format!("# TYPE {name} {kind}\n"));
        };

        for c in &self.counters {
            emit_header(&mut out, &c.name, &c.help, "counter");
            out.push_str(&format!("{}{} {}\n", c.name, render_labels(&c.labels, None), c.value));
        }
        for g in &self.gauges {
            emit_header(&mut out, &g.name, &g.help, "gauge");
            out.push_str(&format!(
                "{}{} {}\n",
                g.name,
                render_labels(&g.labels, None),
                render_value(g.value)
            ));
        }
        for h in &self.histograms {
            emit_header(&mut out, &h.name, &h.help, "summary");
            for (q, v) in [("0.5", h.summary.p50), ("0.9", h.summary.p90), ("0.99", h.summary.p99)]
            {
                out.push_str(&format!(
                    "{}{} {}\n",
                    h.name,
                    render_labels(&h.labels, Some(q)),
                    render_value(v)
                ));
            }
            let labels = render_labels(&h.labels, None);
            out.push_str(&format!("{}_sum{labels} {}\n", h.name, render_value(h.summary.sum)));
            out.push_str(&format!("{}_count{labels} {}\n", h.name, h.summary.count));
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], quantile: Option<&str>) -> String {
    let mut pairs: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some(q) = quantile {
        pairs.push(format!("quantile=\"{q}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// The process-wide registry.
///
/// Infrastructure with no natural owner — the `nn::pool` worker pool —
/// records here; everything with an owning object (trainer, augmenter,
/// serving engine) takes an explicit [`Registry`] instead so tests and
/// concurrent pipelines stay isolated.
#[must_use]
pub fn global() -> Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("requests_total", "Requests");
        let b = r.counter("requests_total", "Requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels are a different series.
        let c = r.counter_with("requests_total", &[("route", "serve")], "Requests");
        c.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(c.get(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 2);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("a_total", "A").add(5);
        r.gauge("b", "B").set(1.25);
        let h = r.histogram("c_seconds", "C", 8);
        h.observe(0.5);
        h.observe(1.5);
        let snap = r.snapshot();
        let json = r.json();
        let back: Snapshot = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(back, snap);
        assert!(!snap.is_empty());
    }

    #[test]
    fn prometheus_text_has_headers_and_samples() {
        let r = Registry::new();
        r.counter_with("wafers_total", &[("class", "Donut")], "Wafers").add(7);
        r.gauge("coverage", "Coverage").set(0.9);
        r.histogram("latency_seconds", "Latency", 4).observe(0.25);
        let text = r.prometheus();
        assert!(text.contains("# TYPE wafers_total counter"));
        assert!(text.contains("wafers_total{class=\"Donut\"} 7"));
        assert!(text.contains("# TYPE coverage gauge"));
        assert!(text.contains("coverage 0.9"));
        assert!(text.contains("# TYPE latency_seconds summary"));
        assert!(text.contains("latency_seconds{quantile=\"0.5\"} 0.25"));
        assert!(text.contains("latency_seconds_sum 0.25"));
        assert!(text.contains("latency_seconds_count 1"));
    }

    #[test]
    fn timer_records_on_stop_and_on_drop() {
        let r = Registry::new();
        let h = r.histogram("t_seconds", "T", 4);
        let elapsed = h.start_timer().stop();
        assert!(elapsed >= 0.0);
        {
            let _t = h.start_timer();
        }
        h.time(|| ());
        assert_eq!(h.summary().count, 3);
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("telemetry_test_global_total", "Test");
        let before = c.get();
        global().counter("telemetry_test_global_total", "Test").inc();
        assert_eq!(c.get(), before + 1);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        let _ = Registry::new().counter("bad name", "nope");
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_collisions_are_rejected() {
        let r = Registry::new();
        let _ = r.counter("x_total", "X");
        let _ = r.gauge("x_total", "X");
    }
}
