//! Telemetry must be a pure observer of augmentation: `balance` with
//! a registry attached produces the exact same dataset as without
//! one, while the registry records the per-class work it watched.

use augment::{AugmentConfig, Augmenter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use telemetry::Registry;
use wafermap::gen::{generate, GenConfig, Sample};
use wafermap::{Dataset, DefectClass};

const GRID: usize = 16;

/// A deliberately imbalanced dataset: plenty of Center, few Donut.
fn imbalanced_dataset() -> Dataset {
    let cfg = GenConfig::new(GRID);
    let mut rng = StdRng::seed_from_u64(21);
    let mut ds = Dataset::new(GRID);
    for _ in 0..12 {
        ds.push(Sample::original(
            generate(DefectClass::Center, &cfg, &mut rng),
            DefectClass::Center,
        ));
    }
    for _ in 0..3 {
        ds.push(Sample::original(generate(DefectClass::Donut, &cfg, &mut rng), DefectClass::Donut));
    }
    ds
}

#[test]
fn balance_is_identical_with_telemetry_attached() {
    let dataset = imbalanced_dataset();
    let config = AugmentConfig::new(12).with_channels([4, 4, 4]).with_ae_epochs(1);

    let bare = Augmenter::new(config, 4).balance(&dataset);

    let registry = Registry::new();
    let wired = Augmenter::new(config, 4).with_telemetry(registry.clone()).balance(&dataset);

    // Bit-identical output: same synthetics, same order, same dies.
    assert_eq!(bare, wired, "telemetry changed the augmented dataset");
    assert!(wired.len() > dataset.len(), "balancing must add synthetics");

    // ...while the registry saw the per-class work.
    let snapshot = registry.snapshot();
    assert!(!snapshot.is_empty(), "balance left no telemetry behind");
    let synthetics = snapshot
        .counters
        .iter()
        .find(|c| c.name == "augment_synthetics_total")
        .expect("augmenter registers a synthetics counter");
    assert_eq!(
        synthetics.value,
        (wired.len() - dataset.len()) as u64,
        "synthetics counter must match the dataset growth"
    );
    assert!(
        snapshot.counters.iter().any(|c| c.name == "augment_classes_total" && c.value > 0),
        "at least one class must have been augmented"
    );
    let text = registry.prometheus();
    telemetry::parse_exposition(&text).expect("valid Prometheus exposition");
}
