use nn::layers::{Conv2d, MaxPool2d, Relu, Sigmoid, Upsample2d};
use nn::loss::mse;
use nn::optim::Adam;
use nn::{Layer, Sequential, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Architecture of the convolutional auto-encoder (paper Fig. 3).
///
/// Encoder: three 5×5 convolutions, each followed by ReLU and 2×2
/// max-pooling, giving a latent feature map of
/// `channels[2] x grid/8 x grid/8`. Decoder: the mirror image, with
/// factor-2 nearest upsampling replacing pooling and a final sigmoid
/// so reconstructions live in `[0, 1]` (the normalized wafer pixel
/// range).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AutoencoderConfig {
    /// Input wafer grid side length (must be a multiple of 8).
    pub grid: usize,
    /// Encoder filter counts, shallow to deep.
    pub channels: [usize; 3],
    /// Convolution kernel size (the paper uses 5×5 throughout).
    pub kernel: usize,
}

impl AutoencoderConfig {
    /// Paper-style configuration for a given grid.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is not a positive multiple of 8.
    #[must_use]
    pub fn for_grid(grid: usize) -> Self {
        assert!(grid > 0 && grid.is_multiple_of(8), "grid must be a positive multiple of 8");
        AutoencoderConfig { grid, channels: [16, 8, 8], kernel: 5 }
    }

    /// Override the encoder channel counts.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    #[must_use]
    pub fn with_channels(mut self, channels: [usize; 3]) -> Self {
        assert!(channels.iter().all(|&c| c > 0), "channel counts must be non-zero");
        self.channels = channels;
        self
    }

    /// Latent tensor shape `[channels[2], grid/8, grid/8]`.
    #[must_use]
    pub fn latent_shape(&self) -> [usize; 3] {
        [self.channels[2], self.grid / 8, self.grid / 8]
    }

    /// Number of scalars in the latent representation.
    #[must_use]
    pub fn latent_len(&self) -> usize {
        let [c, h, w] = self.latent_shape();
        c * h * w
    }
}

/// Convolutional auto-encoder for one wafer defect class.
///
/// # Example
///
/// ```
/// use augment::{AutoencoderConfig, ConvAutoencoder};
/// use nn::Tensor;
///
/// let config = AutoencoderConfig::for_grid(16).with_channels([4, 4, 4]);
/// let mut ae = ConvAutoencoder::new(&config, 0);
/// let x = Tensor::full(&[2, 1, 16, 16], 0.5);
/// let z = ae.encode(&x);
/// assert_eq!(z.shape(), &[2, 4, 2, 2]);
/// let recon = ae.decode(&z);
/// assert_eq!(recon.shape(), x.shape());
/// ```
#[derive(Debug)]
pub struct ConvAutoencoder {
    config: AutoencoderConfig,
    encoder: Sequential,
    decoder: Sequential,
}

impl ConvAutoencoder {
    /// Freshly initialized auto-encoder.
    #[must_use]
    pub fn new(config: &AutoencoderConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let [c1, c2, c3] = config.channels;
        let k = config.kernel;
        let encoder = Sequential::new()
            .with(Conv2d::same(1, c1, k, &mut rng))
            .with(Relu::new())
            .with(MaxPool2d::new(2))
            .with(Conv2d::same(c1, c2, k, &mut rng))
            .with(Relu::new())
            .with(MaxPool2d::new(2))
            .with(Conv2d::same(c2, c3, k, &mut rng))
            .with(Relu::new())
            .with(MaxPool2d::new(2));
        let decoder = Sequential::new()
            .with(Upsample2d::new(2))
            .with(Conv2d::same(c3, c2, k, &mut rng))
            .with(Relu::new())
            .with(Upsample2d::new(2))
            .with(Conv2d::same(c2, c1, k, &mut rng))
            .with(Relu::new())
            .with(Upsample2d::new(2))
            .with(Conv2d::same(c1, 1, k, &mut rng))
            .with(Sigmoid::new());
        ConvAutoencoder { config: *config, encoder, decoder }
    }

    /// The architecture configuration.
    #[must_use]
    pub fn config(&self) -> &AutoencoderConfig {
        &self.config
    }

    /// Encode a `[N, 1, grid, grid]` batch into latent maps
    /// `[N, c3, grid/8, grid/8]`.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the configuration.
    pub fn encode(&mut self, images: &Tensor) -> Tensor {
        let s = images.shape();
        assert_eq!(
            s,
            &[s[0], 1, self.config.grid, self.config.grid],
            "expected [N, 1, {g}, {g}] input",
            g = self.config.grid
        );
        self.encoder.forward(images)
    }

    /// Decode latent maps back to `[N, 1, grid, grid]` images in
    /// `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the latent shape does not match the configuration.
    pub fn decode(&mut self, latent: &Tensor) -> Tensor {
        let [c, h, w] = self.config.latent_shape();
        let s = latent.shape();
        assert_eq!(s, &[s[0], c, h, w], "expected [N, {c}, {h}, {w}] latent");
        self.decoder.forward(latent)
    }

    /// Full reconstruction pass.
    pub fn reconstruct(&mut self, images: &Tensor) -> Tensor {
        let z = self.encode(images);
        self.decode(&z)
    }

    /// Total trainable parameter count.
    #[must_use]
    pub fn param_count(&mut self) -> usize {
        self.encoder.param_count() + self.decoder.param_count()
    }

    /// Train the auto-encoder to reconstruct `images`
    /// (`[N, 1, grid, grid]`) with MSE loss and Adam.
    ///
    /// Returns the mean reconstruction loss of each epoch.
    ///
    /// # Panics
    ///
    /// Panics if `images` is empty or hyper-parameters are degenerate.
    pub fn train(
        &mut self,
        images: &Tensor,
        epochs: usize,
        batch_size: usize,
        learning_rate: f32,
        seed: u64,
    ) -> Vec<f32> {
        let n = images.shape()[0];
        assert!(n > 0, "cannot train on an empty batch");
        assert!(epochs > 0 && batch_size > 0, "degenerate training parameters");
        let pixels = self.config.grid * self.config.grid;
        let mut adam = Adam::new(learning_rate);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut seen = 0usize;
            for batch in order.chunks(batch_size) {
                let mut data = Vec::with_capacity(batch.len() * pixels);
                for &i in batch {
                    data.extend_from_slice(&images.data()[i * pixels..(i + 1) * pixels]);
                }
                let x =
                    Tensor::from_vec(data, &[batch.len(), 1, self.config.grid, self.config.grid]);
                let recon = self.reconstruct(&x);
                let (loss, grad) = mse(&recon, &x);
                self.encoder.zero_grad();
                self.decoder.zero_grad();
                let grad_latent = self.decoder.backward(&grad);
                let _ = self.encoder.backward(&grad_latent);
                adam.step_multi(&mut [&mut self.encoder, &mut self.decoder]);
                loss_sum += f64::from(loss) * batch.len() as f64;
                seen += batch.len();
            }
            history.push((loss_sum / seen as f64) as f32);
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AutoencoderConfig {
        AutoencoderConfig::for_grid(16).with_channels([4, 4, 4])
    }

    #[test]
    fn shapes_roundtrip() {
        let mut ae = ConvAutoencoder::new(&tiny(), 0);
        let x = Tensor::full(&[3, 1, 16, 16], 0.5);
        let z = ae.encode(&x);
        assert_eq!(z.shape(), &[3, 4, 2, 2]);
        let y = ae.decode(&z);
        assert_eq!(y.shape(), &[3, 1, 16, 16]);
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn latent_math() {
        let cfg = AutoencoderConfig::for_grid(32);
        assert_eq!(cfg.latent_shape(), [8, 4, 4]);
        assert_eq!(cfg.latent_len(), 128);
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let mut ae = ConvAutoencoder::new(&tiny(), 1);
        // A fixed batch of simple structured images: half bright,
        // half mid-level.
        let mut data = Vec::new();
        for i in 0..8 {
            let v = if i % 2 == 0 { 1.0 } else { 0.5 };
            data.extend(std::iter::repeat_n(v, 256));
        }
        let x = Tensor::from_vec(data, &[8, 1, 16, 16]);
        let history = ae.train(&x, 30, 8, 5e-3, 2);
        assert!(
            history.last().copied().expect("history") < history[0] * 0.5,
            "loss did not halve: {history:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = tiny();
        let mut a = ConvAutoencoder::new(&cfg, 3);
        let mut b = ConvAutoencoder::new(&cfg, 3);
        let x = Tensor::full(&[1, 1, 16, 16], 0.7);
        assert_eq!(a.reconstruct(&x).data(), b.reconstruct(&x).data());
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bad_grid_rejected() {
        let _ = AutoencoderConfig::for_grid(12);
    }

    #[test]
    #[should_panic(expected = "latent")]
    fn decode_validates_shape() {
        let mut ae = ConvAutoencoder::new(&tiny(), 4);
        let _ = ae.decode(&Tensor::zeros(&[1, 3, 2, 2]));
    }
}
