//! Algorithm 1: synthetic-sample generation and dataset balancing.

use std::time::Instant;

use nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use telemetry::Registry;

use crate::{AutoencoderConfig, ConvAutoencoder};
use wafermap::gen::gaussian;
use wafermap::{ops, Dataset, DefectClass, Sample, WaferMap};

/// Parameters of the augmentation pipeline.
///
/// `target` is the paper's `T` (8000 at full WM-811K scale — scale it
/// with your dataset); `sigma0` the latent perturbation std; `sp_rate`
/// the salt-and-pepper flip fraction; `weight` the synthetic-sample
/// loss weight `w < 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Target minimum samples per class `T` (Algorithm 1 input).
    pub target: usize,
    /// Latent Gaussian noise std `σ0` (Algorithm 1, line 5).
    pub sigma0: f32,
    /// Salt-and-pepper flip fraction (Algorithm 1, line 9).
    pub sp_rate: f32,
    /// Loss weight `w < 1` assigned to synthetic samples.
    pub weight: f32,
    /// Auto-encoder filter counts.
    pub channels: [usize; 3],
    /// Auto-encoder training epochs per class.
    pub ae_epochs: usize,
    /// Auto-encoder mini-batch size.
    pub ae_batch: usize,
    /// Auto-encoder Adam learning rate.
    pub ae_learning_rate: f32,
}

impl AugmentConfig {
    /// Defaults tuned for CPU-scale experiments: `σ0 = 0.1`, 1%
    /// salt-and-pepper, `w = 0.5`, 20 auto-encoder epochs.
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero.
    #[must_use]
    pub fn new(target: usize) -> Self {
        assert!(target > 0, "target must be non-zero");
        AugmentConfig {
            target,
            sigma0: 0.1,
            sp_rate: 0.01,
            weight: 0.5,
            channels: [16, 8, 8],
            ae_epochs: 20,
            ae_batch: 32,
            ae_learning_rate: 3e-3,
        }
    }

    /// Override the latent noise std `σ0`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma0` is negative.
    #[must_use]
    pub fn with_sigma0(mut self, sigma0: f32) -> Self {
        assert!(sigma0 >= 0.0, "sigma0 must be non-negative");
        self.sigma0 = sigma0;
        self
    }

    /// Override the salt-and-pepper rate.
    #[must_use]
    pub fn with_sp_rate(mut self, rate: f32) -> Self {
        self.sp_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Override the synthetic loss weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not in `(0, 1]`.
    #[must_use]
    pub fn with_weight(mut self, weight: f32) -> Self {
        assert!(weight > 0.0 && weight <= 1.0, "weight must be in (0, 1]");
        self.weight = weight;
        self
    }

    /// Override the auto-encoder channel counts.
    #[must_use]
    pub fn with_channels(mut self, channels: [usize; 3]) -> Self {
        self.channels = channels;
        self
    }

    /// Override the auto-encoder training epochs.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    #[must_use]
    pub fn with_ae_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "epochs must be non-zero");
        self.ae_epochs = epochs;
        self
    }
}

/// Runs Algorithm 1 over the under-represented classes of a dataset.
///
/// See the crate-level docs for an example.
#[derive(Debug, Clone)]
pub struct Augmenter {
    config: AugmentConfig,
    seed: u64,
    telemetry: Option<Registry>,
}

/// Metric handles the augmenter records into, resolved lazily per
/// class so [`Augmenter::balance`]'s pool workers share one registry.
/// Per-class metrics carry a `class` label. Instrumentation only reads
/// already-computed values and wall-clock time — synthetics are
/// bit-identical with telemetry on or off.
struct AugmentMetrics<'a> {
    registry: &'a Registry,
    classes: telemetry::Counter,
    synthetics: telemetry::Counter,
}

impl<'a> AugmentMetrics<'a> {
    fn new(registry: &'a Registry) -> Self {
        AugmentMetrics {
            registry,
            classes: registry.counter("augment_classes_total", "Classes augmented"),
            synthetics: registry.counter("augment_synthetics_total", "Synthetic samples generated"),
        }
    }

    fn record_class(&self, class: DefectClass, ae_seconds: f64, gen_seconds: f64, count: usize) {
        let name = class.to_string();
        let label = [("class", name.as_str())];
        let label = label.as_slice();
        self.classes.inc();
        self.synthetics.add(count as u64);
        self.registry
            .counter_with("augment_class_synthetics_total", label, "Synthetics for this class")
            .add(count as u64);
        self.registry
            .gauge_with(
                "augment_ae_train_seconds",
                label,
                "Auto-encoder training time for this class",
            )
            .set(ae_seconds);
        self.registry
            .gauge_with(
                "augment_generate_seconds",
                label,
                "Synthetic generation time for this class",
            )
            .set(gen_seconds);
    }
}

impl Augmenter {
    /// New augmenter with the given configuration and RNG seed.
    #[must_use]
    pub fn new(config: AugmentConfig, seed: u64) -> Self {
        Augmenter { config, seed, telemetry: None }
    }

    /// Record per-class auto-encoder training time and synthetic
    /// counts into `registry` during [`Augmenter::augment_class`] and
    /// [`Augmenter::balance`]. Read-only instrumentation: generated
    /// synthetics are bit-identical with or without it.
    #[must_use]
    pub fn with_telemetry(mut self, registry: Registry) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// The pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &AugmentConfig {
        &self.config
    }

    /// Number of rotations per original sample Algorithm 1 will use
    /// for a class with `n_cl` originals: `n_r = ceil(T / n_cl) − 1`.
    #[must_use]
    pub fn rotations_for(&self, n_cl: usize) -> usize {
        if n_cl == 0 {
            return 0;
        }
        (self.config.target.div_ceil(n_cl)).saturating_sub(1)
    }

    /// Run Algorithm 1 for one class: train a class-specific
    /// auto-encoder on the class's samples in `dataset` and generate
    /// `n_cl · n_r` synthetic samples.
    ///
    /// Returns an empty vector when the class is absent or already at
    /// or above the target `T`.
    #[must_use]
    pub fn augment_class(&self, dataset: &Dataset, class: DefectClass) -> Vec<Sample> {
        let originals = dataset.of_class(class);
        let n_cl = originals.len();
        let n_r = self.rotations_for(n_cl);
        if n_cl == 0 || n_r == 0 {
            return Vec::new();
        }
        let grid = dataset.grid();
        let pixels = grid * grid;
        let mut rng = StdRng::seed_from_u64(self.seed ^ (class.index() as u64) << 32);
        let metrics = self.telemetry.as_ref().map(AugmentMetrics::new);

        // Line 1: train the class auto-encoder.
        let ae_start = Instant::now();
        let ae_config = AutoencoderConfig::for_grid(grid).with_channels(self.config.channels);
        let mut ae = ConvAutoencoder::new(&ae_config, self.seed.wrapping_add(class.index() as u64));
        let mut train_data = Vec::with_capacity(n_cl * pixels);
        for s in &originals {
            train_data.extend(s.map.to_image());
        }
        let train_images = Tensor::from_vec(train_data, &[n_cl, 1, grid, grid]);
        let _ = ae.train(
            &train_images,
            self.config.ae_epochs,
            self.config.ae_batch,
            self.config.ae_learning_rate,
            self.seed,
        );
        let ae_seconds = ae_start.elapsed().as_secs_f64();
        let gen_start = Instant::now();

        // Lines 2–12: per-original latent perturbation, decode,
        // quantize, rotate, salt-and-pepper.
        let mut synthetic = Vec::with_capacity(n_cl * n_r);
        for s in &originals {
            let image = Tensor::from_vec(s.map.to_image(), &[1, 1, grid, grid]);
            let z = ae.encode(&image);
            for i in 0..n_r {
                let mut z_prime = z.clone();
                for v in z_prime.data_mut() {
                    *v += gaussian(&mut rng) * self.config.sigma0;
                }
                let decoded = ae.decode(&z_prime);
                let quantized = ops::quantize(decoded.data(), &s.map)
                    .expect("decoder output matches the wafer grid");
                let angle = if n_r > 1 { i as f32 * 360.0 / n_r as f32 } else { 0.0 };
                let rotated = ops::rotate(&quantized, angle);
                let noisy = ops::salt_and_pepper(&rotated, self.config.sp_rate, &mut rng);
                synthetic.push(Sample::synthetic(noisy, class, self.config.weight));
            }
        }
        if let Some(m) = &metrics {
            m.record_class(class, ae_seconds, gen_start.elapsed().as_secs_f64(), synthetic.len());
        }
        synthetic
    }

    /// Balance a dataset: run [`Augmenter::augment_class`] for every
    /// **defect** class (the paper leaves the majority `None` class
    /// untouched) whose count is below the target, and return the
    /// merged dataset (originals first, then synthetics).
    #[must_use]
    pub fn balance(&self, dataset: &Dataset) -> Dataset {
        let counts = dataset.class_counts();
        // Each under-target class trains its own auto-encoder from its
        // own seeded RNG, so classes are independent work items; fan
        // them out across the worker pool and merge the results in
        // `DefectClass::ALL` order, exactly as the serial loop did.
        let classes: Vec<DefectClass> = DefectClass::ALL
            .into_iter()
            .filter(|class| class.is_defect() && counts[class.index()] < self.config.target)
            .collect();
        let synthetics =
            nn::pool::parallel_map(classes.len(), |i| self.augment_class(dataset, classes[i]));
        let mut out = dataset.clone();
        for synth in synthetics {
            out.extend(synth);
        }
        out
    }

    /// Generate `(original, synthetic)` preview pairs for one class —
    /// the side-by-side comparison of the paper's Fig. 4.
    ///
    /// Returns up to `count` pairs (fewer if the class is smaller).
    #[must_use]
    pub fn preview_pairs(
        &self,
        dataset: &Dataset,
        class: DefectClass,
        count: usize,
    ) -> Vec<(WaferMap, WaferMap)> {
        let synth = self.augment_class(dataset, class);
        let originals = dataset.of_class(class);
        originals
            .iter()
            .zip(synth.chunks(self.rotations_for(originals.len()).max(1)))
            .take(count)
            .map(|(orig, group)| (orig.map.clone(), group[0].map.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafermap::gen::SyntheticWm811k;

    fn small_train() -> Dataset {
        let (train, _) = SyntheticWm811k::new(16).scale(0.002).seed(11).build();
        train
    }

    fn fast_config(target: usize) -> AugmentConfig {
        AugmentConfig::new(target).with_channels([4, 4, 4]).with_ae_epochs(1)
    }

    #[test]
    fn rotation_count_formula_matches_algorithm_1() {
        let augmenter = Augmenter::new(fast_config(8000), 0);
        // Paper numbers: Donut has 329 originals, T = 8000:
        // n_r = ceil(8000/329) − 1 = 25 − 1 = 24.
        assert_eq!(augmenter.rotations_for(329), 24);
        // Near-Full: ceil(8000/49) − 1 = 164 − 1 = 163.
        assert_eq!(augmenter.rotations_for(49), 163);
        assert_eq!(augmenter.rotations_for(0), 0);
        // Already at target: no synthetics.
        assert_eq!(augmenter.rotations_for(8000), 0);
    }

    #[test]
    fn augment_class_produces_n_cl_times_n_r_samples() {
        let train = small_train();
        let n_cl = train.of_class(DefectClass::Donut).len();
        let augmenter = Augmenter::new(fast_config(n_cl * 3), 1);
        let synth = augmenter.augment_class(&train, DefectClass::Donut);
        assert_eq!(synth.len(), n_cl * 2);
        assert!(synth.iter().all(|s| s.label == DefectClass::Donut));
        assert!(synth.iter().all(|s| s.synthetic));
    }

    #[test]
    fn synthetic_maps_are_valid_three_level_wafers() {
        let train = small_train();
        let augmenter = Augmenter::new(fast_config(20), 2);
        let synth = augmenter.augment_class(&train, DefectClass::Scratch);
        let reference = WaferMap::blank(16, 16);
        for s in &synth {
            assert_eq!(s.map.on_wafer_count(), reference.on_wafer_count(), "mask broken");
        }
    }

    #[test]
    fn balance_raises_defect_classes_to_target() {
        let train = small_train();
        let target = 30;
        let augmenter = Augmenter::new(fast_config(target), 3);
        let balanced = augmenter.balance(&train);
        let counts = balanced.class_counts();
        for class in DefectClass::ALL {
            if class.is_defect() {
                assert!(
                    counts[class.index()] >= target.min(train.class_counts()[class.index()].max(1)),
                    "{class} not raised: {}",
                    counts[class.index()]
                );
            }
        }
        // None untouched.
        assert_eq!(
            counts[DefectClass::None.index()],
            train.class_counts()[DefectClass::None.index()]
        );
        assert!(balanced.len() > train.len());
    }

    #[test]
    fn balance_reduces_imbalance_ratio() {
        let train = small_train();
        let augmenter = Augmenter::new(fast_config(40), 4);
        let balanced = augmenter.balance(&train);
        let imbalance = |ds: &Dataset| {
            let counts = ds.class_counts();
            let defects: Vec<usize> = DefectClass::ALL
                .iter()
                .filter(|c| c.is_defect())
                .map(|c| counts[c.index()])
                .collect();
            *defects.iter().max().expect("defects") as f64
                / *defects.iter().min().expect("defects") as f64
        };
        assert!(imbalance(&balanced) < imbalance(&train));
    }

    #[test]
    fn preview_pairs_share_class_geometry() {
        let train = small_train();
        let augmenter = Augmenter::new(fast_config(10), 5);
        let pairs = augmenter.preview_pairs(&train, DefectClass::Center, 2);
        assert!(!pairs.is_empty());
        for (orig, synth) in &pairs {
            assert_eq!(orig.width(), synth.width());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let train = small_train();
        let a = Augmenter::new(fast_config(12), 6).augment_class(&train, DefectClass::Donut);
        let b = Augmenter::new(fast_config(12), 6).augment_class(&train, DefectClass::Donut);
        assert_eq!(a, b);
    }

    #[test]
    fn synthetic_center_samples_keep_radial_signature() {
        // Centre-pattern synthetics should still be denser in the
        // inner radial bins than the outer ones (rotation preserves
        // radial structure; the AE + noise must not destroy it).
        let train = small_train();
        // Seed 3 is representative: 9 of 10 small seeds show the inner
        // bins at 2-3x the outer density (seed 8's auto-encoder learns
        // a degenerate reconstruction and is the lone outlier).
        let augmenter = Augmenter::new(fast_config(30).with_ae_epochs(6), 3);
        let synth = augmenter.augment_class(&train, DefectClass::Center);
        assert!(!synth.is_empty());
        let mut inner = 0.0f32;
        let mut outer = 0.0f32;
        for s in &synth {
            let profile = wafermap::stats::radial_profile(&s.map, 4);
            inner += profile[0] + profile[1];
            outer += profile[3];
        }
        assert!(
            inner > outer,
            "synthetic Center samples lost their radial signature: inner {inner} outer {outer}"
        );
    }

    #[test]
    fn weight_propagates_to_all_synthetics() {
        let train = small_train();
        let augmenter = Augmenter::new(fast_config(12).with_weight(0.25), 9);
        for s in augmenter.augment_class(&train, DefectClass::Location) {
            assert_eq!(s.weight, 0.25);
            assert!(s.synthetic);
        }
    }
}
