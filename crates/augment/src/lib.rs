//! Convolutional-auto-encoder data augmentation for under-represented
//! wafer defect classes (the paper's Section III-B and Algorithm 1).
//!
//! The pipeline for one under-represented class `cl`:
//!
//! 1. Train a [`ConvAutoencoder`] to reconstruct the class's wafer
//!    maps (Fig. 3 architecture: 5×5 convolutions with 2×2 max-pool in
//!    the encoder, a mirrored decoder with upsampling).
//! 2. For every original image, compute its latent representation `z`,
//!    perturb it with zero-mean Gaussian noise of std `σ0`, decode,
//!    **quantize** to the three wafer pixel levels, **rotate** by
//!    `i·360/n_r`, and add **salt-and-pepper** noise
//!    (Algorithm 1, lines 3–9).
//! 3. Tag the synthetic samples with loss weight `w < 1` so the
//!    training objective penalizes original-sample mistakes `1/w`
//!    times more.
//!
//! # Example
//!
//! ```
//! use augment::{AugmentConfig, Augmenter};
//! use wafermap::gen::SyntheticWm811k;
//! use wafermap::DefectClass;
//!
//! let (train, _) = SyntheticWm811k::new(16).scale(0.002).seed(3).build();
//! let config = AugmentConfig::new(12).with_ae_epochs(1).with_channels([4, 4, 4]);
//! let augmenter = Augmenter::new(config, 7);
//! let synth = augmenter.augment_class(&train, DefectClass::Donut);
//! assert!(!synth.is_empty());
//! assert!(synth.iter().all(|s| s.synthetic && s.weight < 1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoencoder;
mod pipeline;

pub use autoencoder::{AutoencoderConfig, ConvAutoencoder};
pub use pipeline::{AugmentConfig, Augmenter};
