//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate
//! provides the small serde surface the workspace uses: a
//! [`Serialize`]/[`Deserialize`] trait pair over an in-memory JSON
//! [`Value`] model, and re-exported derive macros (from the sibling
//! `serde_derive` stand-in) that understand `#[serde(skip)]` and
//! `#[serde(skip, default = "path")]`.
//!
//! The data model is deliberately JSON-shaped rather than fully
//! generic: every serializer in this workspace is `serde_json`, so a
//! tree of [`Value`]s loses nothing and keeps the implementation
//! auditable. Conventions match upstream serde's JSON encoding:
//! structs are objects, unit enum variants are strings, newtype /
//! tuple / struct variants are single-key objects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// In-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (also covers unsigned values up to `i64::MAX`;
    /// larger values use [`Value::UInt`]).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Key order is preserved (insertion order), which
    /// keeps serialized output deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Short human label for error messages ("object", "string", ...).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when deserializing a [`Value`] into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Error with a custom message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }

    /// "missing field" error.
    #[must_use]
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// "wrong JSON type" error.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value tree does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom("negative integer for unsigned field"))?,
                    Value::UInt(n) => *n,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value)
            .and_then(|n| isize::try_from(n).map_err(|_| Error::custom("integer out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            // Non-finite floats serialize as null (JSON has no NaN).
            Value::Null => Ok(f64::NAN),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| Error::expected("single-char string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---- container impls -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_array().ok_or_else(|| Error::expected("array", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_array().ok_or_else(|| Error::expected("array", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_array().ok_or_else(|| Error::expected("array", value))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::expected("array", value))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(Error::custom(format!(
                        "expected array of length {want}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.25f32.to_value()).unwrap(), 1.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn big_u64_round_trips() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2.5f32), (3, 4.5)];
        assert_eq!(Vec::<(usize, f32)>::from_value(&v.to_value()).unwrap(), v);
        let arr = [9usize, 8, 7];
        assert_eq!(<[usize; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let none: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u8::from_value(&Value::String("x".into())).is_err());
        assert!(u8::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
