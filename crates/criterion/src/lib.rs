//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches
//! use — [`Criterion::benchmark_group`], [`Throughput`],
//! [`BenchmarkId`], `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], and the `criterion_group!` / `criterion_main!`
//! macros — with a simple wall-clock measurement loop: warm-up, then
//! a fixed number of timed samples whose median and throughput are
//! printed to stdout. There is no statistical analysis, plotting, or
//! result persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration (e.g. FLOPs or samples).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark name with a parameter, printed as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id for `function_name` at `parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` `self.iters` times, recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self, throughput: None, sample_size: None }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, None, self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(name, self.throughput, samples, f);
        self
    }

    /// Run a benchmark over `input`, identified by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&id.name, self.throughput, samples, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) {
    // Warm-up and iteration-count calibration: aim for ~20ms per sample.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>10.3} Melem/s", n as f64 / median / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.3} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("  {name:<40} {:>12.3} us/iter{rate}", median * 1e6);
}

/// Collect benchmark functions into a named runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each group produced by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(64));
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 64usize), &64usize, |bench, &n| {
            bench.iter(|| (0..n).map(|i| i as u64).sum::<u64>());
        });
        group.bench_function("plain", |bench| bench.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("sgemm", 32).to_string(), "sgemm/32");
    }
}
