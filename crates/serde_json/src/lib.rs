//! Offline stand-in for `serde_json`.
//!
//! JSON text ⇄ [`serde::Value`] ⇄ Rust types, supporting exactly the
//! entry points this workspace calls: [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`from_str`] and
//! [`from_reader`]. Numbers are kept as `i64`/`u64` when integral so
//! integer fields round-trip exactly; floats print with Rust's
//! shortest round-trip formatting, so every finite `f32`/`f64`
//! round-trips bit-exactly. Non-finite floats serialize as `null`
//! (JSON has no NaN/Infinity), matching what the checkpointing layer
//! expects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize, Value};

/// Serialization / deserialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

/// Serialize `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the value model used here; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
///
/// # Errors
///
/// Infallible for the value model used here.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` as compact JSON into `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Deserialize a `T` from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize a `T` from a reader producing JSON text.
///
/// # Errors
///
/// Returns [`Error`] on I/O failure, malformed JSON, or a shape
/// mismatch.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip formatting.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.literal("null") {
            return Ok(Value::Null);
        }
        if self.literal("true") {
            return Ok(Value::Bool(true));
        }
        if self.literal("false") {
            return Ok(Value::Bool(false));
        }
        match self.peek() {
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str,
                    // so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f32>("1.25").unwrap(), 1.25);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn f32_bit_exact_round_trip() {
        for &x in &[0.1f32, -1.0e-8, 3.402_823e38, 1.175_494e-38, 0.333_333_34] {
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {json} -> {back}");
        }
    }

    #[test]
    fn nan_serializes_as_null_and_parses_back_as_nan() {
        let json = to_string(&f32::NAN).unwrap();
        assert_eq!(json, "null");
        let back: f32 = from_str(&json).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![], vec![3.5]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v = vec![1u32, 2, 3];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(from_str::<Vec<u32>>(&pretty).unwrap(), v);
    }

    #[test]
    fn reader_writer_round_trip() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![(1usize, 2usize)]).unwrap();
        let back: Vec<(usize, usize)> = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, vec![(1, 2)]);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
