//! The end-to-end experiment pipeline shared by the table/figure
//! harnesses: synthesize the WM-811K-style mixture, balance it with
//! Algorithm 1, and train a selective model at a given target
//! coverage.

use augment::{AugmentConfig, Augmenter};
use selective::{SelectiveConfig, SelectiveModel, TrainConfig, TrainReport, Trainer};
use wafermap::gen::SyntheticWm811k;
use wafermap::Dataset;

use crate::ExperimentArgs;

/// Generated (and optionally augmented) experiment data.
#[derive(Debug, Clone)]
pub struct PreparedData {
    /// Training set after Algorithm 1 balancing.
    pub train: Dataset,
    /// Training set before augmentation (originals only).
    pub train_raw: Dataset,
    /// Held-out test set (originals only — the paper never tests on
    /// synthetic samples).
    pub test: Dataset,
}

/// Generate the scaled Table II mixture and balance the defect
/// classes to `args.augment_target()` synthetic-inclusive samples.
#[must_use]
pub fn prepare(args: &ExperimentArgs) -> PreparedData {
    let (train_raw, test) =
        SyntheticWm811k::new(args.grid).scale(args.scale).seed(args.seed).build();
    let augmenter = Augmenter::new(
        AugmentConfig::new(args.augment_target()).with_channels([8, 8, 8]).with_ae_epochs(8),
        args.seed ^ 0xA06,
    );
    let train = augmenter.balance(&train_raw);
    PreparedData { train, train_raw, test }
}

/// Train a selective model on `train` at target coverage `c0`
/// (`c0 = 1.0` trains the plain cross-entropy model).
#[must_use]
pub fn train_selective(
    args: &ExperimentArgs,
    train: &Dataset,
    c0: f32,
) -> (SelectiveModel, TrainReport) {
    let config = SelectiveConfig::for_grid(args.grid);
    let mut model = SelectiveModel::new(&config, args.seed ^ 0x5EED);
    let trainer = Trainer::new(TrainConfig {
        epochs: args.epochs,
        batch_size: args.batch_size,
        learning_rate: args.learning_rate,
        target_coverage: c0,
        lambda: args.lambda,
        alpha: 0.5,
        seed: args.seed ^ 0x7124,
    });
    let report = trainer.run(&mut model, train);
    (model, report)
}
