//! Shared plumbing for the experiment harnesses that regenerate every
//! table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1` | Fig. 1 — sample wafer map per defect class |
//! | `fig4` | Fig. 4 — original vs. synthetic augmentation samples |
//! | `fig5` | Fig. 5 — accuracy & coverage vs. target coverage `c0` |
//! | `table2` | Table II — selective learning at `c0 ∈ {0.2, 0.5, 0.75}` |
//! | `table3` | Table III — full-coverage CNN vs. SVM confusion matrices |
//! | `table4` | Table IV — new-defect detection (Near-Full left out) |
//! | `concept_shift_exp` | Sec. IV-A — coverage collapse under distribution shift |
//!
//! All binaries accept `--scale <f64>` (fraction of the paper's
//! WM-811K sample counts), `--grid <usize>` (wafer die grid, multiple
//! of 8), `--epochs <usize>`, and `--seed <u64>`; run with
//! `--help` for the defaults. Results are printed as text tables and
//! also dumped as JSON under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;

use std::path::{Path, PathBuf};

use serde::Serialize;

/// Common command-line options for experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentArgs {
    /// Fraction of the paper's per-class sample counts to generate.
    pub scale: f64,
    /// Wafer die-grid side (multiple of 8).
    pub grid: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed for dataset generation and model init.
    pub seed: u64,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Coverage-penalty weight λ (paper: 0.5; SelectiveNet: 32).
    pub lambda: f32,
    /// Output directory for PGM/JSON artifacts.
    pub out_dir: PathBuf,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        // Defaults sized for a single-core CPU budget: 2% of the
        // WM-811K mixture at native-ish die resolution. Scale up with
        // `--scale 0.05 --grid 32 --epochs 40` when you have cores to
        // spare.
        ExperimentArgs {
            scale: 0.02,
            grid: 16,
            epochs: 30,
            seed: 2020,
            learning_rate: 3e-3,
            batch_size: 32,
            lambda: 0.5,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExperimentArgs {
    /// Parse from `std::env::args`, starting from defaults. Prints
    /// usage and exits on `--help` or a malformed flag.
    #[must_use]
    pub fn parse() -> Self {
        let mut args = ExperimentArgs::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].as_str();
            if flag == "--help" || flag == "-h" {
                eprintln!(
                    "usage: <experiment> [--scale F] [--grid N] [--epochs N] \
                     [--seed N] [--lr F] [--batch N] [--out DIR]\n\
                     defaults: {:?}",
                    ExperimentArgs::default()
                );
                std::process::exit(0);
            }
            let value = argv.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            });
            match flag {
                "--scale" => args.scale = parse_or_exit(flag, value),
                "--grid" => args.grid = parse_or_exit(flag, value),
                "--epochs" => args.epochs = parse_or_exit(flag, value),
                "--seed" => args.seed = parse_or_exit(flag, value),
                "--lr" => args.learning_rate = parse_or_exit(flag, value),
                "--batch" => args.batch_size = parse_or_exit(flag, value),
                "--lambda" => args.lambda = parse_or_exit(flag, value),
                "--out" => args.out_dir = PathBuf::from(value),
                _ => {
                    eprintln!("unknown flag {flag}");
                    std::process::exit(2);
                }
            }
            i += 2;
        }
        args
    }

    /// The per-class augmentation target `T`, scaled from the paper's
    /// `T = 8000` by the same dataset scale.
    #[must_use]
    pub fn augment_target(&self) -> usize {
        ((8000.0 * self.scale).round() as usize).max(4)
    }
}

fn parse_or_exit<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {value:?} for {flag}");
        std::process::exit(2);
    })
}

/// Write a serializable result to `<out_dir>/<name>.json`, creating
/// the directory if needed. Errors are reported to stderr but never
/// abort an experiment (the console table is the primary output).
pub fn save_json<T: Serialize>(out_dir: &Path, name: &str, value: &T) {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
        return;
    }
    let path = out_dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Format a fraction as the paper prints it (two decimals, `-` when
/// undefined because the class was never selected/predicted).
#[must_use]
pub fn fmt_score(value: f64, defined: bool) -> String {
    if defined {
        format!("{value:.2}")
    } else {
        "-".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn augment_target_scales_from_8000() {
        let args = ExperimentArgs { scale: 0.02, ..ExperimentArgs::default() };
        assert_eq!(args.augment_target(), 160);
        let tiny = ExperimentArgs { scale: 0.0001, ..ExperimentArgs::default() };
        assert_eq!(tiny.augment_target(), 4);
    }

    #[test]
    fn fmt_score_prints_dash_when_undefined() {
        assert_eq!(fmt_score(0.5, true), "0.50");
        assert_eq!(fmt_score(0.0, false), "-");
    }
}
