//! CI smoke check for the telemetry layer: run a telemetry-enabled
//! miniature train + augment + serve pass, then hold every exposition
//! surface to its format contract.
//!
//! Exits non-zero (with a message on stderr) if any registry comes
//! back empty, the JSON snapshot fails to round-trip, or a Prometheus
//! rendering fails [`telemetry::parse_exposition`].
//!
//! Also asserts the zero-allocation instrumentation is live: the
//! process-global registry must carry the workspace scratch counters
//! (`hotpath_scratch_grows_total` > 0 after a training run — buffers
//! grew during warm-up — and a non-zero `hotpath_scratch_bytes`
//! high-water gauge), and the serve registry must expose the per-wafer
//! `serve_wafer_compute_seconds` histogram with one observation per
//! wafer.

use std::process::ExitCode;

use augment::{AugmentConfig, Augmenter};
use selective::{CheckpointBundle, SelectiveConfig, SelectiveModel, TrainConfig, Trainer};
use serve::{Engine, ServeConfig};
use telemetry::{parse_exposition, Registry, Snapshot};
use wafermap::gen::SyntheticWm811k;
use wafermap::WaferMap;

/// Validate one subsystem's registry: non-empty, JSON round-trips,
/// Prometheus parses. Returns the sample count for the summary line.
fn check(what: &str, registry: &Registry) -> Result<usize, String> {
    let snapshot = registry.snapshot();
    if snapshot.is_empty() {
        return Err(format!("{what}: telemetry registry is empty"));
    }
    let json = serde_json::to_string(&snapshot)
        .map_err(|e| format!("{what}: snapshot failed to serialize: {e}"))?;
    let back: Snapshot = serde_json::from_str(&json)
        .map_err(|e| format!("{what}: snapshot failed to deserialize: {e}"))?;
    if back != snapshot {
        return Err(format!("{what}: JSON snapshot did not round-trip"));
    }
    let text = registry.prometheus();
    let exposition = parse_exposition(&text)
        .map_err(|e| format!("{what}: invalid Prometheus exposition: {e}\n---\n{text}"))?;
    println!(
        "  {what:<10} {:>3} families {:>4} samples  ok",
        exposition.families.len(),
        exposition.samples
    );
    Ok(exposition.samples)
}

/// The process-global registry must show the workspace scratch
/// instrumentation: growth events happened (warm-up sized the hot-path
/// buffers) and the high-water gauge tracks live bytes.
fn check_workspace_metrics(snapshot: &Snapshot) -> Result<(), String> {
    let grows = snapshot
        .counters
        .iter()
        .find(|c| c.name == "hotpath_scratch_grows_total")
        .ok_or("pool: hotpath_scratch_grows_total missing from the global registry")?;
    if grows.value == 0 {
        return Err("pool: hotpath_scratch_grows_total is 0 after a training run".to_string());
    }
    let bytes = snapshot
        .gauges
        .iter()
        .find(|g| g.name == "hotpath_scratch_bytes")
        .ok_or("pool: hotpath_scratch_bytes missing from the global registry")?;
    if bytes.value <= 0.0 {
        return Err("pool: hotpath_scratch_bytes gauge is 0 after a training run".to_string());
    }
    println!("  workspace   {} grow(s), {:.0} scratch bytes  ok", grows.value, bytes.value);
    Ok(())
}

/// The serve registry must carry the per-wafer compute histogram, one
/// observation per submitted wafer.
fn check_serve_compute_metric(snapshot: &Snapshot, wafers: u64) -> Result<(), String> {
    let hist = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "serve_wafer_compute_seconds")
        .ok_or("serve: serve_wafer_compute_seconds missing from the engine registry")?;
    if hist.summary.count != wafers {
        return Err(format!(
            "serve: serve_wafer_compute_seconds has {} observations, expected {} (one per wafer)",
            hist.summary.count, wafers
        ));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let grid = 16;
    let (train, _) = SyntheticWm811k::new(grid).scale(0.002).seed(2020).build();

    // Train: two epochs of the selective objective, instrumented.
    let train_registry = Registry::new();
    let config = SelectiveConfig::for_grid(grid).with_conv_channels([4, 4, 4]).with_fc(16);
    let mut model = SelectiveModel::new(&config, 2020);
    let report = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 16,
        learning_rate: 3e-3,
        target_coverage: 0.75,
        seed: 2020,
        ..TrainConfig::default()
    })
    .with_telemetry(train_registry.clone())
    .run(&mut model, &train);
    if !report.last().loss.is_finite() {
        return Err("train: non-finite final loss".to_string());
    }

    // Augment: rebalance the training set, instrumented.
    let augment_registry = Registry::new();
    let augmented = Augmenter::new(
        AugmentConfig::new(train.len() / 4).with_channels([4, 4, 4]).with_ae_epochs(1),
        2020,
    )
    .with_telemetry(augment_registry.clone())
    .balance(&train);
    if augmented.len() < train.len() {
        return Err("augment: balancing shrank the dataset".to_string());
    }

    // Serve: stream the wafers back through the engine (its registry
    // is built in; the pool feeds the process-global registry).
    let bundle = CheckpointBundle::export(&mut model);
    let mut engine =
        Engine::from_bundle(&bundle, ServeConfig { micro_batch: 8, ..ServeConfig::default() })
            .map_err(|e| format!("serve: {e}"))?;
    engine.calibrate(&train, 0.9).map_err(|e| format!("serve: calibrate failed: {e}"))?;
    let workload: Vec<WaferMap> = train.samples().iter().map(|s| s.map.clone()).collect();
    engine.submit(&workload).map_err(|e| format!("serve: {e}"))?;

    println!("telemetry_smoke: exposition checks");
    check("train", &train_registry)?;
    check("augment", &augment_registry)?;
    check("serve", engine.telemetry())?;
    check("pool", &telemetry::global())?;
    check_serve_compute_metric(&engine.telemetry().snapshot(), workload.len() as u64)?;
    check_workspace_metrics(&telemetry::global().snapshot())?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("telemetry_smoke: all exposition surfaces valid");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("telemetry_smoke: FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}
