//! Section IV-A reproduction: the train/validation/test coherence
//! study.
//!
//! The paper split WM-811K's "Train" set 0.7 : 0.1 : 0.2 and found the
//! full-coverage model scored 97% / 94% / 94% across the splits — i.e.
//! no over-fitting and a coherent distribution — while a selective
//! model at c0 = 0.5 achieved ~99% accuracy at 45–57% coverage on all
//! three splits but only ~5% coverage on the distribution-shifted
//! "Test" set. This harness reproduces all four measurements.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selective::{SelectiveConfig, SelectiveModel, TrainConfig, Trainer};
use serde::Serialize;
use wafermap::gen::SyntheticWm811k;
use wafermap::shift::{shifted_dataset, ShiftConfig};
use wm_bench::{save_json, ExperimentArgs};

#[derive(Serialize)]
struct SplitRow {
    split: String,
    full_coverage_accuracy: f64,
    selective_accuracy: f64,
    selective_coverage: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    eprintln!("section4a: scale {} grid {} epochs {}", args.scale, args.grid, args.epochs);

    // The paper pools the original "Train" data and re-splits it
    // 0.7 : 0.1 : 0.2 (stratified). Our synthetic "Train" pool is the
    // scaled Table II training mixture.
    let (pool, _) = SyntheticWm811k::new(args.grid).scale(args.scale).seed(args.seed).build();
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5);
    let (train, rest) = pool.stratified_split(0.7, &mut rng);
    let (val, test) = rest.stratified_split(1.0 / 3.0, &mut rng);
    eprintln!("splits: train {} / val {} / test {}", train.len(), val.len(), test.len());

    let mk_trainer = |c0: f32| {
        Trainer::new(TrainConfig {
            epochs: args.epochs,
            batch_size: args.batch_size,
            learning_rate: args.learning_rate,
            target_coverage: c0,
            lambda: 0.5,
            alpha: 0.5,
            seed: args.seed ^ 0x7124,
        })
    };

    eprintln!("training full-coverage model ...");
    let mut full = SelectiveModel::new(&SelectiveConfig::for_grid(args.grid), args.seed ^ 1);
    let _ = mk_trainer(1.0).run(&mut full, &train);

    eprintln!("training selective model (c0 = 0.5) ...");
    let mut sel = SelectiveModel::new(&SelectiveConfig::for_grid(args.grid), args.seed ^ 2);
    let _ = mk_trainer(0.5).run(&mut sel, &train);

    let shifted =
        shifted_dataset(args.grid, (test.len() / 9).max(5), &ShiftConfig::severe(), args.seed ^ 3);

    let splits: Vec<(String, &wafermap::Dataset)> = vec![
        ("train (70%)".to_owned(), &train),
        ("validation (10%)".to_owned(), &val),
        ("test (20%)".to_owned(), &test),
        ("shifted \"Test\"".to_owned(), &shifted),
    ];

    println!("\nSection IV-A — split coherence and shift detection\n");
    println!(
        "{:>18} {:>14} {:>16} {:>18}",
        "split", "full-cov acc", "selective acc", "selective coverage"
    );
    let mut rows = Vec::new();
    for (name, ds) in &splits {
        let full_metrics = full.evaluate(ds, 0.0);
        let sel_metrics = sel.evaluate(ds, 0.5);
        println!(
            "{:>18} {:>13.1}% {:>15.1}% {:>17.1}%",
            name,
            full_metrics.selective_accuracy() * 100.0,
            sel_metrics.selective_accuracy() * 100.0,
            sel_metrics.coverage() * 100.0
        );
        rows.push(SplitRow {
            split: name.clone(),
            full_coverage_accuracy: full_metrics.selective_accuracy(),
            selective_accuracy: sel_metrics.selective_accuracy(),
            selective_coverage: sel_metrics.coverage(),
        });
    }
    println!(
        "\npaper reference: full-coverage 97% / 94% / 94% on the three coherent splits;\n\
         selective ~99% accuracy at 45–57% coverage on coherent splits but only ~5%\n\
         coverage on the shifted \"Test\" set (same high selected-sample accuracy)."
    );
    save_json(&args.out_dir, "section4a", &rows);
}
