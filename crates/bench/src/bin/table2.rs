//! Table II reproduction: dataset statistics and selective-learning
//! results at target coverages `c0 ∈ {0.2, 0.5, 0.75}`.
//!
//! For each `c0`, trains a selective model on the Algorithm-1-balanced
//! training set and reports per-class precision / recall / F1 over the
//! **selected** test samples, per-class selected counts ("Cov"), and
//! the overall selective accuracy and total coverage.
//!
//! The per-class block uses a selection threshold calibrated on the
//! training scores to hit `c0` (SelectiveNet's inference protocol);
//! the overall summary reports both the calibrated and the fixed
//! τ = 0.5 protocols.

use selective::calibrate_threshold;
use serde::Serialize;
use wafermap::DefectClass;
use wm_bench::pipeline::{prepare, train_selective};
use wm_bench::{fmt_score, save_json, ExperimentArgs};

#[derive(Serialize)]
struct ClassRow {
    class: String,
    training: usize,
    testing: usize,
    train_aug: usize,
    per_c0: Vec<ClassAtC0>,
}

#[derive(Serialize)]
struct ClassAtC0 {
    c0: f32,
    precision: f64,
    recall: f64,
    f1: f64,
    covered: u64,
}

#[derive(Serialize)]
struct Overall {
    c0: f32,
    selective_accuracy: f64,
    coverage: f64,
    covered: u64,
    fixed_tau_accuracy: f64,
    fixed_tau_coverage: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    eprintln!(
        "table2: scale {} grid {} epochs {} (paper: full WM-811K, 100 epochs)",
        args.scale, args.grid, args.epochs
    );
    let data = prepare(&args);
    let raw_counts = data.train_raw.class_counts();
    let aug_counts = data.train.class_counts();
    let test_counts = data.test.class_counts();

    let coverages = [0.2f32, 0.5, 0.75];
    let mut calibrated_metrics = Vec::new();
    let mut fixed_metrics = Vec::new();
    for &c0 in &coverages {
        eprintln!("training selective model at c0 = {c0} ...");
        let (mut model, report) = train_selective(&args, &data.train, c0);
        eprintln!(
            "  final epoch: loss {:.4}, train coverage {:.3}, train acc {:.3}",
            report.last().loss,
            report.last().coverage,
            report.last().accuracy
        );
        let scores = model.selection_scores(&data.train);
        let tau = calibrate_threshold(&scores, f64::from(c0));
        calibrated_metrics.push(model.evaluate(&data.test, tau));
        fixed_metrics.push(model.evaluate(&data.test, 0.5));
    }

    // Header.
    println!("\nTable II — dataset and selective learning results (reproduction)");
    println!("(per-class block: threshold calibrated to c0 on training scores)\n");
    print!("{:>10} {:>9} {:>8} {:>9}", "class", "Training", "Testing", "Train_aug");
    for &c0 in &coverages {
        print!(" | c0={c0:<4} Pre   Rec    f1    Cov");
    }
    println!();

    let mut rows = Vec::new();
    for class in DefectClass::ALL {
        let idx = class.index();
        print!(
            "{:>10} {:>9} {:>8} {:>9}",
            class.name(),
            raw_counts[idx],
            test_counts[idx],
            aug_counts[idx]
        );
        let mut per_c0 = Vec::new();
        for (m, &c0) in calibrated_metrics.iter().zip(&coverages) {
            let covered = m.class_selected(idx);
            let predicted = m.selected_matrix().predicted(idx) > 0;
            let has_cov = covered > 0;
            print!(
                " |      {:>5} {:>5} {:>5} {:>6}",
                fmt_score(m.selective_precision(idx), predicted),
                fmt_score(m.selective_recall(idx), has_cov),
                fmt_score(m.selective_f1(idx), predicted || has_cov),
                covered
            );
            per_c0.push(ClassAtC0 {
                c0,
                precision: m.selective_precision(idx),
                recall: m.selective_recall(idx),
                f1: m.selective_f1(idx),
                covered,
            });
        }
        println!();
        rows.push(ClassRow {
            class: class.name().to_owned(),
            training: raw_counts[idx],
            testing: test_counts[idx],
            train_aug: aug_counts[idx],
            per_c0,
        });
    }

    println!();
    let mut overall = Vec::new();
    for ((cal, fixed), &c0) in calibrated_metrics.iter().zip(&fixed_metrics).zip(&coverages) {
        println!(
            "c0={c0:<5} calibrated: acc {:.1}% @ cov {} ({:.1}%)   fixed τ=0.5: acc {:.1}% @ cov {:.1}%",
            cal.selective_accuracy() * 100.0,
            cal.selected_count(),
            cal.coverage() * 100.0,
            fixed.selective_accuracy() * 100.0,
            fixed.coverage() * 100.0
        );
        overall.push(Overall {
            c0,
            selective_accuracy: cal.selective_accuracy(),
            coverage: cal.coverage(),
            covered: cal.selected_count(),
            fixed_tau_accuracy: fixed.selective_accuracy(),
            fixed_tau_coverage: fixed.coverage(),
        });
    }
    println!(
        "\npaper reference: c0=0.2 -> 99.1% acc @ 27.2% cov; c0=0.5 -> 99.0% @ 57.9%; \
         c0=0.75 -> 96.6% @ 89.1%"
    );

    #[derive(Serialize)]
    struct Table2 {
        rows: Vec<ClassRow>,
        overall: Vec<Overall>,
    }
    save_json(&args.out_dir, "table2", &Table2 { rows, overall });
}
