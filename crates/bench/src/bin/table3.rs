//! Table III reproduction: confusion matrices of the full-coverage
//! CNN (ours) and the Radon+geometry SVM baseline (Wu et al., "SVM
//! \[2\]") on the same test set, plus overall and defect-only
//! accuracies.

use baseline::{FeatureConfig, SvmBaseline, SvmParams};
use serde::Serialize;
use wafermap::DefectClass;
use wm_bench::pipeline::{prepare, train_selective};
use wm_bench::{save_json, ExperimentArgs};

#[derive(Serialize)]
struct Table3 {
    cnn_accuracy: f64,
    cnn_defect_accuracy: f64,
    svm_accuracy: f64,
    svm_defect_accuracy: f64,
    cnn_confusion: Vec<Vec<u64>>,
    svm_confusion: Vec<Vec<u64>>,
}

fn main() {
    let args = ExperimentArgs::parse();
    eprintln!(
        "table3: scale {} grid {} epochs {} (paper: 94% CNN vs 91% SVM; defects 86% vs 72%)",
        args.scale, args.grid, args.epochs
    );
    let data = prepare(&args);
    let labels: Vec<&str> = DefectClass::ALL.iter().map(|c| c.name()).collect();

    // Full-coverage CNN (plain cross-entropy, threshold 0 keeps all).
    eprintln!("training full-coverage CNN ...");
    let (mut model, report) = train_selective(&args, &data.train, 1.0);
    eprintln!(
        "  final epoch: loss {:.4}, train acc {:.3}",
        report.last().loss,
        report.last().accuracy
    );
    let cnn_metrics = model.evaluate(&data.test, 0.0);
    let cnn = cnn_metrics.selected_matrix();

    // SVM baseline trained on the *raw* (unaugmented) training set, as
    // in the original Wu et al. pipeline.
    eprintln!("training SVM baseline ({} machines) ...", 36);
    let svm = SvmBaseline::train(
        &data.train_raw,
        &FeatureConfig::default(),
        &SvmParams::default(),
        args.seed,
    );
    let svm_cm = svm.evaluate(&data.test);

    let is_defect = |c: usize| DefectClass::from_index(c).is_some_and(DefectClass::is_defect);

    println!("\nTable III — proposed CNN (full coverage) confusion matrix\n");
    println!("{}", cnn.to_table(&labels));
    println!(
        "CNN overall accuracy = {:.1}%   defect-class detection rate = {:.1}%\n",
        cnn.accuracy() * 100.0,
        cnn.accuracy_over(is_defect) * 100.0
    );
    println!("Table III — SVM [2] baseline confusion matrix\n");
    println!("{}", svm_cm.to_table(&labels));
    println!(
        "SVM overall accuracy = {:.1}%   defect-class detection rate = {:.1}%",
        svm_cm.accuracy() * 100.0,
        svm_cm.accuracy_over(is_defect) * 100.0
    );
    println!("\npaper reference: CNN 94% (defects 86%) vs SVM 91% (defects 72%)");

    let dump = |cm: &eval::ConfusionMatrix| -> Vec<Vec<u64>> {
        (0..cm.n_classes()).map(|t| (0..cm.n_classes()).map(|p| cm.count(t, p)).collect()).collect()
    };
    save_json(
        &args.out_dir,
        "table3",
        &Table3 {
            cnn_accuracy: cnn.accuracy(),
            cnn_defect_accuracy: cnn.accuracy_over(is_defect),
            svm_accuracy: svm_cm.accuracy(),
            svm_defect_accuracy: svm_cm.accuracy_over(is_defect),
            cnn_confusion: dump(cnn),
            svm_confusion: dump(&svm_cm),
        },
    );
}
