//! Chaos harness for the durability and graceful-degradation layer:
//! deterministic fault injection (`faultsim`) against the three
//! robustness claims the serving stack makes.
//!
//! Three scenario families, all driven by seeded fault plans so a
//! failure reproduces from nothing but the seed printed in the report:
//!
//! - **Corruption sweep** — every structurally distinct byte region
//!   ([`faultsim::byte_classes`]) of every durable artifact
//!   (`StateDict`, `Checkpoint`, `CheckpointBundle`) is truncated and
//!   bit-flipped; each corrupted copy must load as a *typed*
//!   [`selective::LoadError`] — never a panic, never a silently wrong
//!   value. Loads run under `catch_unwind` and the report counts
//!   panics (acceptance: zero).
//! - **Fallback recovery** — a generation chain of bundles with the
//!   newest N-1 corrupted must always recover via
//!   [`CheckpointBundle::load_with_fallback`] as long as one intact
//!   generation remains (acceptance: 100% recovery), and must return
//!   `FallbackExhausted` — not a panic — when none does.
//! - **Serving degradation** — an engine under a `SimClock` deadline,
//!   a queue cap, and plan-poisoned raw wafers must shed exactly the
//!   overloaded / invalid wafers to the reject option and serve the
//!   rest; the shed ledger must balance (`submitted = served + shed`)
//!   and the full decision vector must be bit-identical across pool
//!   widths {1, 4} × SIMD dispatch {on, off}.
//!
//! Writes `BENCH_chaos.json` into the current directory and prints a
//! summary table. Pass `--smoke` for a CI-sized run (smaller model,
//! fewer seeds); the acceptance bars are identical in both modes —
//! chaos results are deterministic, so "smoke" only shrinks coverage,
//! never loosens it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use faultsim::{byte_classes, flip_bit_at, truncate_at, FaultPlan, SimClock};
use nn::pool;
use nn::serialize::{Checkpoint, StateDict};
use nn::simd;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selective::{CheckpointBundle, LoadError, SelectiveConfig, SelectiveModel};
use serde::Serialize;
use serve::{Engine, RawWafer, ServeConfig, ShedReason, WaferDecision};

#[derive(Serialize)]
struct CorruptionScenario {
    artifact: String,
    fault: String,
    offset: u64,
    /// `LoadError` variant name the corrupted load produced, or
    /// "ok" when the fault did not structurally damage the artifact
    /// (possible only for payload-region faults caught by the CRC —
    /// never observed — or offsets past a short file, skipped).
    outcome: String,
    panicked: bool,
}

#[derive(Serialize)]
struct CorruptionSummary {
    scenarios: u64,
    typed_errors: u64,
    panics: u64,
    by_variant: Vec<(String, u64)>,
    details: Vec<CorruptionScenario>,
}

#[derive(Serialize)]
struct FallbackSummary {
    /// Trials with at least one intact generation left.
    trials: u64,
    recovered: u64,
    /// Must be 1.0: with an intact fallback on disk, recovery is not
    /// best-effort, it is guaranteed.
    recovery_rate: f64,
    /// Trials with every generation corrupted; all must come back as
    /// `FallbackExhausted` (counted), never a panic.
    exhausted_trials: u64,
    exhausted_typed: u64,
    panics: u64,
}

#[derive(Serialize)]
struct DegradationSummary {
    submitted: u64,
    served: u64,
    shed_invalid_input: u64,
    shed_deadline_exceeded: u64,
    shed_queue_full: u64,
    ledger_balanced: bool,
    /// Decisions (routes, confidences, scores — compared bit-for-bit
    /// via `==` on the f32 fields) identical across pool widths
    /// {1, 4} × SIMD {on, off}.
    decisions_invariant: bool,
}

#[derive(Serialize)]
struct Report {
    description: String,
    smoke: bool,
    grid: usize,
    seed: u64,
    corruption: CorruptionSummary,
    fallback: FallbackSummary,
    degradation: DegradationSummary,
}

fn variant_name(err: &LoadError) -> &'static str {
    match err {
        LoadError::Io { .. } => "Io",
        LoadError::Truncated { .. } => "Truncated",
        LoadError::ChecksumMismatch { .. } => "ChecksumMismatch",
        LoadError::UnsupportedVersion { .. } => "UnsupportedVersion",
        LoadError::Malformed(_) => "Malformed",
    }
}

/// Run one corrupted-load attempt under `catch_unwind`, classifying
/// the outcome. `load` returns the variant name of the typed error,
/// or `"ok"` if the load (unexpectedly) succeeded.
fn probe<F: FnOnce() -> Option<&'static str>>(load: F) -> (String, bool) {
    match catch_unwind(AssertUnwindSafe(load)) {
        Ok(Some(variant)) => (variant.to_string(), false),
        Ok(None) => ("ok".to_string(), false),
        Err(_) => ("PANIC".to_string(), true),
    }
}

/// The corruption sweep over one artifact: for every representative
/// byte offset, truncate-at and bit-flip-at a fresh copy of
/// `pristine`, then attempt a typed load.
fn sweep_artifact(
    dir: &Path,
    artifact: &str,
    pristine: &Path,
    load_variant: &dyn Fn(&Path) -> Option<&'static str>,
    plan: &mut FaultPlan,
    details: &mut Vec<CorruptionScenario>,
) {
    let len = std::fs::metadata(pristine).expect("pristine artifact exists").len();
    for offset in byte_classes(len) {
        // Truncation at this offset (cutting at len-1 is the shortest
        // possible torn write; cutting at 0 leaves an empty file).
        let target = dir.join(format!("{artifact}_trunc_{offset}.bin"));
        std::fs::copy(pristine, &target).expect("copy artifact");
        truncate_at(&target, offset).expect("inject truncation");
        let (outcome, panicked) = probe(|| load_variant(&target));
        details.push(CorruptionScenario {
            artifact: artifact.to_string(),
            fault: "truncate".to_string(),
            offset,
            outcome,
            panicked,
        });
        let _ = std::fs::remove_file(&target);

        // Bit flip at a plan-chosen bit of this offset's byte.
        let bit = u8::try_from(offset % 8).expect("mod 8 fits");
        let target = dir.join(format!("{artifact}_flip_{offset}.bin"));
        std::fs::copy(pristine, &target).expect("copy artifact");
        flip_bit_at(&target, offset, bit).expect("inject bit flip");
        let (outcome, panicked) = probe(|| load_variant(&target));
        details.push(CorruptionScenario {
            artifact: artifact.to_string(),
            fault: format!("bit_flip:{bit}"),
            offset,
            outcome,
            panicked,
        });
        let _ = std::fs::remove_file(&target);
    }
    // One plan-random fault per artifact on top of the deterministic
    // sweep, so repeated seeds widen coverage beyond the class list.
    let target = dir.join(format!("{artifact}_random.bin"));
    std::fs::copy(pristine, &target).expect("copy artifact");
    let fault = plan.flip_file_bit(&target).expect("inject random flip");
    let (outcome, panicked) = probe(|| load_variant(&target));
    details.push(CorruptionScenario {
        artifact: artifact.to_string(),
        fault: format!("random:{fault}"),
        offset: fault.offset,
        outcome,
        panicked,
    });
    let _ = std::fs::remove_file(&target);
}

fn corruption_sweep(dir: &Path, bundle: &CheckpointBundle, seed: u64) -> CorruptionSummary {
    // Pristine copies of all three durable artifacts.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = nn::Sequential::new()
        .with(nn::layers::Linear::new(8, 4, &mut rng))
        .with(nn::layers::Relu::new());
    let state = StateDict::capture(&mut net);
    let state_path = dir.join("pristine_state.json");
    state.save(&state_path).expect("save state dict");
    let ckpt_path = dir.join("pristine_ckpt.json");
    Checkpoint::new(state).save(&ckpt_path).expect("save checkpoint");
    let bundle_path = dir.join("pristine_bundle.json");
    bundle.save(&bundle_path).expect("save bundle");

    let mut plan = FaultPlan::new(seed);
    let mut details = Vec::new();
    let state_load: &dyn Fn(&Path) -> Option<&'static str> =
        &|p| StateDict::load(p).err().as_ref().map(variant_name);
    let ckpt_load: &dyn Fn(&Path) -> Option<&'static str> =
        &|p| Checkpoint::load(p).err().as_ref().map(variant_name);
    let bundle_load: &dyn Fn(&Path) -> Option<&'static str> =
        &|p| CheckpointBundle::load(p).err().as_ref().map(variant_name);
    sweep_artifact(dir, "state_dict", &state_path, state_load, &mut plan, &mut details);
    sweep_artifact(dir, "checkpoint", &ckpt_path, ckpt_load, &mut plan, &mut details);
    sweep_artifact(dir, "bundle", &bundle_path, bundle_load, &mut plan, &mut details);

    let mut by_variant: Vec<(String, u64)> = Vec::new();
    let mut typed_errors = 0;
    let mut panics = 0;
    for s in &details {
        if s.panicked {
            panics += 1;
            continue;
        }
        if s.outcome != "ok" {
            typed_errors += 1;
        }
        match by_variant.iter_mut().find(|(v, _)| *v == s.outcome) {
            Some((_, n)) => *n += 1,
            None => by_variant.push((s.outcome.clone(), 1)),
        }
    }
    CorruptionSummary { scenarios: details.len() as u64, typed_errors, panics, by_variant, details }
}

fn fallback_trials(
    dir: &Path,
    bundle: &CheckpointBundle,
    seeds: std::ops::Range<u64>,
) -> FallbackSummary {
    let mut trials: u32 = 0;
    let mut recovered: u32 = 0;
    let mut exhausted_trials: u32 = 0;
    let mut exhausted_typed: u32 = 0;
    let mut panics: u32 = 0;
    for seed in seeds {
        let mut plan = FaultPlan::new(seed);
        // A three-generation chain, gen2 newest. Corrupt the newest
        // `corrupt` generations; recovery must land on the newest
        // intact one.
        for corrupt in 1..=3usize {
            let gens: Vec<PathBuf> =
                (0..3).map(|g| dir.join(format!("fb_{seed}_{corrupt}_gen{g}.json"))).collect();
            for path in &gens {
                bundle.save(path).expect("save generation");
            }
            for victim in gens.iter().rev().take(corrupt) {
                // Alternate fault family deterministically via the plan.
                let _ = plan.truncate_file(victim).expect("inject");
            }
            let newest_first: Vec<&PathBuf> = gens.iter().rev().collect();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                CheckpointBundle::load_with_fallback(newest_first[0], &newest_first[1..])
            }));
            match outcome {
                Ok(Ok(load)) => {
                    trials += 1;
                    // Recovery must land exactly `corrupt` steps back.
                    if corrupt < 3 && load.source_index == corrupt {
                        recovered += 1;
                    }
                }
                Ok(Err(exhausted)) => {
                    exhausted_trials += 1;
                    if exhausted.failures.len() == 3 {
                        exhausted_typed += 1;
                    }
                }
                Err(_) => panics += 1,
            }
            for path in &gens {
                let _ = std::fs::remove_file(path);
            }
        }
    }
    let recovery_rate = if trials == 0 { 0.0 } else { f64::from(recovered) / f64::from(trials) };
    FallbackSummary {
        trials: u64::from(trials),
        recovered: u64::from(recovered),
        recovery_rate,
        exhausted_trials: u64::from(exhausted_trials),
        exhausted_typed: u64::from(exhausted_typed),
        panics: u64::from(panics),
    }
}

/// One full degraded-serving pass: deadline + queue cap + poisoned
/// wafers, deterministic via `SimClock`. Returns the decision vector
/// and the engine's report.
fn degraded_pass(
    bundle: &CheckpointBundle,
    raw: &[RawWafer],
    threads: usize,
    force_scalar: bool,
) -> (Vec<WaferDecision>, serve::ServeReport) {
    pool::set_thread_limit(threads);
    simd::set_force_scalar(force_scalar);
    // A fresh clock per pass: 10ms per read, read once at submit start
    // and once before each micro-batch, so which batches breach the
    // 25ms budget is a pure function of the workload — two batches fit
    // (checked at t=10ms and t=20ms), the third (t=30ms) sheds.
    let clock = Arc::new(SimClock::with_step(Duration::from_millis(10)));
    let mut engine = Engine::from_bundle(
        bundle,
        ServeConfig {
            micro_batch: 8,
            deadline: Some(0.025),
            max_queue_depth: Some(30),
            ..ServeConfig::default()
        },
    )
    .expect("valid bundle")
    .with_clock(clock);
    let decisions = engine.submit_raw(raw);
    simd::set_force_scalar(false);
    let report = engine.report();
    (decisions, report)
}

fn degradation_scenario(bundle: &CheckpointBundle, grid: usize, seed: u64) -> DegradationSummary {
    // 60 wafers cycling through the defect classes; every 5th is
    // poisoned. With the pass's cap and budget the ledger is exact:
    // 60 submitted = 16 served + 12 invalid + 18 queue + 14 deadline.
    let cfg = wafermap::gen::GenConfig::new(grid);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut raw: Vec<RawWafer> = (0..60)
        .map(|i| {
            let class = wafermap::DefectClass::from_index(i % wafermap::DefectClass::COUNT)
                .expect("valid class");
            RawWafer::from_map(&wafermap::gen::generate(class, &cfg, &mut rng))
        })
        .collect();
    let mut plan = FaultPlan::new(seed);
    for wafer in raw.iter_mut().step_by(5) {
        let _ = plan.poison_pixels(&mut wafer.pixels);
    }

    let baseline_threads = pool::num_threads().max(4);
    let (reference, report) = degraded_pass(bundle, &raw, baseline_threads, false);
    let mut decisions_invariant = true;
    for (threads, force_scalar) in [(1, false), (4, false), (4, true), (1, true)] {
        let (got, _) = degraded_pass(bundle, &raw, threads, force_scalar);
        if got != reference {
            decisions_invariant = false;
            eprintln!(
                "DIVERGENCE: decisions differ at threads={threads}, force_scalar={force_scalar}"
            );
        }
    }
    pool::set_thread_limit(baseline_threads);

    let shed_for = |reason: ShedReason| {
        report
            .serving
            .shed_per_reason
            .iter()
            .find(|c| c.reason == reason.as_str())
            .map_or(0, |c| c.count)
    };
    let submitted = report.serving.submitted;
    let served = report.serving.wafers;
    let shed_invalid = shed_for(ShedReason::InvalidInput);
    let shed_deadline = shed_for(ShedReason::DeadlineExceeded);
    let shed_queue = shed_for(ShedReason::QueueFull);
    DegradationSummary {
        submitted,
        served,
        shed_invalid_input: shed_invalid,
        shed_deadline_exceeded: shed_deadline,
        shed_queue_full: shed_queue,
        ledger_balanced: submitted == served + shed_invalid + shed_deadline + shed_queue,
        decisions_invariant,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = 2020;
    let grid = if smoke { 16 } else { 32 };
    let fallback_seeds = if smoke { 0..2u64 } else { 0..8u64 };

    let dir = std::env::temp_dir().join(format!("wm_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("chaos scratch dir");

    let config = if smoke {
        SelectiveConfig::for_grid(grid).with_conv_channels([2, 2, 2]).with_fc(8)
    } else {
        SelectiveConfig::for_grid(grid)
    };
    let mut model = SelectiveModel::new(&config, seed);
    let bundle = CheckpointBundle::export(&mut model);

    println!("chaos_report: grid {grid}, seed {seed}{}\n", if smoke { " [smoke]" } else { "" });

    let corruption = corruption_sweep(&dir, &bundle, seed);
    println!(
        "  corruption sweep: {} scenarios, {} typed errors, {} panics",
        corruption.scenarios, corruption.typed_errors, corruption.panics
    );
    for (variant, n) in &corruption.by_variant {
        println!("    {variant:<20} {n}");
    }

    let fallback = fallback_trials(&dir, &bundle, fallback_seeds);
    println!(
        "\n  fallback recovery: {}/{} recovered ({:.0}%), {} exhausted-typed, {} panics",
        fallback.recovered,
        fallback.trials,
        fallback.recovery_rate * 100.0,
        fallback.exhausted_typed,
        fallback.panics
    );

    let degradation = degradation_scenario(&bundle, grid, seed);
    println!(
        "\n  degraded serving: {} submitted = {} served + {} invalid + {} deadline + {} queue \
         (balanced: {}, invariant: {})",
        degradation.submitted,
        degradation.served,
        degradation.shed_invalid_input,
        degradation.shed_deadline_exceeded,
        degradation.shed_queue_full,
        degradation.ledger_balanced,
        degradation.decisions_invariant
    );

    let _ = std::fs::remove_dir_all(&dir);

    // Acceptance bars — identical in smoke and full mode.
    assert_eq!(corruption.panics, 0, "corrupted loads must never panic");
    assert_eq!(
        corruption.typed_errors + corruption.panics,
        corruption.scenarios,
        "every corruption must surface as a typed LoadError"
    );
    assert!(
        (fallback.recovery_rate - 1.0).abs() < f64::EPSILON,
        "with an intact fallback on disk, recovery must be 100%"
    );
    assert_eq!(fallback.panics, 0, "fallback loading must never panic");
    assert_eq!(
        fallback.exhausted_typed, fallback.exhausted_trials,
        "exhausted chains must report every per-path failure"
    );
    assert!(degradation.ledger_balanced, "shed ledger must balance");
    assert!(degradation.decisions_invariant, "shed decisions must be bit-identical");

    let report = Report {
        description: "deterministic chaos harness: byte-class corruption sweep over all \
                      durable artifacts (typed errors, zero panics), generation-chain \
                      fallback recovery (100% with any intact generation), and degraded \
                      serving under SimClock deadline + queue cap + poisoned inputs \
                      (balanced shed ledger, decisions bit-identical across pool width \
                      and SIMD dispatch)"
            .to_string(),
        smoke,
        grid,
        seed,
        corruption,
        fallback,
        degradation,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_chaos.json", json).expect("write BENCH_chaos.json");
    println!("\nwrote BENCH_chaos.json");
}
