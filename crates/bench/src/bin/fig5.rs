//! Fig. 5 reproduction: selective accuracy and achieved test coverage
//! as a function of the target coverage `c0 ∈ {0.2, 0.5, 0.75, 1.0}` —
//! the risk-vs-coverage trade-off curve.
//!
//! Two inference protocols are reported per `c0`:
//!
//! - **fixed τ = 0.5** — predict whenever `g(x) ≥ 0.5`, as the paper
//!   describes;
//! - **calibrated τ** — pick τ on the training scores so the empirical
//!   coverage hits `c0` (SelectiveNet's protocol), which pins the
//!   coverage axis and isolates the accuracy-vs-coverage trade-off.

use eval::RiskCoveragePoint;
use selective::calibrate_threshold;
use serde::Serialize;
use wm_bench::pipeline::{prepare, train_selective};
use wm_bench::{save_json, ExperimentArgs};

#[derive(Serialize)]
struct Fig5Row {
    c0: f64,
    fixed: RiskCoveragePoint,
    calibrated: RiskCoveragePoint,
}

fn main() {
    let args = ExperimentArgs::parse();
    eprintln!("fig5: scale {} grid {} epochs {}", args.scale, args.grid, args.epochs);
    let data = prepare(&args);

    let coverages = [0.2f32, 0.5, 0.75, 1.0];
    let mut rows = Vec::new();
    for &c0 in &coverages {
        eprintln!("training at c0 = {c0} ...");
        let (mut model, _) = train_selective(&args, &data.train, c0);
        // Fixed threshold: the paper's protocol. The full-coverage
        // point is the plain CE model evaluated on every sample.
        let fixed_tau = if c0 >= 1.0 { 0.0 } else { 0.5 };
        let fixed =
            RiskCoveragePoint::from_metrics(f64::from(c0), &model.evaluate(&data.test, fixed_tau));
        // Calibrated threshold: hit c0 exactly on the training scores.
        let calibrated_tau = if c0 >= 1.0 {
            0.0
        } else {
            let scores = model.selection_scores(&data.train);
            calibrate_threshold(&scores, f64::from(c0))
        };
        let calibrated = RiskCoveragePoint::from_metrics(
            f64::from(c0),
            &model.evaluate(&data.test, calibrated_tau),
        );
        rows.push(Fig5Row { c0: f64::from(c0), fixed, calibrated });
    }

    println!("\nFig. 5 — selective accuracy and coverage vs target coverage c0\n");
    println!(
        "{:>6} | {:>10} {:>14} | {:>10} {:>14}",
        "c0", "cov(τ=.5)", "sel.acc(τ=.5)", "cov(cal)", "sel.acc(cal)"
    );
    for r in &rows {
        println!(
            "{:>6.2} | {:>9.1}% {:>13.1}% | {:>9.1}% {:>13.1}%",
            r.c0,
            r.fixed.coverage * 100.0,
            r.fixed.selective_accuracy * 100.0,
            r.calibrated.coverage * 100.0,
            r.calibrated.selective_accuracy * 100.0
        );
    }
    println!(
        "\nexpected shape (paper): accuracy decreases monotonically as c0 grows\n\
         (99.1% @ c0=0.2  ->  99.0% @ 0.5  ->  96.6% @ 0.75  ->  94% @ 1.0),\n\
         while achieved coverage rises with c0."
    );
    save_json(&args.out_dir, "fig5", &rows);
}
