//! Ablation: does the Algorithm 1 auto-encoder augmentation actually
//! help the minority defect classes?
//!
//! Trains the same full-coverage CNN twice — once on the raw
//! imbalanced training set and once on the Algorithm-1-balanced one —
//! and compares per-class recall, macro-F1, and defect-class
//! detection rate. DESIGN.md calls this design choice out; the paper
//! motivates it in Section III-B but does not report the ablation.

use serde::Serialize;
use wafermap::DefectClass;
use wm_bench::pipeline::{prepare, train_selective};
use wm_bench::{save_json, ExperimentArgs};

#[derive(Serialize)]
struct AblationRow {
    class: String,
    recall_raw: f64,
    recall_augmented: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    eprintln!("ablation_augment: scale {} grid {} epochs {}", args.scale, args.grid, args.epochs);
    let data = prepare(&args);

    eprintln!("training WITHOUT augmentation ({} wafers) ...", data.train_raw.len());
    let (mut without, _) = train_selective(&args, &data.train_raw, 1.0);
    let cm_without = without.evaluate(&data.test, 0.0);

    eprintln!("training WITH augmentation ({} wafers) ...", data.train.len());
    let (mut with, _) = train_selective(&args, &data.train, 1.0);
    let cm_with = with.evaluate(&data.test, 0.0);

    let is_defect = |c: usize| DefectClass::from_index(c).is_some_and(DefectClass::is_defect);
    println!("\nAblation — auto-encoder augmentation (full-coverage CNN)\n");
    println!("{:>10} {:>12} {:>12}", "class", "recall raw", "recall aug");
    let mut rows = Vec::new();
    for class in DefectClass::ALL {
        let idx = class.index();
        let raw = cm_without.selected_matrix().recall(idx);
        let aug = cm_with.selected_matrix().recall(idx);
        println!("{:>10} {:>12.2} {:>12.2}", class.name(), raw, aug);
        rows.push(AblationRow {
            class: class.name().to_owned(),
            recall_raw: raw,
            recall_augmented: aug,
        });
    }
    println!(
        "\noverall accuracy : raw {:.1}%  aug {:.1}%",
        cm_without.selective_accuracy() * 100.0,
        cm_with.selective_accuracy() * 100.0
    );
    println!(
        "defect detection : raw {:.1}%  aug {:.1}%",
        cm_without.selected_matrix().accuracy_over(is_defect) * 100.0,
        cm_with.selected_matrix().accuracy_over(is_defect) * 100.0
    );
    println!(
        "macro-F1         : raw {:.3}  aug {:.3}",
        cm_without.selected_matrix().macro_f1(),
        cm_with.selected_matrix().macro_f1()
    );
    println!(
        "\nexpected shape: augmentation lifts minority-class recall (Donut, Near-Full,\n\
         Random, Scratch) and the defect detection rate; the majority None class is\n\
         essentially unchanged."
    );
    save_json(&args.out_dir, "ablation_augment", &rows);
}
