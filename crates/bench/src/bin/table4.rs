//! Table IV reproduction: new-defect-class detection. The Near-Full
//! class is excluded from training (the model has only the other
//! eight labels available) and every Near-Full sample appears at test
//! time. A good selective model abstains on (nearly) all of them —
//! its original recall is necessarily 0, and its coverage on the
//! unseen class should collapse toward 0.

use eval::{SelectiveMetrics, SelectiveOutcome};
use nn::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use selective::{SelectiveConfig, SelectiveLoss, SelectiveModel};
use serde::Serialize;
use wafermap::{Dataset, DefectClass};
use wm_bench::pipeline::prepare;
use wm_bench::{fmt_score, save_json, ExperimentArgs};

#[derive(Serialize)]
struct Table4Row {
    class: String,
    original_recall: f64,
    selective_recall: Option<f64>,
    covered: u64,
    coverage_pct: f64,
}

/// Classes the model is trained on (all but Near-Full), in a fixed
/// order defining the 8-label output space.
fn kept_classes() -> Vec<DefectClass> {
    DefectClass::ALL.into_iter().filter(|&c| c != DefectClass::NearFull).collect()
}

/// Train an 8-class selective model with remapped labels (the Trainer
/// in the core crate assumes the full 9-class label space, so this
/// harness drives the model primitives directly).
fn train_eight_class(args: &ExperimentArgs, train: &Dataset, c0: f32) -> SelectiveModel {
    let kept = kept_classes();
    let label_of = |c: DefectClass| kept.iter().position(|&k| k == c).expect("kept class");
    let config = SelectiveConfig::for_grid(args.grid).with_classes(kept.len());
    let mut model = SelectiveModel::new(&config, args.seed ^ 0x5EED);
    let loss = SelectiveLoss::new(c0);
    let mut adam = nn::optim::Adam::new(args.learning_rate);
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x7124);
    let samples = train.samples();
    let pixels = args.grid * args.grid;
    let mut order: Vec<usize> = (0..samples.len()).collect();
    for epoch in 0..args.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut seen = 0usize;
        for batch in order.chunks(args.batch_size) {
            let mut data = Vec::with_capacity(batch.len() * pixels);
            let mut labels = Vec::with_capacity(batch.len());
            let mut weights = Vec::with_capacity(batch.len());
            for &i in batch {
                data.extend(samples[i].map.to_image());
                labels.push(label_of(samples[i].label));
                weights.push(samples[i].weight);
            }
            let images = Tensor::from_vec(data, &[batch.len(), 1, args.grid, args.grid]);
            let (logits, g) = model.forward(&images);
            let (value, grad_logits, grad_g) = loss.compute(&logits, &g, &labels, &weights);
            model.zero_grad();
            model.backward(&grad_logits, &grad_g);
            model.step(&mut adam);
            loss_sum += f64::from(value.total) * batch.len() as f64;
            seen += batch.len();
        }
        eprintln!("  epoch {epoch}: loss {:.4}", loss_sum / seen as f64);
    }
    model
}

fn main() {
    let args = ExperimentArgs::parse();
    eprintln!(
        "table4: scale {} grid {} epochs {} (Near-Full excluded from training)",
        args.scale, args.grid, args.epochs
    );
    let data = prepare(&args);
    let train = data.train.filtered(|c| c != DefectClass::NearFull);
    // All Near-Full samples (train + test splits) go to testing, as in
    // the paper ("all its samples were used during testing").
    let mut test = data.test.clone();
    for s in data.train_raw.of_class(DefectClass::NearFull) {
        test.push(s.clone());
    }

    let model = &mut train_eight_class(&args, &train, 0.5);
    let kept = kept_classes();

    // Evaluate manually: per-class original recall (ignoring the
    // reject option) and selective recall + coverage.
    let mut metrics = SelectiveMetrics::new(DefectClass::COUNT);
    let mut original_correct = [0u64; 9];
    let mut totals = [0u64; 9];
    let pixels = args.grid * args.grid;
    for chunk in test.samples().chunks(64) {
        let mut data = Vec::with_capacity(chunk.len() * pixels);
        for s in chunk {
            data.extend(s.map.to_image());
        }
        let images = Tensor::from_vec(data, &[chunk.len(), 1, args.grid, args.grid]);
        let preds = model.predict(&images, 0.5);
        for (s, p) in chunk.iter().zip(preds) {
            let true_idx = s.label.index();
            let predicted_class = kept[p.label];
            totals[true_idx] += 1;
            if predicted_class == s.label {
                original_correct[true_idx] += 1;
            }
            let outcome = if p.selected {
                SelectiveOutcome::Predicted(predicted_class.index())
            } else {
                SelectiveOutcome::Abstained
            };
            metrics.record(true_idx, outcome);
        }
    }

    println!("\nTable IV — Near-Full excluded from training (c0 = 0.5)\n");
    println!(
        "{:>10} {:>16} {:>17} {:>16}",
        "class", "Original Recall", "Selective Recall", "Coverage"
    );
    let mut rows = Vec::new();
    for class in DefectClass::ALL {
        let idx = class.index();
        if totals[idx] == 0 {
            continue;
        }
        let original = original_correct[idx] as f64 / totals[idx] as f64;
        let covered = metrics.class_selected(idx);
        let sel_recall = if covered > 0 { Some(metrics.selective_recall(idx)) } else { None };
        println!(
            "{:>10} {:>16} {:>17} {:>9} ({:.1}%)",
            class.name(),
            fmt_score(original, true),
            fmt_score(sel_recall.unwrap_or(0.0), sel_recall.is_some()),
            covered,
            metrics.class_coverage(idx) * 100.0
        );
        rows.push(Table4Row {
            class: class.name().to_owned(),
            original_recall: original,
            selective_recall: sel_recall,
            covered,
            coverage_pct: metrics.class_coverage(idx) * 100.0,
        });
    }
    let nf = DefectClass::NearFull.index();
    println!(
        "\nNear-Full (unseen class): original recall must be 0 (label unavailable); \
         coverage = {} of {} samples ({:.1}%)",
        metrics.class_selected(nf),
        totals[nf],
        metrics.class_coverage(nf) * 100.0
    );
    println!("paper reference: Near-Full coverage 0 (0%), original recall 0.00");
    save_json(&args.out_dir, "table4", &rows);
}
