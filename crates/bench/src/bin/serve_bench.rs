//! Serving-throughput benchmark on the paper-shape model (Table I
//! architecture, 32×32 grid): batched selective inference through the
//! `serve` engine against the pre-engine serving status quo.
//!
//! Four modes over the same wafer stream and the same weights:
//!
//! - **baseline** — per-wafer `SelectiveModel::predict` calls on the
//!   legacy compute core ([`nn::pool::ComputeMode::Legacy`]): the
//!   naive-GEMM training forward pass, one wafer at a time, exactly
//!   how serving looked before the engine existed.
//! - **per_wafer** — the engine at `micro_batch = 1`: blocked GEMM +
//!   the no-grad inference path, still one wafer per call.
//! - **batched** — the engine at `micro_batch = 64`: full micro-batches
//!   fanned sample-major across the worker pool.
//! - **batched_forced_scalar** — same as batched but with the AVX2
//!   micro-kernels forced off (`WM_FORCE_SCALAR` path), isolating the
//!   SIMD contribution under serving shapes.
//!
//! The headline `speedup` is batched vs the per-wafer baseline. The
//! pool is widened to at least 4 workers so micro-batch fan-out is
//! measured even on single-core CI hosts.
//!
//! Before timing, every mode's decisions are asserted bit-identical
//! across micro-batch size, pool width, and SIMD dispatch — batching
//! is a throughput lever, never an accuracy lever.
//!
//! Latency columns follow the [`eval::ServingStats`] semantics:
//! `latency_*` is per-wafer completion time (a wafer in a micro-batch
//! counts the whole batch's wall clock — what a caller observes), and
//! `compute_*` is the per-wafer model time alone.
//!
//! Writes `BENCH_serve.json` into the current directory (run from the
//! repository root) and prints the same numbers as a table. Pass
//! `--smoke` for a fast CI-sized run (tiny stream, fewer samples).

use std::time::Instant;

use nn::pool::{self, ComputeMode};
use nn::simd;
use nn::Tensor;
use selective::{CheckpointBundle, SelectiveConfig, SelectiveModel};
use serde::Serialize;
use serve::{Engine, ServeConfig};
use wafermap::gen::SyntheticWm811k;
use wafermap::WaferMap;

#[derive(Serialize)]
struct ModeResult {
    mode: String,
    micro_batch: usize,
    wafers: u64,
    wall_ms: f64,
    throughput_wafers_per_sec: f64,
    /// Per-wafer completion latency (includes time spent riding along
    /// in a micro-batch — what a submitting caller observes).
    latency_p50_ms: f64,
    latency_p99_ms: f64,
    /// Per-wafer model compute alone (excludes batching wait).
    compute_p50_ms: f64,
    compute_p99_ms: f64,
}

#[derive(Serialize)]
struct Report {
    description: String,
    grid: usize,
    pool_threads: usize,
    smoke: bool,
    baseline: ModeResult,
    per_wafer: ModeResult,
    batched: ModeResult,
    /// Batched engine with the SIMD micro-kernels forced off.
    batched_forced_scalar: ModeResult,
    /// Batched engine vs the per-wafer legacy baseline (the headline).
    speedup: f64,
    /// Batched engine vs the per-wafer engine (batching alone).
    speedup_vs_per_wafer_engine: f64,
    /// Batched engine vs its forced-scalar twin (SIMD alone).
    speedup_vs_forced_scalar: f64,
    /// Telemetry snapshot of the best batched engine pass (the same
    /// registry `Engine::prometheus` renders for scrapes).
    telemetry: telemetry::Snapshot,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let n = sorted_ms.len();
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    sorted_ms[rank - 1]
}

/// One timed pass of the pre-engine status quo: per-wafer
/// training-path `predict` calls on the legacy compute core. Returns
/// the wall clock and per-wafer latencies in milliseconds.
fn baseline_pass(bundle: &CheckpointBundle, workload: &[WaferMap]) -> (f64, Vec<f64>) {
    let grid = bundle.model_config().grid;
    let pixels = grid * grid;
    pool::set_compute_mode(ComputeMode::Legacy);
    let mut model = bundle.build_model().expect("valid bundle");
    let mut latencies = Vec::with_capacity(workload.len());
    let start = Instant::now();
    for w in workload {
        let mut data = Vec::with_capacity(pixels);
        data.extend(w.to_image());
        let image = Tensor::from_vec(data, &[1, 1, grid, grid]);
        let t = Instant::now();
        let preds = model.predict(&image, 0.5);
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(preds.len(), 1);
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    pool::set_compute_mode(ComputeMode::Pooled);
    (wall_ms, latencies)
}

/// One timed pass of the full workload through a fresh engine at one
/// micro-batch size. Returns the wall clock and the engine's report.
fn engine_pass(
    bundle: &CheckpointBundle,
    workload: &[WaferMap],
    micro_batch: usize,
    force_scalar: bool,
) -> (f64, serve::ServeReport) {
    simd::set_force_scalar(force_scalar);
    let mut engine =
        Engine::from_bundle(bundle, ServeConfig { micro_batch, ..ServeConfig::default() })
            .expect("valid bundle");
    let start = Instant::now();
    let decisions = engine.submit(workload).expect("grid matches");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    simd::set_force_scalar(false);
    assert_eq!(decisions.len(), workload.len());
    (wall_ms, engine.report())
}

/// Engine decisions for one (micro_batch, pool width, SIMD dispatch)
/// combination.
fn decisions_under(
    bundle: &CheckpointBundle,
    workload: &[WaferMap],
    micro_batch: usize,
    threads: usize,
    force_scalar: bool,
) -> Vec<serve::WaferDecision> {
    pool::set_thread_limit(threads);
    simd::set_force_scalar(force_scalar);
    let mut engine =
        Engine::from_bundle(bundle, ServeConfig { micro_batch, ..ServeConfig::default() })
            .expect("valid bundle");
    let decisions = engine.submit(workload).expect("grid matches");
    simd::set_force_scalar(false);
    decisions
}

/// Batching, pool width, and SIMD dispatch are throughput levers, not
/// accuracy levers: every combination must route every wafer
/// identically, bit for bit (scores included — `WaferDecision` is
/// compared by `==` on its `f32` fields).
fn assert_decisions_invariant(bundle: &CheckpointBundle, workload: &[WaferMap], threads: usize) {
    let reference = decisions_under(bundle, workload, 64, threads, false);
    for (micro_batch, th, force_scalar) in
        [(1, threads, false), (17, threads, false), (64, 1, false), (64, threads, true)]
    {
        let got = decisions_under(bundle, workload, micro_batch, th, force_scalar);
        assert_eq!(
            got, reference,
            "decisions diverged at micro_batch={micro_batch}, threads={th}, \
             force_scalar={force_scalar}"
        );
    }
    pool::set_thread_limit(threads);
    println!(
        "  decisions bit-identical across micro_batch {{1, 17, 64}}, threads {{1, {threads}}}, \
         simd {{on, off}}\n"
    );
}

/// Best-of-`samples` over the four modes, **interleaved** — one
/// sample of each mode per round, so slow machine-wide drift (thermal
/// or noisy neighbors) hits every mode instead of biasing whichever
/// ran last.
fn run_modes(
    bundle: &CheckpointBundle,
    workload: &[WaferMap],
    samples: u32,
) -> (ModeResult, ModeResult, ModeResult, ModeResult, telemetry::Snapshot) {
    // Warm-up pass per mode: pages in weights and thread-local
    // scratch so the first timed sample is not an outlier.
    let _ = baseline_pass(bundle, workload);
    let _ = engine_pass(bundle, workload, 1, false);
    let _ = engine_pass(bundle, workload, 64, false);
    let _ = engine_pass(bundle, workload, 64, true);

    let mut base: Option<(f64, Vec<f64>)> = None;
    let mut eng1: Option<(f64, serve::ServeReport)> = None;
    let mut eng64: Option<(f64, serve::ServeReport)> = None;
    let mut eng64s: Option<(f64, serve::ServeReport)> = None;
    for _ in 0..samples.max(1) {
        let b = baseline_pass(bundle, workload);
        if base.as_ref().is_none_or(|cur| b.0 < cur.0) {
            base = Some(b);
        }
        let e1 = engine_pass(bundle, workload, 1, false);
        if eng1.as_ref().is_none_or(|cur| e1.0 < cur.0) {
            eng1 = Some(e1);
        }
        let e64 = engine_pass(bundle, workload, 64, false);
        if eng64.as_ref().is_none_or(|cur| e64.0 < cur.0) {
            eng64 = Some(e64);
        }
        let e64s = engine_pass(bundle, workload, 64, true);
        if eng64s.as_ref().is_none_or(|cur| e64s.0 < cur.0) {
            eng64s = Some(e64s);
        }
    }

    let (base_ms, mut base_lat) = base.expect("at least one sample");
    base_lat.sort_by(f64::total_cmp);
    let baseline = ModeResult {
        mode: "baseline (legacy per-wafer predict)".to_string(),
        micro_batch: 1,
        wafers: workload.len() as u64,
        wall_ms: base_ms,
        throughput_wafers_per_sec: workload.len() as f64 / (base_ms / 1e3),
        latency_p50_ms: percentile(&base_lat, 50.0),
        latency_p99_ms: percentile(&base_lat, 99.0),
        // One wafer per call: the whole latency is model compute.
        compute_p50_ms: percentile(&base_lat, 50.0),
        compute_p99_ms: percentile(&base_lat, 99.0),
    };
    let engine_result =
        |mode: &str, micro_batch: usize, (wall_ms, report): (f64, serve::ServeReport)| ModeResult {
            mode: mode.to_string(),
            micro_batch,
            wafers: report.serving.wafers,
            wall_ms,
            throughput_wafers_per_sec: report.serving.wafers as f64 / (wall_ms / 1e3),
            latency_p50_ms: report.serving.latency.p50 * 1e3,
            latency_p99_ms: report.serving.latency.p99 * 1e3,
            compute_p50_ms: report.serving.compute_latency.p50 * 1e3,
            compute_p99_ms: report.serving.compute_latency.p99 * 1e3,
        };
    let per_wafer = engine_result("engine micro_batch=1", 1, eng1.expect("at least one sample"));
    let (batched_ms, batched_report) = eng64.expect("at least one sample");
    let batched_telemetry = batched_report.telemetry.clone();
    let batched = engine_result("engine micro_batch=64", 64, (batched_ms, batched_report));
    let batched_scalar = engine_result(
        "engine micro_batch=64 forced-scalar",
        64,
        eng64s.expect("at least one sample"),
    );
    (baseline, per_wafer, batched, batched_scalar, batched_telemetry)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let grid = 32;
    let (stream_scale, samples) = if smoke { (0.002, 1) } else { (0.02, 3) };

    // Micro-batch fan-out needs workers to fan out to; widen the pool
    // so the batched mode is meaningful even on single-core CI hosts.
    let threads = pool::num_threads().max(4);
    pool::set_thread_limit(threads);

    // Paper-shape model; untrained weights serve fine for a pure
    // throughput measurement (the compute path is weight-agnostic).
    let config = SelectiveConfig::for_grid(grid);
    let mut model = SelectiveModel::new(&config, 2020);
    let bundle = CheckpointBundle::export(&mut model);

    let (stream, _) = SyntheticWm811k::new(grid).scale(stream_scale).seed(2020).build();
    let workload: Vec<WaferMap> = stream.samples().iter().map(|s| s.map.clone()).collect();
    println!(
        "serve_bench: {} wafers, grid {grid}, Table I model, {} pool thread(s), simd {}{}\n",
        workload.len(),
        pool::num_threads(),
        if simd::active() { "avx2+fma" } else { "off" },
        if smoke { " [smoke]" } else { "" }
    );

    assert_decisions_invariant(&bundle, &workload, threads);

    let (baseline, per_wafer, batched, batched_forced_scalar, batched_telemetry) =
        run_modes(&bundle, &workload, samples);
    let speedup = batched.throughput_wafers_per_sec / baseline.throughput_wafers_per_sec;
    let speedup_vs_per_wafer_engine =
        batched.throughput_wafers_per_sec / per_wafer.throughput_wafers_per_sec;
    let speedup_vs_forced_scalar =
        batched.throughput_wafers_per_sec / batched_forced_scalar.throughput_wafers_per_sec;

    println!(
        "  {:<38} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "mode", "wall ms", "wafers/s", "p50 ms", "p99 ms", "compute p50"
    );
    for r in [&baseline, &per_wafer, &batched, &batched_forced_scalar] {
        println!(
            "  {:<38} {:>10.1} {:>12.1} {:>10.3} {:>10.3} {:>12.3}",
            r.mode,
            r.wall_ms,
            r.throughput_wafers_per_sec,
            r.latency_p50_ms,
            r.latency_p99_ms,
            r.compute_p50_ms
        );
    }
    println!("\n  batched vs per-wafer baseline: {speedup:.2}x");
    println!("  batched vs per-wafer engine:   {speedup_vs_per_wafer_engine:.2}x");
    println!("  batched vs forced-scalar:      {speedup_vs_forced_scalar:.2}x");
    if !smoke && speedup < 2.0 {
        eprintln!("WARNING: batched speedup {speedup:.2}x below the 2x acceptance bar");
    }
    // Smoke runs are one sample over a tiny stream — enough to verify
    // plumbing, too noisy to hold a throughput ordering against.
    if !smoke {
        assert!(
            batched.throughput_wafers_per_sec > per_wafer.throughput_wafers_per_sec,
            "micro_batch=64 throughput must beat micro_batch=1"
        );
    }

    let report = Report {
        description: "selective-inference serving throughput: per-wafer legacy predict \
                      (pre-engine status quo) vs the serve engine per-wafer, batched \
                      (micro_batch=64), and batched with SIMD forced off; wall-clock \
                      best-of-samples on identical weights and workload; latency_* is \
                      per-wafer completion (includes micro-batch ride-along), compute_* \
                      is model time alone; decisions asserted bit-identical across \
                      micro-batch size, pool width, and SIMD dispatch before timing"
            .to_string(),
        grid,
        pool_threads: pool::num_threads(),
        smoke,
        baseline,
        per_wafer,
        batched,
        batched_forced_scalar,
        speedup,
        speedup_vs_per_wafer_engine,
        speedup_vs_forced_scalar,
        telemetry: batched_telemetry,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_serve.json", json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
