//! Section IV-A / IV-D reproduction: concept-shift detection via
//! coverage collapse.
//!
//! The paper found that a selective model trained for ~50% coverage
//! kept ~99% selective accuracy on in-distribution data at 45–57%
//! coverage, but its coverage collapsed to ~5% on WM-811K's
//! distribution-shifted "Test" split — flagging the shift. Here the
//! shifted splits are generated with controllable severity (weakened
//! patterns, heavier background noise, mixed double patterns).

use eval::RiskCoveragePoint;
use serde::Serialize;
use wafermap::shift::{shifted_dataset, ShiftConfig};
use wm_bench::pipeline::{prepare, train_selective};
use wm_bench::{save_json, ExperimentArgs};

#[derive(Serialize)]
struct ShiftRow {
    split: String,
    coverage: f64,
    selective_accuracy: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    eprintln!("concept_shift: scale {} grid {} epochs {}", args.scale, args.grid, args.epochs);
    let data = prepare(&args);
    eprintln!("training selective model at c0 = 0.5 ...");
    let (mut model, _) = train_selective(&args, &data.train, 0.5);
    // Calibrate the selection threshold to the 50% target on the
    // training scores (SelectiveNet protocol), so in-distribution
    // coverage sits at the target and any collapse is attributable to
    // the shift.
    let tau = {
        let scores = model.selection_scores(&data.train);
        selective::calibrate_threshold(&scores, 0.5)
    };
    eprintln!("calibrated threshold τ = {tau:.3}");

    let per_class = (data.test.len() / 9).max(5);
    let splits: Vec<(String, wafermap::Dataset)> = vec![
        ("in-distribution test".to_owned(), data.test.clone()),
        (
            "moderate shift".to_owned(),
            shifted_dataset(args.grid, per_class, &ShiftConfig::moderate(), args.seed ^ 1),
        ),
        (
            "severe shift".to_owned(),
            shifted_dataset(args.grid, per_class, &ShiftConfig::severe(), args.seed ^ 2),
        ),
    ];

    println!("\nConcept-shift detection — coverage collapse under distribution shift\n");
    println!("{:>22} {:>10} {:>20}", "split", "coverage", "selective accuracy");
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (name, split) in &splits {
        let metrics = model.evaluate(split, tau);
        println!(
            "{:>22} {:>9.1}% {:>19.1}%",
            name,
            metrics.coverage() * 100.0,
            metrics.selective_accuracy() * 100.0
        );
        rows.push(ShiftRow {
            split: name.clone(),
            coverage: metrics.coverage(),
            selective_accuracy: metrics.selective_accuracy(),
        });
        points.push(RiskCoveragePoint::from_metrics(0.5, &metrics));
    }
    println!(
        "\nexpected shape (paper): in-distribution coverage ≈ 45–57%, shifted coverage\n\
         collapses (paper observed ~5%) while selected-sample accuracy stays high —\n\
         a large coverage drop below the c0 target flags that the model needs retraining."
    );
    save_json(&args.out_dir, "concept_shift", &rows);
}
