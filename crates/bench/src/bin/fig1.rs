//! Fig. 1 reproduction: one sample wafer map per defect pattern type,
//! written as PGM images and rendered as ASCII to the console.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wafermap::gen::{generate, GenConfig};
use wafermap::{io, DefectClass};
use wm_bench::ExperimentArgs;

fn main() {
    let args = ExperimentArgs::parse();
    let cfg = GenConfig::new(args.grid);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let dir = args.out_dir.join("fig1");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    println!("Fig. 1 — sample wafer maps per defect class ({}x{} grid)\n", args.grid, args.grid);
    for class in DefectClass::ALL {
        let map = generate(class, &cfg, &mut rng);
        let path = dir.join(format!("{}.pgm", class.name().to_lowercase().replace('-', "_")));
        if let Err(e) = io::save_pgm(&map, 8, &path) {
            eprintln!("cannot write {}: {e}", path.display());
        }
        println!(
            "{class}  (fail dies: {}, fail ratio: {:.3})  -> {}",
            map.fail_count(),
            map.fail_ratio(),
            path.display()
        );
        println!("{}", io::to_ascii(&map));
    }
}
