//! Ablation: which hand-crafted feature family carries the baseline?
//!
//! Trains the Wu et al. SVM (and a kNN sibling) on each feature family
//! in isolation — 13 zone densities, 40 Radon statistics, 6 geometry
//! descriptors — and on the full 59-dim vector.

use baseline::{FeatureConfig, KnnBaseline, SvmBaseline, SvmParams};
use serde::Serialize;
use wafermap::gen::SyntheticWm811k;
use wm_bench::{save_json, ExperimentArgs};

#[derive(Serialize)]
struct FamilyRow {
    family: String,
    dim: usize,
    svm_accuracy: f64,
    svm_macro_f1: f64,
    knn_accuracy: f64,
}

fn main() {
    let args = ExperimentArgs::parse();
    eprintln!("ablation_features: scale {} grid {}", args.scale, args.grid);
    let (train, test) = SyntheticWm811k::new(args.grid).scale(args.scale).seed(args.seed).build();

    let families: [(&str, FeatureConfig); 4] = [
        ("density (13)", FeatureConfig::density_only()),
        ("radon (40)", FeatureConfig::radon_only()),
        ("geometry (6)", FeatureConfig::geometry_only()),
        ("all (59)", FeatureConfig::default()),
    ];

    println!("\nAblation — feature families for the SVM/kNN baselines\n");
    println!("{:>14} {:>5} {:>9} {:>10} {:>9}", "family", "dim", "SVM acc", "SVM mF1", "kNN acc");
    let mut rows = Vec::new();
    for (name, cfg) in families {
        eprintln!("training on {name} ...");
        let svm = SvmBaseline::train(&train, &cfg, &SvmParams::default(), args.seed);
        let svm_cm = svm.evaluate(&test);
        let knn = KnnBaseline::fit(&train, &cfg, 5);
        let knn_cm = knn.evaluate(&test);
        println!(
            "{:>14} {:>5} {:>8.1}% {:>10.3} {:>8.1}%",
            name,
            cfg.dim(),
            svm_cm.accuracy() * 100.0,
            svm_cm.macro_f1(),
            knn_cm.accuracy() * 100.0
        );
        rows.push(FamilyRow {
            family: name.to_owned(),
            dim: cfg.dim(),
            svm_accuracy: svm_cm.accuracy(),
            svm_macro_f1: svm_cm.macro_f1(),
            knn_accuracy: knn_cm.accuracy(),
        });
    }
    println!(
        "\nexpected shape: the combined 59-dim vector beats every single family;\n\
         density and radon dominate geometry alone."
    );
    save_json(&args.out_dir, "ablation_features", &rows);
}
